//! Quickstart: infer points-to specifications for the paper's `Box` running
//! example and use them in a client points-to analysis.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use atlas_core::{AtlasConfig, Engine};
use atlas_ir::builder::ProgramBuilder;
use atlas_ir::LibraryInterface;
use atlas_pointsto::{ExtractionOptions, Graph, Solver};

fn main() {
    // 1. Build a program containing the modeled library plus the Box class
    //    of Figure 1.  Atlas only uses it as a blackbox (type signatures +
    //    the ability to execute methods).
    let mut pb = ProgramBuilder::new();
    atlas_javalib::install_library(&mut pb);
    atlas_javalib::install_box_example(&mut pb);
    let program = pb.build();
    let interface = LibraryInterface::from_program(&program);

    // 2. Run the two-phase inference on the Box class only.
    let box_class = program.class_named("Box").expect("Box is installed");
    let config = AtlasConfig {
        samples_per_cluster: 4_000,
        clusters: vec![vec![box_class]],
        ..AtlasConfig::default()
    };
    let outcome = Engine::new(&program, &interface, config).run();
    println!(
        "phase 1: {} candidates sampled, {} positive examples",
        outcome.clusters[0].num_samples, outcome.clusters[0].num_positive_examples
    );
    println!(
        "phase 2: {} -> {} automaton states",
        outcome.clusters[0].initial_states, outcome.clusters[0].final_states
    );

    // 3. Show the inferred path specifications and the equivalent
    //    code-fragment specifications.
    println!("\ninferred path specifications:");
    for spec in outcome.specs(8, 16) {
        println!("  {}", spec.display(&interface));
    }
    let fragments = outcome.fragments(&program);
    println!(
        "\ngenerated code fragments:\n{}",
        fragments.render(&program)
    );

    // 4. Use the fragments in place of the library implementation when
    //    analyzing the client `test` program of Figure 1.
    let mut pb = ProgramBuilder::new();
    atlas_javalib::install_library(&mut pb);
    atlas_javalib::install_box_example(&mut pb);
    let mut main = pb.class("Main");
    let mut t = main.static_method("test");
    t.returns(atlas_ir::Type::Bool);
    let in_v = t.local("in", atlas_ir::Type::object());
    let box_v = t.local("box", atlas_ir::Type::class("Box"));
    let out_v = t.local("out", atlas_ir::Type::object());
    let object = t.cref("Object");
    let box_c = t.cref("Box");
    t.new_object(in_v, object);
    t.new_object(box_v, box_c);
    let set = t.mref("Box", "set");
    let get = t.mref("Box", "get");
    t.call(None, set, Some(box_v), &[in_v]);
    t.call(Some(out_v), get, Some(box_v), &[]);
    let test = t.finish();
    main.build();
    let client = pb.build();

    let fragments = outcome.fragments(&client);
    let graph = Graph::extract(
        &client,
        &ExtractionOptions::with_specs(fragments.to_overrides()),
    );
    let result = Solver::new().solve(&graph);
    let tm = client.method(test);
    let in_node = graph
        .find_node(atlas_pointsto::Node::Var(test, tm.var_named("in").unwrap()))
        .unwrap();
    let out_node = graph
        .find_node(atlas_pointsto::Node::Var(
            test,
            tm.var_named("out").unwrap(),
        ))
        .unwrap();
    println!(
        "client analysis with inferred specs: alias(in, out) = {}",
        result.alias(in_node, out_node)
    );
}
