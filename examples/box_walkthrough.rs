//! A step-by-step walkthrough of the machinery on the `Box` example of the
//! paper: candidate path specifications, synthesized unit tests (potential
//! witnesses), the oracle's verdicts, and the language-inference step that
//! generalizes a clone chain into a starred specification (Figure 5 and the
//! worked example of Section 5.3).
//!
//! ```sh
//! cargo run --release --example box_walkthrough
//! ```

use atlas_ir::builder::ProgramBuilder;
use atlas_ir::{LibraryInterface, ParamSlot};
use atlas_learn::{infer_fsa, Oracle, OracleConfig, RpniConfig};
use atlas_spec::{CodeFragments, PathSpec};

fn main() {
    let mut pb = ProgramBuilder::new();
    atlas_javalib::install_library(&mut pb);
    atlas_javalib::install_box_example(&mut pb);
    let program = pb.build();
    let interface = LibraryInterface::from_program(&program);
    let set = program.method_qualified("Box.set").unwrap();
    let get = program.method_qualified("Box.get").unwrap();
    let clone = program.method_qualified("Box.clone").unwrap();

    let mut oracle = Oracle::new(&program, &interface, OracleConfig::default());

    // Row 1 of Figure 5: the precise specification s_box.
    let sbox = PathSpec::new(vec![
        ParamSlot::param(set, 0),
        ParamSlot::receiver(set),
        ParamSlot::receiver(get),
        ParamSlot::ret(get),
    ])
    .unwrap();
    // Row 2 of Figure 5: the imprecise set→clone specification.
    let imprecise = PathSpec::new(vec![
        ParamSlot::param(set, 0),
        ParamSlot::receiver(set),
        ParamSlot::receiver(clone),
        ParamSlot::ret(clone),
    ])
    .unwrap();
    for (name, spec) in [("s_box", &sbox), ("s_set_clone", &imprecise)] {
        println!("candidate {name}: {}", spec.display(&interface));
        if let Some(witness) = oracle.witness_for(spec) {
            println!("{}", witness.render(&program));
        }
        println!(
            "oracle verdict: {}\n",
            if oracle.check(spec) {
                "accepted (precise)"
            } else {
                "rejected"
            }
        );
    }

    // Row 3 of Figure 5 / Section 5.3: a single positive example with one
    // clone in the middle generalizes to (this_clone r_clone)*.
    let chain = PathSpec::new(vec![
        ParamSlot::param(set, 0),
        ParamSlot::receiver(set),
        ParamSlot::receiver(clone),
        ParamSlot::ret(clone),
        ParamSlot::receiver(get),
        ParamSlot::ret(get),
    ])
    .unwrap();
    println!("positive example: {}", chain.display(&interface));
    let rpni = infer_fsa(&[chain], &mut oracle, &RpniConfig::default());
    println!(
        "learned automaton: {} states (from {}), {} merges accepted",
        rpni.final_states, rpni.initial_states, rpni.merges_accepted
    );
    println!("specifications accepted by the automaton (up to 8 symbols):");
    for spec in rpni.fsa.accepted_specs(8, 8) {
        println!("  {}", spec.display(&interface));
    }
    let fragments = CodeFragments::from_fsa(&program, &rpni.fsa);
    println!(
        "\nequivalent code fragments:\n{}",
        fragments.render(&program)
    );
    println!(
        "oracle activity: {} queries, {} unit tests executed",
        oracle.stats().queries,
        oracle.stats().executions
    );
}
