//! Run the static explicit information-flow client on one synthetic
//! benchmark app under different specification sets, reproducing the
//! qualitative comparison behind Figure 9(a): no specifications miss flows,
//! handwritten specifications find some, ground-truth specifications find
//! them all.
//!
//! ```sh
//! cargo run --release --example information_flow
//! ```

use atlas_flow::{find_flows, sink_methods, source_methods};
use atlas_javalib::{
    android_model_specs, ground_truth_specs, handwritten_specs, SINK_METHODS, SOURCE_METHODS,
};
use atlas_pointsto::{ExtractionOptions, Graph, Solver};
use std::collections::HashMap;

fn main() {
    let app = atlas_apps::generate_app(7, 0xA71A5);
    println!(
        "app {}: {} client Jimple LoC, {} constructed leaks",
        app.name,
        app.client_loc,
        app.leaky_pairs.len()
    );
    for (src, sink) in &app.leaky_pairs {
        println!("  constructed leak: {src} -> {sink}");
    }

    let program = &app.program;
    let sources = source_methods(program, SOURCE_METHODS);
    let sinks = sink_methods(program, SINK_METHODS);

    let variants: Vec<(&str, ExtractionOptions)> = vec![
        ("no specifications", ExtractionOptions::empty_specs()),
        (
            "library implementation",
            ExtractionOptions::with_implementation(),
        ),
        ("handwritten specifications", {
            let mut overrides: HashMap<_, _> = handwritten_specs(program).into_iter().collect();
            for (m, body) in android_model_specs(program) {
                overrides.entry(m).or_insert(body);
            }
            ExtractionOptions::with_specs(overrides)
        }),
        ("ground-truth specifications", {
            let overrides = ground_truth_specs(program).into_iter().collect();
            ExtractionOptions::with_specs(overrides)
        }),
    ];

    for (name, options) in variants {
        let graph = Graph::extract(program, &options);
        let result = Solver::new().solve(&graph);
        let flows = find_flows(program, &graph, &result, &sources, &sinks);
        println!("\nwith {name}: {} flows", flows.len());
        for line in flows.describe(program) {
            println!("  {line}");
        }
    }
}
