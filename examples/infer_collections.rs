//! Infer specifications for the modeled Java Collections API — the core use
//! case of the paper — and compare the result against the handwritten and
//! ground-truth corpora.
//!
//! ```sh
//! cargo run --release --example infer_collections
//! # more sampling (better coverage, slower):
//! ATLAS_SAMPLES=60000 cargo run --release --example infer_collections
//! # pin the scheduler to 2 worker threads (0 = one per core):
//! ATLAS_THREADS=2 cargo run --release --example infer_collections
//! ```

use atlas_core::{compare_fragments, AtlasConfig, Engine};
use atlas_javalib::{
    class_ids, ground_truth_specs, handwritten_specs, library_interface, library_program,
    CLASS_CLUSTERS,
};

fn main() {
    let samples: usize = std::env::var("ATLAS_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let num_threads: usize = std::env::var("ATLAS_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let library = library_program();
    let interface = library_interface(&library);
    println!(
        "library: {} classes, {} interface methods, {} V_path symbols",
        library.library_classes().count(),
        interface.num_methods(),
        interface.slots().len()
    );

    let clusters = CLASS_CLUSTERS
        .iter()
        .map(|names| class_ids(&library, names))
        .filter(|ids| !ids.is_empty())
        .collect();
    let config = AtlasConfig {
        samples_per_cluster: samples,
        clusters,
        num_threads,
        ..AtlasConfig::default()
    };
    let engine = Engine::new(&library, &interface, config);
    let mut session = engine.session();
    println!(
        "engine: {} cluster jobs on {} worker threads",
        session.jobs().len(),
        session.num_threads()
    );
    let outcome = session.run();

    println!(
        "phase 1: {} positive examples from {} samples ({:.1}s)",
        outcome.total_positive_examples(),
        outcome
            .clusters
            .iter()
            .map(|c| c.num_samples)
            .sum::<usize>(),
        outcome.phase1_time.as_secs_f64()
    );
    let (before, after) = outcome.state_counts();
    println!(
        "phase 2: {before} -> {after} automaton states ({:.1}s)",
        outcome.phase2_time.as_secs_f64()
    );
    println!("parallelism: {}", outcome.parallelism());
    for cluster in &outcome.clusters {
        println!(
            "  cluster {:?}: {:.2?} sampling + {:.2?} rpni",
            cluster.classes, cluster.phase1_time, cluster.phase2_time
        );
    }

    let inferred = outcome.fragments(&library);
    let handwritten = handwritten_specs(&library);
    let truth = ground_truth_specs(&library);
    println!(
        "\ncoverage: inferred {} methods, handwritten {} methods, ground truth {} methods",
        inferred.num_methods(),
        handwritten.len(),
        truth.len()
    );
    let vs_hand = compare_fragments(&library, &inferred, &handwritten);
    let vs_truth = compare_fragments(&library, &inferred, &truth);
    println!(
        "vs handwritten: statement recall {:.2}, precision {:.2}",
        vs_hand.recall(),
        vs_hand.precision()
    );
    println!(
        "vs ground truth: statement recall {:.2}, precision {:.2}, exact {}/{}",
        vs_truth.recall(),
        vs_truth.precision(),
        vs_truth.exact_matches(),
        vs_truth.reference_methods()
    );

    println!("\nsample of inferred specifications:");
    for spec in outcome.specs(6, 3).iter().take(15) {
        println!("  {}", spec.display(&interface));
    }

    // Warm start: re-running the same configuration seeded with the
    // harvested verdict cache skips every unit-test execution while
    // producing bit-identical automata.
    let cache = session.into_cache();
    println!("\nverdict cache: {} entries harvested", cache.len());
    let t = std::time::Instant::now();
    let warm = Engine::new(&library, &interface, engine.config().clone())
        .warm_start(cache)
        .run();
    println!(
        "warm re-run: {:.2?} wall ({:.2?} cold), {} unit tests re-executed ({} cold), \
         {:.0}% warm-hit rate, identical specs: {}",
        t.elapsed(),
        outcome.wall_time,
        warm.oracle_executions,
        outcome.oracle_executions,
        100.0 * warm.cache_stats.warm_hit_rate(),
        warm.specs(6, 3) == outcome.specs(6, 3),
    );
}
