//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the API subset the workspace's benches use — `Criterion`,
//! `BenchmarkId`, benchmark groups, `criterion_group!`/`criterion_main!` —
//! with a deliberately simple measurement loop: warm up briefly, then time a
//! fixed-duration batch and report the median per-iteration wall-clock time.
//! It has no statistical machinery, plots, or CLI; it exists so `cargo bench`
//! compiles, runs, and prints comparable numbers offline.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// A benchmark identifier: function name plus an optional parameter string.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id carrying only a parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher {
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
    measure_for: Duration,
}

impl Bencher {
    fn new(measure_for: Duration) -> Bencher {
        Bencher {
            last: None,
            measure_for,
        }
    }

    /// Times `routine`, keeping its output alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: one untimed run.
        let start = Instant::now();
        std_black_box(routine());
        let calibration = start.elapsed().max(Duration::from_nanos(1));
        // Run for roughly `measure_for`, at least 3 iterations.
        let iters =
            (self.measure_for.as_nanos() / calibration.as_nanos()).clamp(3, 10_000) as usize;
        let mut samples: Vec<Duration> = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t = Instant::now();
            std_black_box(routine());
            samples.push(t.elapsed());
        }
        samples.sort();
        self.last = Some(samples[samples.len() / 2]);
    }
}

/// Top-level harness state.
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep offline bench runs quick; ATLAS_BENCH_MS overrides.
        let ms = std::env::var("ATLAS_BENCH_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300);
        Criterion {
            measure_for: Duration::from_millis(ms),
        }
    }
}

fn report(name: &str, time: Option<Duration>) {
    match time {
        Some(t) => println!("bench: {name:<60} {t:>12.3?}/iter"),
        None => println!("bench: {name:<60} (no measurement)"),
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.measure_for);
        f(&mut b);
        report(name, b.last);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Runs a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.measure_for);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.name), b.last);
        self
    }

    /// Runs a benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.criterion.measure_for);
        f(&mut b);
        report(&format!("{}/{}", self.name, id.name), b.last);
        self
    }

    /// Ends the group (a no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        std::env::set_var("ATLAS_BENCH_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("smoke", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        let mut group = c.benchmark_group("grp");
        group.bench_with_input(BenchmarkId::new("f", "p"), &41u64, |b, &x| b.iter(|| x + 1));
        group.bench_function(BenchmarkId::from_parameter("q"), |b| b.iter(|| 2 + 2));
        group.finish();
    }
}
