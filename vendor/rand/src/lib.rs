//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the API surface the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen`, and `Rng::gen_range` — backed by
//! xoshiro256++ seeded through SplitMix64.  The stream differs from upstream
//! `rand`, which is fine: every consumer in this workspace only relies on
//! determinism-given-a-seed and reasonable statistical quality, never on the
//! exact upstream byte stream.

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the unit interval / full domain
/// by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample a `T` from.  Mirrors upstream
/// rand's shape: the output type is a free parameter so the literal range
/// `0..10` unifies with whatever integer type the call site needs.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
signed_sample_range!(i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing random-value interface.
pub trait Rng: RngCore {
    /// Samples a value of type `T` (uniform over the unit interval for
    /// floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ (Blackman & Vigna), seeded via
    /// SplitMix64 like the reference implementation recommends.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
        let mut c = StdRng::seed_from_u64(8);
        let d: Vec<usize> = (0..32).map(|_| c.gen_range(0..1000usize)).collect();
        let mut a = StdRng::seed_from_u64(7);
        let e: Vec<usize> = (0..32).map(|_| a.gen_range(0..1000usize)).collect();
        assert_ne!(d, e);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let i = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b} far from uniform");
        }
    }
}
