//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! reimplements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`, tuple and
//! range strategies, [`collection::vec`], [`sample::Index`],
//! [`test_runner::ProptestConfig`], and the `prop_assert*` / `prop_assume!`
//! macros.  Generation is deterministic (each case is seeded by its case
//! number) and there is no shrinking: a failing case panics with the
//! assertion message directly.

pub mod test_runner {
    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// A `prop_assume!` rejected the generated input; the case is
        /// discarded, not failed.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    /// Result type of a single generated test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration.  Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic per-case generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for the given case number; the same number always
        /// yields the same values.
        pub fn deterministic(case: u64) -> TestRng {
            TestRng {
                state: case.wrapping_mul(0x9E3779B97F4A7C15) ^ 0x5EED_5EED_5EED_5EED,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategies may be used by reference.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() - *self.start()) as u64 + 1;
                    self.start() + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
    }

    /// Strategy for any [`crate::arbitrary::Arbitrary`] type.
    pub struct Any<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy yielding a constant value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Any;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index::new(rng.next_u64() as usize)
        }
    }
}

pub mod sample {
    /// An index into a collection whose size is only known at use site.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        pub(crate) fn new(raw: usize) -> Index {
            Index(raw)
        }

        /// Resolves the index against a collection of length `len`
        /// (which must be non-zero).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Size specification for [`vec()`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange(r)
        }
    }

    /// Strategy for vectors of values from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A vector strategy with sizes drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.0.end - self.size.0.start;
            let len = self.size.0.start + rng.below(span.max(1)).min(span.saturating_sub(1));
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop` module alias (`prop::sample::Index`, `prop::collection`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests.  Accepts an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __passed: u32 = 0;
                let mut __case: u64 = 0;
                let __max_attempts: u64 = (__config.cases as u64) * 32 + 64;
                while __passed < __config.cases && __case < __max_attempts {
                    __case += 1;
                    let mut __rng = $crate::test_runner::TestRng::deterministic(__case);
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                    let __outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => { __passed += 1; }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed: {}", __case, msg);
                        }
                    }
                }
                assert!(
                    __passed > 0,
                    "proptest generated no acceptable inputs in {} attempts",
                    __max_attempts
                );
            }
        )*
    };
}

/// Rejects the current case (discarded, not failed) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3..10usize, y in 1..=4usize) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_and_index_compose(
            v in prop::collection::vec(any::<prop::sample::Index>(), 1..5),
            n in prop::collection::vec(0..100usize, 3)
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert_eq!(n.len(), 3);
            for i in &v {
                prop_assert!(i.index(7) < 7);
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0..100usize) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn prop_map_and_tuples(word in (1..=3usize, 0..50usize).prop_map(|(a, b)| vec![b; a])) {
            prop_assert!(!word.is_empty() && word.len() <= 3);
            prop_assert_ne!(word.len(), 9);
        }
    }
}
