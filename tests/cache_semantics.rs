//! Semantics of the verdict cache: content-addressed keys work across
//! program *instances* but never across library *variants*, execution
//! limits, or initialization strategies; warm starts change executions,
//! never results; statistics merge as plain sums.

use atlas_interp::ExecLimits;
use atlas_ir::builder::ProgramBuilder;
use atlas_ir::{LibraryInterface, ParamSlot, Program, Type};
use atlas_learn::{library_fingerprint, CacheKeyer, Oracle, OracleConfig};
use atlas_synth::InitStrategy;

/// The Box running example; `broken` swaps `get`'s field load for a fresh
/// allocation — same interface, observably different implementation.
fn box_program(broken_get: bool) -> Program {
    let mut pb = ProgramBuilder::new();
    let mut obj = pb.class("Object");
    obj.library(true);
    let mut init = obj.constructor();
    init.this();
    init.finish();
    obj.build();
    let mut c = pb.class("Box");
    c.library(true);
    c.field("f", Type::object());
    let mut init = c.constructor();
    init.this();
    init.finish();
    let mut set = c.method("set");
    let this = set.this();
    let ob = set.param("ob", Type::object());
    set.store(this, "f", ob);
    set.finish();
    let mut get = c.method("get");
    get.returns(Type::object());
    let this = get.this();
    let r = get.local("r", Type::object());
    if broken_get {
        let obj_class = get.cref("Object");
        get.new_object(r, obj_class);
    } else {
        get.load(r, this, "f");
    }
    get.ret(Some(r));
    get.finish();
    c.build();
    pb.build()
}

fn set_get_word(p: &Program) -> Vec<ParamSlot> {
    let set = p.method_qualified("Box.set").unwrap();
    let get = p.method_qualified("Box.get").unwrap();
    vec![
        ParamSlot::param(set, 0),
        ParamSlot::receiver(set),
        ParamSlot::receiver(get),
        ParamSlot::ret(get),
    ]
}

#[test]
fn cache_transfers_across_identical_program_instances() {
    // Two *separate* builds of the same program: content-addressed keys
    // must match, so verdicts paid for on instance A answer instance B.
    let a = box_program(false);
    let b = box_program(false);
    let iface_a = LibraryInterface::from_program(&a);
    let iface_b = LibraryInterface::from_program(&b);
    assert_eq!(
        library_fingerprint(&a, &iface_a),
        library_fingerprint(&b, &iface_b)
    );

    let mut oracle_a = Oracle::new(&a, &iface_a, OracleConfig::default());
    assert!(oracle_a.check_word(&set_get_word(&a)));
    assert!(oracle_a.stats().executions > 0);

    let mut oracle_b =
        Oracle::with_cache(&b, &iface_b, OracleConfig::default(), oracle_a.into_cache());
    assert!(oracle_b.check_word(&set_get_word(&b)));
    assert_eq!(oracle_b.stats().executions, 0, "verdict reused, not re-run");
    assert_eq!(oracle_b.cache_stats().warm_hits, 1);
}

#[test]
fn library_variants_never_share_verdicts() {
    // Same interface, different implementation: the fingerprint (and hence
    // every key context) differs, so the working variant's cache yields no
    // hits — and the broken variant correctly computes its own `false`.
    let good = box_program(false);
    let bad = box_program(true);
    let iface_good = LibraryInterface::from_program(&good);
    let iface_bad = LibraryInterface::from_program(&bad);
    assert_eq!(iface_good.num_methods(), iface_bad.num_methods());
    assert_ne!(
        library_fingerprint(&good, &iface_good),
        library_fingerprint(&bad, &iface_bad)
    );

    let mut oracle_good = Oracle::new(&good, &iface_good, OracleConfig::default());
    assert!(oracle_good.check_word(&set_get_word(&good)));

    let mut oracle_bad = Oracle::with_cache(
        &bad,
        &iface_bad,
        OracleConfig::default(),
        oracle_good.into_cache(),
    );
    assert!(
        !oracle_bad.check_word(&set_get_word(&bad)),
        "broken get must not inherit the working variant's verdict"
    );
    assert_eq!(oracle_bad.cache_stats().warm_hits, 0);
    assert!(oracle_bad.stats().executions > 0);
}

#[test]
fn limits_and_strategy_are_part_of_the_key() {
    let p = box_program(false);
    let iface = LibraryInterface::from_program(&p);
    let word = set_get_word(&p);
    let fp = library_fingerprint(&p, &iface);
    let default_keyer = CacheKeyer::with_fingerprint(
        &p,
        &iface,
        fp,
        InitStrategy::Instantiate,
        ExecLimits::for_unit_tests(),
    );
    let null_keyer = CacheKeyer::with_fingerprint(
        &p,
        &iface,
        fp,
        InitStrategy::Null,
        ExecLimits::for_unit_tests(),
    );
    let starved_keyer = CacheKeyer::with_fingerprint(
        &p,
        &iface,
        fp,
        InitStrategy::Instantiate,
        ExecLimits {
            max_steps: 1,
            max_call_depth: 1,
            max_heap_objects: 1,
        },
    );
    assert_ne!(default_keyer.context(), null_keyer.context());
    assert_ne!(default_keyer.context(), starved_keyer.context());
    assert_ne!(default_keyer.key(&word), null_keyer.key(&word));
    // Within one context, different words get different keys and key
    // computation is stable.
    assert_eq!(default_keyer.key(&word), default_keyer.key(&word));
    assert_ne!(default_keyer.key(&word), default_keyer.key(&word[..2]));

    // An oracle with starvation-level limits never hits on a cache built
    // under the default limits.
    let mut generous = Oracle::new(&p, &iface, OracleConfig::default());
    assert!(generous.check_word(&word));
    let mut starved = Oracle::with_cache(
        &p,
        &iface,
        OracleConfig {
            limits: ExecLimits {
                max_steps: 1,
                max_call_depth: 1,
                max_heap_objects: 1,
            },
            ..OracleConfig::default()
        },
        generous.into_cache(),
    );
    assert!(!starved.check_word(&word), "starved execution must fail");
    assert_eq!(starved.cache_stats().warm_hits, 0);
}

#[test]
fn session_caches_accumulate_and_stats_merge_as_sums() {
    let library = atlas_javalib::library_program();
    let interface = LibraryInterface::from_program(&library);
    let box_cluster = atlas_javalib::class_ids(&library, &["Box"]);
    let stack_cluster = atlas_javalib::class_ids(&library, &["Stack"]);
    let config = atlas_core::AtlasConfig {
        samples_per_cluster: 250,
        clusters: vec![box_cluster, stack_cluster],
        num_threads: 1,
        ..atlas_core::AtlasConfig::default()
    };

    let engine = atlas_core::Engine::new(&library, &interface, config.clone());
    let mut session = engine.session();
    let outcome = session.run();
    let cache = session.into_cache();

    // The aggregated counters are the sums of the per-cluster oracles':
    // every oracle query is exactly one cache lookup, and the harvested
    // cache carries the same totals.
    assert_eq!(outcome.cache_stats.lookups, outcome.oracle_queries);
    assert_eq!(
        outcome.cache_stats.misses,
        outcome.cache_stats.lookups - outcome.cache_stats.hits
    );
    assert_eq!(cache.stats().lookups, outcome.cache_stats.lookups);
    assert_eq!(cache.stats().hits, outcome.cache_stats.hits);
    // Memoization pays off even within a single cold run.
    assert!(outcome.cache_stats.hits > 0);
    assert!(cache.len() <= outcome.cache_stats.insertions);

    // Chained sessions: warm-start from run 1, run 2's cache contains
    // run 1's entries plus anything new (here: nothing new).
    let engine2 = atlas_core::Engine::new(&library, &interface, config).warm_start(cache.clone());
    let mut session2 = engine2.session();
    let outcome2 = session2.run();
    let cache2 = session2.into_cache();
    assert_eq!(outcome2.oracle_executions, 0);
    assert!(cache2.len() >= cache.len());
    assert_eq!(outcome2.cache_stats.warm_hits, outcome2.cache_stats.lookups);
}
