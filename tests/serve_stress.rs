//! Concurrency stress for the resident service: several client threads
//! hammer one daemon — whose worker runs under a one-thread budget and a
//! deliberately tiny request queue — with edits to *disjoint* class
//! clusters.  The protocol promises that:
//!
//! * every request gets exactly one response with its id echoed;
//! * each edit's response is deterministic wherever the scheduler lands
//!   it, because closure-disjoint edits commute (responses carry no
//!   timing, and the library-wide fingerprint is the one field that
//!   depends on the interleaving);
//! * the final persisted store equals the store a sequential replay
//!   produces, modulo the provenance stamp recording which library-wide
//!   content each shard was minted under;
//! * nothing deadlocks, even with the queue bounded far below the request
//!   count (backpressure blocks producers instead).

use atlas_serve::{Daemon, EditRequest, Envelope, Request, Response, ServeConfig, Service};
use atlas_store::Json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// One eligible body-edit target per client thread, each in a different
/// javalib-collections cluster (clusters 5, 1, 7, and 8 of the variant).
const TARGETS: &[&str] = &[
    "TreeMap.put",
    "Vector.add",
    "ArrayDeque.addFirst",
    "PriorityQueue.offer",
];
const EDITS_PER_THREAD: usize = 3;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("atlas-serve-stress-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(store: &Path) -> ServeConfig {
    let mut config = ServeConfig::small(store.to_path_buf());
    config.library = "javalib-collections".to_string();
    config.samples = 80;
    config.threads = 1;
    config.queue_capacity = 4;
    config.flush_every = 0;
    config
}

fn edit_envelope(thread: usize, step: usize) -> Envelope {
    Envelope::with_id(
        format!("t{thread}e{step}").as_str(),
        Request::Edit(EditRequest {
            kind: atlas_ir::MutationKind::BodyEdit,
            target: Some(TARGETS[thread].to_string()),
            seed: (100 * thread + step) as u64,
        }),
    )
}

/// Runs the concurrent scenario once: `TARGETS.len()` client threads,
/// each streaming its edits interleaved with queries.  Returns each
/// thread's edit responses (in its own send order) plus the final specs
/// artifact and fingerprint.
fn run_concurrent(store: &Path) -> (Vec<Vec<Response>>, String, String) {
    let mut service = Service::spawn(config(store)).expect("daemon startup");
    let transcripts: Vec<Vec<Response>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..TARGETS.len())
            .map(|t| {
                let handle = service.handle();
                scope.spawn(move || {
                    let mut responses = Vec::new();
                    for step in 0..EDITS_PER_THREAD {
                        responses.push(handle.request(edit_envelope(t, step)));
                        // Interleaved introspection: must answer ok and
                        // echo the id, content not compared (it is
                        // interleaving-dependent by design).
                        let ping = handle.request(Envelope::with_id(
                            format!("t{t}p{step}").as_str(),
                            Request::Ping,
                        ));
                        assert!(ping.outcome.is_ok(), "ping failed: {ping:?}");
                        assert_eq!(ping.id, Some(Json::str(format!("t{t}p{step}"))));
                    }
                    responses
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    let handle = service.handle();
    let specs = handle
        .request(Envelope::of(Request::Specs))
        .outcome
        .expect("specs");
    let artifact = specs.get("artifact").expect("artifact").render();
    let fingerprint = specs
        .get("library_fingerprint")
        .and_then(Json::as_str)
        .expect("fingerprint")
        .to_string();
    let shutdown = handle.request(Envelope::of(Request::Shutdown));
    assert!(shutdown.outcome.is_ok(), "shutdown failed: {shutdown:?}");
    service.join();
    (transcripts, artifact, fingerprint)
}

/// Strips the one interleaving-dependent field from an edit response.
fn mask_edit(response: &Response) -> (Option<Json>, Result<Json, String>) {
    (
        response.id.clone(),
        response
            .outcome
            .clone()
            .map(|result| result.set("library_fingerprint", Json::Null))
            .map_err(|e| e.to_string()),
    )
}

/// Masks the provenance stamp (`library_fingerprint` next to `context`)
/// inside a parsed store document, recursively.
fn mask_provenance(json: Json) -> Json {
    match json {
        Json::Obj(fields) => {
            let is_provenance = fields.iter().any(|(k, _)| k == "context")
                && fields.iter().any(|(k, _)| k == "library_fingerprint");
            Json::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| {
                        if is_provenance && k == "library_fingerprint" {
                            (k, Json::Null)
                        } else {
                            (k, mask_provenance(v))
                        }
                    })
                    .collect(),
            )
        }
        Json::Arr(items) => Json::Arr(items.into_iter().map(mask_provenance).collect()),
        other => other,
    }
}

/// Every file under a store root, parsed and provenance-masked.
fn store_snapshot(root: &Path) -> BTreeMap<String, String> {
    let mut files = BTreeMap::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("store dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .to_string_lossy()
                    .into_owned();
                let text = std::fs::read_to_string(&path).expect("store file");
                let doc = Json::parse(&text).expect("store documents are JSON");
                files.insert(rel, mask_provenance(doc).render());
            }
        }
    }
    files
}

#[test]
fn concurrent_edit_streams_are_deterministic_and_equal_sequential_replay() {
    // A watchdog turns a deadlock into a failure instead of a CI hang.
    let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
    let worker = std::thread::spawn(move || {
        // Owned by the worker: dropped on finish *or* panic, waking the
        // watchdog either way.
        let _done = done_tx;
        let store_a = scratch("run-a");
        let store_b = scratch("run-b");
        let store_seq = scratch("seq");

        let (transcripts_a, artifact_a, fingerprint_a) = run_concurrent(&store_a);
        let (transcripts_b, artifact_b, fingerprint_b) = run_concurrent(&store_b);

        // Every request answered, every id echoed, every edit applied.
        for (t, transcript) in transcripts_a.iter().enumerate() {
            assert_eq!(transcript.len(), EDITS_PER_THREAD);
            for (step, response) in transcript.iter().enumerate() {
                assert_eq!(
                    response.id,
                    Some(Json::str(format!("t{t}e{step}"))),
                    "id echo for thread {t} step {step}"
                );
                let result = response
                    .outcome
                    .as_ref()
                    .unwrap_or_else(|e| panic!("edit t{t}e{step} failed: {e}"));
                let clusters = result.get("clusters").expect("clusters");
                assert_eq!(
                    clusters.get("dirty"),
                    Some(&Json::Int(1)),
                    "a one-method edit dirties exactly its own cluster"
                );
                assert_eq!(clusters.get("forced_dirty"), Some(&Json::Int(0)));
            }
        }

        // Interleaving-independence: a second concurrent run (scheduled
        // however the OS pleases) yields the same response to every
        // request, library-wide fingerprint aside.
        for (a, b) in transcripts_a.iter().zip(&transcripts_b) {
            let a: Vec<_> = a.iter().map(mask_edit).collect();
            let b: Vec<_> = b.iter().map(mask_edit).collect();
            assert_eq!(a, b, "edit responses depend on the interleaving");
        }

        // Final state is interleaving-independent outright (the edits
        // commute), and equals a sequential replay through a bare daemon.
        assert_eq!(fingerprint_a, fingerprint_b);
        assert_eq!(artifact_a, artifact_b);

        let daemon = Daemon::new(config(&store_seq)).expect("sequential daemon");
        for t in 0..TARGETS.len() {
            for step in 0..EDITS_PER_THREAD {
                let response = daemon.handle(&edit_envelope(t, step));
                assert!(
                    response.outcome.is_ok(),
                    "sequential edit failed: {response:?}"
                );
            }
        }
        let specs = daemon
            .handle(&Envelope::of(Request::Specs))
            .outcome
            .expect("sequential specs");
        assert_eq!(
            specs.get("library_fingerprint").and_then(Json::as_str),
            Some(fingerprint_a.as_str()),
            "concurrent and sequential replays converged on different content"
        );
        assert_eq!(
            specs.get("artifact").expect("artifact").render(),
            artifact_a,
            "concurrent and sequential artifacts diverged"
        );
        daemon.flush().expect("sequential flush");

        // The persisted stores agree file-for-file.
        let concurrent = store_snapshot(&store_a);
        let sequential = store_snapshot(&store_seq);
        let concurrent_keys: Vec<&String> = concurrent.keys().collect();
        let sequential_keys: Vec<&String> = sequential.keys().collect();
        assert_eq!(
            concurrent_keys, sequential_keys,
            "concurrent and sequential replays persisted different shard sets"
        );
        for (rel, doc) in &concurrent {
            assert_eq!(
                doc, &sequential[rel],
                "store file {rel} differs between concurrent and sequential replay"
            );
        }

        let _ = std::fs::remove_dir_all(&store_a);
        let _ = std::fs::remove_dir_all(&store_b);
        let _ = std::fs::remove_dir_all(&store_seq);
    });
    match done_rx.recv_timeout(Duration::from_secs(570)) {
        Ok(()) => unreachable!("nothing sends"),
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            panic!("stress scenario deadlocked (no progress in 570s)");
        }
    }
}
