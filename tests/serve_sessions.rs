//! Cross-session isolation of the `atlas-serve/2` daemon: however two
//! sessions' edit streams interleave on one daemon, every response — and
//! the final `specs` artifact — is byte-identical to replaying that
//! session's stream alone against a fresh daemon.  Sessions share a
//! process, a hot-shard LRU, and a base state; they must share no
//! inference state.
//!
//! Each proptest case derives a scenario from one entropy word: a
//! library, cache/flush knobs (including the degenerate one-shard budget,
//! where LRU pressure from the *other* session is maximal), two
//! per-session mutation scripts, and a random interleaving order.  The
//! comparison is on encoded wire frames, so an id echo, a session echo,
//! or a counter that leaks across sessions fails as loudly as diverged
//! spec content.

use atlas_apps::MutationConfig;
use atlas_ir::MutationKind;
use atlas_serve::{encode_response, Daemon, EditRequest, Envelope, Request, ServeConfig};
use proptest::prelude::*;

fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const LIBRARIES: &[&str] = &["javalib-lang", "synth-small"];
const KINDS: &[MutationKind] = &[
    MutationKind::BodyEdit,
    MutationKind::RenameLocal,
    MutationKind::AddMethod,
    MutationKind::SignatureChange,
];
const NAMES: [&str; 2] = ["alpha", "beta"];

fn edit_envelope(session: &str, id: i64, mutation: &MutationConfig) -> Envelope {
    Envelope::with_id(
        id,
        Request::Edit(EditRequest {
            kind: mutation.kind,
            seed: mutation.seed,
            target: None,
        }),
    )
    .in_session(session)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn interleaved_sessions_match_their_solo_replays(entropy in any::<u64>()) {
        let mut state = entropy;
        let library = LIBRARIES[(mix(&mut state) as usize) % LIBRARIES.len()];
        let store = std::env::temp_dir().join(format!(
            "atlas-serve-sessions-{entropy:016x}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&store);

        let mut config = ServeConfig::small(store.clone());
        config.library = library.to_string();
        config.samples = 150;
        config.shard_budget = [1, 4, 64][(mix(&mut state) as usize) % 3];
        config.flush_every = [0, 2, 100][(mix(&mut state) as usize) % 3];

        // Two per-session scripts of 2–4 mutations each.
        let mut scripts: [Vec<MutationConfig>; 2] = [Vec::new(), Vec::new()];
        for script in &mut scripts {
            let len = 2 + (mix(&mut state) as usize) % 3;
            for _ in 0..len {
                script.push(MutationConfig {
                    kind: KINDS[(mix(&mut state) as usize) % KINDS.len()],
                    seed: mix(&mut state) % 1_000_000,
                    target: None,
                });
            }
        }

        // The shared daemon: both sessions open, streams interleaved in a
        // random order (drawn from the same entropy word, so a failure
        // replays deterministically).
        let daemon = Daemon::new(config.clone()).expect("daemon startup");
        for name in NAMES {
            daemon
                .handle(&Envelope::of(Request::Open).in_session(name))
                .outcome
                .expect("session open");
        }
        let mut cursor = [0usize; 2];
        let mut frames: [Vec<String>; 2] = [Vec::new(), Vec::new()];
        while cursor[0] < scripts[0].len() || cursor[1] < scripts[1].len() {
            let s = if cursor[0] >= scripts[0].len() {
                1
            } else if cursor[1] >= scripts[1].len() {
                0
            } else {
                (mix(&mut state) % 2) as usize
            };
            let i = cursor[s];
            cursor[s] += 1;
            let response = daemon.handle(&edit_envelope(NAMES[s], i as i64, &scripts[s][i]));
            frames[s].push(encode_response(&response));
        }
        let mut final_frames = Vec::new();
        for name in NAMES {
            let specs = daemon.handle(&Envelope::of(Request::Specs).in_session(name));
            final_frames.push(encode_response(&specs));
        }
        drop(daemon);

        // Each session replayed alone on a fresh daemon must reproduce
        // the interleaved run frame for frame.
        for (s, name) in NAMES.iter().enumerate() {
            let solo_store = std::env::temp_dir().join(format!(
                "atlas-serve-sessions-{entropy:016x}-{}-solo{s}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&solo_store);
            let mut solo_config = config.clone();
            solo_config.store = solo_store.clone();
            let solo = Daemon::new(solo_config).expect("solo daemon startup");
            solo.handle(&Envelope::of(Request::Open).in_session(*name))
                .outcome
                .expect("solo session open");
            for (i, mutation) in scripts[s].iter().enumerate() {
                let response = solo.handle(&edit_envelope(name, i as i64, mutation));
                prop_assert!(
                    frames[s][i] == encode_response(&response),
                    "session {} edit {} diverged from its solo replay",
                    name,
                    i
                );
            }
            let specs = solo.handle(&Envelope::of(Request::Specs).in_session(*name));
            prop_assert!(
                final_frames[s] == encode_response(&specs),
                "session {} final specs diverged from its solo replay",
                name
            );
            let _ = std::fs::remove_dir_all(&solo_store);
        }
        let _ = std::fs::remove_dir_all(&store);
    }
}
