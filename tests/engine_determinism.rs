//! Determinism of the parallel inference engine: a multi-threaded run over
//! multiple clusters must produce an `InferenceOutcome` identical to the
//! single-threaded run — same positives, same learned automata, same state
//! counts, same coverage, same oracle totals.  Only wall-clock may differ.

use atlas_core::{AtlasConfig, ClusterOutcome, Engine, InferenceOutcome};
use atlas_ir::LibraryInterface;
use atlas_javalib::{class_ids, library_program};

fn run_with_threads(num_threads: usize) -> (InferenceOutcome, usize) {
    let library = library_program();
    let interface = LibraryInterface::from_program(&library);
    let clusters: Vec<_> = [
        &["Box"][..],
        &["Stack"][..],
        &["ArrayList", "ArrayListIterator"][..],
    ]
    .iter()
    .map(|names| class_ids(&library, names))
    .filter(|ids| !ids.is_empty())
    .collect();
    assert!(
        clusters.len() >= 2,
        "need at least two clusters for the test to mean anything"
    );
    let config = AtlasConfig {
        samples_per_cluster: 350,
        clusters,
        num_threads,
        ..AtlasConfig::default()
    };
    let engine = Engine::new(&library, &interface, config);
    let outcome = engine.run();
    let covered = outcome.methods_covered(&library);
    (outcome, covered)
}

fn assert_clusters_identical(a: &ClusterOutcome, b: &ClusterOutcome) {
    assert_eq!(a.classes, b.classes);
    assert_eq!(a.num_samples, b.num_samples);
    assert_eq!(a.num_positive_samples, b.num_positive_samples);
    assert_eq!(a.num_positive_examples, b.num_positive_examples);
    assert_eq!(
        a.positives, b.positives,
        "positives differ for {:?}",
        a.classes
    );
    assert_eq!(
        a.fsa, b.fsa,
        "learned automaton differs for {:?}",
        a.classes
    );
    assert_eq!(a.initial_states, b.initial_states);
    assert_eq!(a.final_states, b.final_states);
}

#[test]
fn parallel_engine_runs_are_identical_to_sequential() {
    let (seq, seq_covered) = run_with_threads(1);
    let (par, par_covered) = run_with_threads(4);
    let (auto_par, auto_covered) = run_with_threads(0);

    for other in [&par, &auto_par] {
        assert_eq!(seq.clusters.len(), other.clusters.len());
        for (a, b) in seq.clusters.iter().zip(&other.clusters) {
            assert_clusters_identical(a, b);
        }
        assert_eq!(seq.oracle_queries, other.oracle_queries);
        assert_eq!(seq.oracle_executions, other.oracle_executions);
        assert_eq!(
            seq.total_positive_examples(),
            other.total_positive_examples()
        );
        assert_eq!(seq.state_counts(), other.state_counts());
    }
    assert_eq!(seq_covered, par_covered);
    assert_eq!(seq_covered, auto_covered);

    // The extracted specification sets agree spec for spec.
    assert_eq!(seq.specs(8, 64), par.specs(8, 64));

    // The summaries report what actually ran.
    assert_eq!(seq.parallelism().num_threads, 1);
    assert!(par.parallelism().num_threads >= 2);
    assert!(seq.wall_time >= seq.clusters.iter().map(|c| c.total_time()).sum());
}

#[test]
fn repeated_parallel_runs_are_stable() {
    // Scheduling order varies run to run; results must not.
    let (a, _) = run_with_threads(3);
    let (b, _) = run_with_threads(3);
    assert_eq!(a.clusters.len(), b.clusters.len());
    for (x, y) in a.clusters.iter().zip(&b.clusters) {
        assert_clusters_identical(x, y);
    }
    assert_eq!(a.oracle_queries, b.oracle_queries);
}

#[test]
fn warm_cache_state_never_changes_results() {
    // The determinism guarantee extends to the verdict-cache state: a run
    // warm-started from a previous session's cache — at any thread count —
    // produces the same outcome as a cold run, automaton for automaton.
    // Only the execution count (and wall-clock) may drop.
    let library = library_program();
    let interface = LibraryInterface::from_program(&library);
    let clusters: Vec<_> = [&["Box"][..], &["Stack"][..]]
        .iter()
        .map(|names| class_ids(&library, names))
        .filter(|ids| !ids.is_empty())
        .collect();
    let config = AtlasConfig {
        samples_per_cluster: 350,
        clusters,
        num_threads: 1,
        ..AtlasConfig::default()
    };

    let engine = Engine::new(&library, &interface, config.clone());
    let mut session = engine.session();
    let cold = session.run();
    let cache = session.into_cache();
    assert!(!cache.is_empty());
    assert!(cold.oracle_executions > 0);
    assert_eq!(
        cold.cache_stats.warm_hits, 0,
        "cold run has no warm entries"
    );

    for num_threads in [1usize, 4] {
        let warm = Engine::new(
            &library,
            &interface,
            AtlasConfig {
                num_threads,
                ..config.clone()
            },
        )
        .warm_start(cache.clone())
        .run();
        assert_eq!(cold.clusters.len(), warm.clusters.len());
        for (a, b) in cold.clusters.iter().zip(&warm.clusters) {
            assert_clusters_identical(a, b);
        }
        assert_eq!(cold.oracle_queries, warm.oracle_queries);
        assert_eq!(cold.specs(8, 64), warm.specs(8, 64));
        // Every verdict was already known: nothing re-executes.
        assert_eq!(warm.oracle_executions, 0);
        assert_eq!(warm.cache_stats.warm_hits, warm.cache_stats.hits);
        assert_eq!(warm.cache_stats.hits, warm.cache_stats.lookups);
    }
}
