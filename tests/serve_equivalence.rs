//! Differential testing of the resident service: whatever interleaving of
//! edits and queries a daemon serves, its final specification artifact is
//! byte-identical to a cold batch `Engine` run over the equivalently
//! edited program — the service is just a faster way to compute the same
//! bytes.
//!
//! Each proptest case derives a random scenario from one entropy word: a
//! library, cache/flush knobs (including degenerate one-shard budgets and
//! never-flush write-behind), and a short interleaved script of mutations
//! and queries.  The client replays accepted mutations in lock step, so a
//! daemon/batch divergence in *eligibility* is caught as loudly as one in
//! spec content.

use atlas_core::{AtlasConfig, Engine};
use atlas_ir::hash::library_fingerprint;
use atlas_ir::{LibraryInterface, MutationKind};
use atlas_serve::{Daemon, EditRequest, Envelope, Request, ServeConfig, EXTRACTION};
use atlas_store::Json;
use proptest::prelude::*;

fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const LIBRARIES: &[&str] = &["javalib-lang", "synth-small"];
const KINDS: &[MutationKind] = &[
    MutationKind::BodyEdit,
    MutationKind::RenameLocal,
    MutationKind::AddMethod,
    MutationKind::SignatureChange,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn daemon_artifacts_equal_cold_batch_replay(entropy in any::<u64>()) {
        let mut state = entropy;
        let library = LIBRARIES[(mix(&mut state) as usize) % LIBRARIES.len()];
        let store = std::env::temp_dir().join(format!(
            "atlas-serve-equiv-{entropy:016x}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&store);

        let mut config = ServeConfig::small(store.clone());
        config.library = library.to_string();
        config.samples = 150;
        config.shard_budget = [1, 4, 64][(mix(&mut state) as usize) % 3];
        config.flush_every = [0, 2, 100][(mix(&mut state) as usize) % 3];
        let samples = config.samples;
        let synth_seed = config.synth_seed;
        let daemon = Daemon::new(config).expect("daemon startup");

        // The client's lock-step replica of the library under edit.
        let lib = atlas_apps::build_library(library, synth_seed).expect("registry library");
        let mut program = lib.program;

        let steps = 3 + (mix(&mut state) as usize) % 4;
        for step in 0..steps {
            if mix(&mut state) % 10 < 7 {
                let mutation = atlas_apps::MutationConfig {
                    kind: KINDS[(mix(&mut state) as usize) % KINDS.len()],
                    seed: mix(&mut state) % 1_000_000,
                    target: None,
                };
                let response = daemon.handle(&Envelope::of(Request::Edit(EditRequest {
                    kind: mutation.kind,
                    seed: mutation.seed,
                    target: None,
                })));
                match (response.outcome, atlas_apps::mutate_library(&program, &mutation)) {
                    (Ok(_), Ok(mutated)) => program = mutated.program,
                    (Err(error), Err(_)) => {
                        prop_assert!(
                            error.code == atlas_serve::ErrorCode::BadEdit,
                            "step {}: unexpected failure {}",
                            step,
                            error.message
                        );
                    }
                    (daemon_side, local) => {
                        return Err(TestCaseError::Fail(format!(
                            "step {step}: daemon and batch disagree on eligibility \
                             (daemon {daemon_side:?}, local {:?})",
                            local.map(|m| m.outcome.description)
                        )));
                    }
                }
            } else {
                // Interleaved queries must never perturb inference state.
                let query = match mix(&mut state) % 4 {
                    0 => Request::Ping,
                    1 => Request::Fingerprint,
                    2 => Request::Stats,
                    _ => Request::Flush,
                };
                let response = daemon.handle(&Envelope::of(query));
                prop_assert!(response.outcome.is_ok());
            }
        }

        let served = daemon
            .handle(&Envelope::of(Request::Specs))
            .outcome
            .expect("specs query");
        let served_artifact = served.get("artifact").expect("artifact payload").render();

        // The cold batch baseline over the replayed program.
        let interface = LibraryInterface::from_program(&program);
        let atlas_config = AtlasConfig {
            samples_per_cluster: samples,
            clusters: lib.clusters.clone(),
            num_threads: 1,
            ..AtlasConfig::default()
        };
        let outcome = Engine::new(&program, &interface, atlas_config).run();
        let cold_artifact = outcome
            .spec_artifact(&program, &interface, EXTRACTION.0, EXTRACTION.1)
            .encode(&program)
            .expect("encodable artifact")
            .render();
        prop_assert!(
            served_artifact == cold_artifact,
            "library {} diverged from cold batch replay",
            library
        );

        // The daemon's notion of the library is the replayed content.
        let fingerprint = daemon
            .handle(&Envelope::of(Request::Fingerprint))
            .outcome
            .expect("fingerprint query");
        let expected = atlas_store::hex64_string(library_fingerprint(&program, &interface));
        prop_assert_eq!(
            fingerprint.get("library_fingerprint").and_then(Json::as_str),
            Some(expected.as_str())
        );

        let _ = std::fs::remove_dir_all(&store);
    }
}
