//! Integration tests: the modeled Java library must behave correctly under
//! the concrete interpreter — this is the blackbox Atlas queries, so its
//! fidelity underpins every inferred specification.

use atlas_interp::Interpreter;
use atlas_ir::builder::ProgramBuilder;
use atlas_ir::{MethodId, Program, Type};

/// Builds a client method that exercises a store/retrieve round trip through
/// the given collection and returns whether the retrieved object is the one
/// stored.
fn round_trip_program(
    collection: &str,
    store: &str,
    retrieve: &str,
    needs_index: bool,
) -> (Program, MethodId) {
    let mut pb = ProgramBuilder::new();
    atlas_javalib::install_library(&mut pb);
    let mut main = pb.class("Main");
    let mut t = main.static_method("test");
    t.returns(Type::Bool);
    let secret = t.local("secret", Type::object());
    let coll = t.local("coll", Type::class(collection));
    let out = t.local("out", Type::object());
    let eq = t.local("eq", Type::Bool);
    let object = t.cref("Object");
    let coll_class = t.cref(collection);
    t.new_object(secret, object);
    t.new_object(coll, coll_class);
    let ctor = t.mref(collection, "<init>");
    t.call(None, ctor, Some(coll), &[]);
    let store_m = t.mref(collection, store);
    t.call(None, store_m, Some(coll), &[secret]);
    let retrieve_m = t.mref(collection, retrieve);
    if needs_index {
        let zero = t.local("zero", Type::Int);
        t.const_int(zero, 0);
        t.call(Some(out), retrieve_m, Some(coll), &[zero]);
    } else {
        t.call(Some(out), retrieve_m, Some(coll), &[]);
    }
    t.ref_eq(eq, secret, out);
    t.ret(Some(eq));
    let test = t.finish();
    main.build();
    (pb.build(), test)
}

#[test]
fn collection_round_trips_return_the_stored_object() {
    let cases: &[(&str, &str, &str, bool)] = &[
        ("ArrayList", "add", "get", true),
        ("ArrayList", "add", "remove", true),
        ("Vector", "addElement", "firstElement", false),
        ("Vector", "add", "lastElement", false),
        ("Stack", "push", "pop", false),
        ("Stack", "push", "peek", false),
        ("LinkedList", "add", "getFirst", false),
        ("LinkedList", "offer", "poll", false),
        ("LinkedList", "push", "pop", false),
        ("ArrayDeque", "addLast", "pollFirst", false),
        ("ArrayDeque", "addFirst", "peek", false),
        ("PriorityQueue", "offer", "poll", false),
    ];
    for &(collection, store, retrieve, needs_index) in cases {
        let (program, test) = round_trip_program(collection, store, retrieve, needs_index);
        let outcome = Interpreter::new(&program).run_entry(test);
        assert!(
            outcome.is_true(),
            "{collection}.{store}/{retrieve} round trip failed: {outcome:?}"
        );
    }
}

#[test]
fn map_round_trips_and_null_rejection() {
    // HashMap.put/get returns the stored value for the same key.
    let mut pb = ProgramBuilder::new();
    atlas_javalib::install_library(&mut pb);
    let mut main = pb.class("Main");
    let mut t = main.static_method("test");
    t.returns(Type::Bool);
    let key = t.local("key", Type::object());
    let value = t.local("value", Type::object());
    let map = t.local("map", Type::class("HashMap"));
    let out = t.local("out", Type::object());
    let missing = t.local("missing", Type::object());
    let other = t.local("other", Type::object());
    let eq = t.local("eq", Type::Bool);
    let miss_null = t.local("missNull", Type::Bool);
    let both = t.local("both", Type::Bool);
    let object = t.cref("Object");
    let map_class = t.cref("HashMap");
    t.new_object(key, object);
    t.new_object(value, object);
    t.new_object(other, object);
    t.new_object(map, map_class);
    let ctor = t.mref("HashMap", "<init>");
    let put = t.mref("HashMap", "put");
    let get = t.mref("HashMap", "get");
    t.call(None, ctor, Some(map), &[]);
    t.call(None, put, Some(map), &[key, value]);
    t.call(Some(out), get, Some(map), &[key]);
    t.call(Some(missing), get, Some(map), &[other]);
    t.ref_eq(eq, out, value);
    t.is_null(miss_null, missing);
    t.bin(both, atlas_ir::BinOp::And, eq, miss_null);
    t.ret(Some(both));
    let test = t.finish();
    main.build();
    let program = pb.build();
    assert!(Interpreter::new(&program).run_entry(test).is_true());

    // Hashtable rejects null values (the behaviour motivating the
    // instantiation strategy).
    let mut pb = ProgramBuilder::new();
    atlas_javalib::install_library(&mut pb);
    let mut main = pb.class("Main");
    let mut t = main.static_method("test");
    let key = t.local("key", Type::object());
    let nul = t.local("nul", Type::object());
    let table = t.local("table", Type::class("Hashtable"));
    let object = t.cref("Object");
    let table_class = t.cref("Hashtable");
    t.new_object(key, object);
    t.const_null(nul);
    t.new_object(table, table_class);
    let ctor = t.mref("Hashtable", "<init>");
    let put = t.mref("Hashtable", "put");
    t.call(None, ctor, Some(table), &[]);
    t.call(None, put, Some(table), &[key, nul]);
    let test = t.finish();
    main.build();
    let program = pb.build();
    let outcome = Interpreter::new(&program).run_entry(test);
    assert!(
        matches!(
            outcome,
            atlas_interp::ExecOutcome::Failed(atlas_interp::ExecError::Thrown(_))
        ),
        "Hashtable.put(key, null) must throw, got {outcome:?}"
    );
}

#[test]
fn iterator_walks_all_elements_in_order() {
    // Add three objects, iterate, and check the second element's identity.
    let mut pb = ProgramBuilder::new();
    atlas_javalib::install_library(&mut pb);
    let mut main = pb.class("Main");
    let mut t = main.static_method("test");
    t.returns(Type::Bool);
    let list = t.local("list", Type::class("ArrayList"));
    let a = t.local("a", Type::object());
    let b = t.local("b", Type::object());
    let c = t.local("c", Type::object());
    let it = t.local("it", Type::class("ArrayListIterator"));
    let x = t.local("x", Type::object());
    let eq = t.local("eq", Type::Bool);
    let has = t.local("has", Type::Bool);
    let both = t.local("both", Type::Bool);
    let object = t.cref("Object");
    let list_class = t.cref("ArrayList");
    for v in [a, b, c] {
        t.new_object(v, object);
    }
    t.new_object(list, list_class);
    let ctor = t.mref("ArrayList", "<init>");
    let add = t.mref("ArrayList", "add");
    let iterator = t.mref("ArrayList", "iterator");
    let next = t.mref("ArrayListIterator", "next");
    let has_next = t.mref("ArrayListIterator", "hasNext");
    t.call(None, ctor, Some(list), &[]);
    t.call(None, add, Some(list), &[a]);
    t.call(None, add, Some(list), &[b]);
    t.call(None, add, Some(list), &[c]);
    t.call(Some(it), iterator, Some(list), &[]);
    t.call(Some(x), next, Some(it), &[]);
    t.call(Some(x), next, Some(it), &[]);
    t.ref_eq(eq, x, b);
    t.call(Some(has), has_next, Some(it), &[]);
    t.bin(both, atlas_ir::BinOp::And, eq, has);
    t.ret(Some(both));
    let test = t.finish();
    main.build();
    let program = pb.build();
    assert!(Interpreter::new(&program).run_entry(test).is_true());
}

#[test]
fn vector_growth_through_native_arraycopy() {
    // Adding more than the initial capacity forces Vector.grow, which calls
    // the native System.arraycopy; the first element must survive.
    let mut pb = ProgramBuilder::new();
    atlas_javalib::install_library(&mut pb);
    let mut main = pb.class("Main");
    let mut t = main.static_method("test");
    t.returns(Type::Bool);
    let vec_v = t.local("vec", Type::class("Vector"));
    let first = t.local("first", Type::object());
    let filler = t.local("filler", Type::object());
    let out = t.local("out", Type::object());
    let eq = t.local("eq", Type::Bool);
    let i = t.local("i", Type::Int);
    let n = t.local("n", Type::Int);
    let one = t.local("one", Type::Int);
    let cond = t.local("cond", Type::Bool);
    let object = t.cref("Object");
    let vec_class = t.cref("Vector");
    t.new_object(first, object);
    t.new_object(filler, object);
    t.new_object(vec_v, vec_class);
    let ctor = t.mref("Vector", "<init>");
    let add = t.mref("Vector", "addElement");
    let get = t.mref("Vector", "firstElement");
    t.call(None, ctor, Some(vec_v), &[]);
    t.call(None, add, Some(vec_v), &[first]);
    t.const_int(i, 0);
    t.const_int(n, 30);
    t.const_int(one, 1);
    t.while_stmt(
        |m| {
            m.bin(cond, atlas_ir::BinOp::Lt, i, n);
            cond
        },
        |m| {
            m.call(None, add, Some(vec_v), &[filler]);
            m.bin(i, atlas_ir::BinOp::Add, i, one);
        },
    );
    t.call(Some(out), get, Some(vec_v), &[]);
    t.ref_eq(eq, out, first);
    t.ret(Some(eq));
    let test = t.finish();
    main.build();
    let program = pb.build();
    assert!(Interpreter::new(&program).run_entry(test).is_true());
}

#[test]
fn out_of_bounds_get_throws() {
    let mut pb = ProgramBuilder::new();
    atlas_javalib::install_library(&mut pb);
    let mut main = pb.class("Main");
    let mut t = main.static_method("test");
    t.returns(Type::object());
    let list = t.local("list", Type::class("ArrayList"));
    let out = t.local("out", Type::object());
    let five = t.local("five", Type::Int);
    let list_class = t.cref("ArrayList");
    t.new_object(list, list_class);
    let ctor = t.mref("ArrayList", "<init>");
    let get = t.mref("ArrayList", "get");
    t.call(None, ctor, Some(list), &[]);
    t.const_int(five, 5);
    t.call(Some(out), get, Some(list), &[five]);
    t.ret(Some(out));
    let test = t.finish();
    main.build();
    let program = pb.build();
    let outcome = Interpreter::new(&program).run_entry(test);
    assert!(matches!(
        outcome,
        atlas_interp::ExecOutcome::Failed(atlas_interp::ExecError::Thrown(_))
    ));
    assert!(!program.method(test).has_this());
}
