//! Property-based tests of the incremental-invalidation contract:
//!
//! * **Structural** (cheap, many cases): over random synthetic libraries
//!   and random mutations, a cluster's dependency-closure fingerprint
//!   changes **iff** the closure contains the mutated method — mutations
//!   dirty exactly the clusters whose closure contains them.
//! * **Behavioral** (expensive, few cases): over the `javalib-lang`
//!   variant and random mutations, an incremental run against a seeded
//!   store leaves every clean cluster's persisted verdicts and exported
//!   specs **byte-identical** on disk, re-runs exactly the dirty clusters,
//!   and reproduces the cold baseline's spec artifact byte for byte.

use atlas_apps::{generate_library, mutate_library, MutationConfig, SynthLibConfig};
use atlas_core::{AtlasConfig, ClusterDisposition, Engine, OracleEngine};
use atlas_ir::{DepGraph, LibraryInterface, MutationKind, Program};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::PathBuf;

const KINDS: [MutationKind; 4] = [
    MutationKind::RenameLocal,
    MutationKind::BodyEdit,
    MutationKind::AddMethod,
    MutationKind::SignatureChange,
];

/// Per-cluster closure fingerprints of a program under a cluster list.
fn closure_fingerprints(program: &Program, clusters: &[Vec<atlas_ir::ClassId>]) -> Vec<u64> {
    let dep_graph = DepGraph::build(program);
    clusters
        .iter()
        .map(|c| dep_graph.closure_fingerprint(c))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Structural contract: a mutation dirties exactly the clusters whose
    /// (new) dependency closure contains the mutated method.
    #[test]
    fn mutations_dirty_exactly_the_containing_closures(
        lib_seed in 0u64..1000,
        kind_pick in 0usize..KINDS.len(),
        mutation_seed in 0u64..1000,
    ) {
        let lib = generate_library(&SynthLibConfig {
            name: "prop".to_string(),
            seed: lib_seed,
            ..SynthLibConfig::default()
        });
        let kind = KINDS[kind_pick];
        let Ok(mutated) = mutate_library(
            &lib.program,
            &MutationConfig::new(kind, mutation_seed),
        ) else {
            // Nothing eligible for this kind in this library: vacuous.
            return Ok(());
        };
        let before = closure_fingerprints(&lib.program, &lib.clusters);
        let after = closure_fingerprints(&mutated.program, &lib.clusters);
        let new_graph = DepGraph::build(&mutated.program);
        for (i, cluster) in lib.clusters.iter().enumerate() {
            let contains = new_graph
                .closure_of(cluster)
                .contains_method(mutated.outcome.method);
            // Fingerprint changed iff the closure contains the mutated
            // method.
            prop_assert_eq!(before[i] != after[i], contains);
        }
    }
}

/// The on-disk bytes of one shard: `(cache.json, specs.json)`, each
/// `None` when the file does not exist.
type ShardBytes = (Option<Vec<u8>>, Option<Vec<u8>>);

/// Shard file bytes (cache + specs) for every closure of a cluster list.
fn shard_bytes(root: &std::path::Path, closures: &[u64]) -> Vec<ShardBytes> {
    closures
        .iter()
        .map(|&closure| {
            let entry = atlas_store::shard_entry(root, closure);
            (
                std::fs::read(entry.cache).ok(),
                std::fs::read(entry.specs).ok(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Behavioral contract on a real library variant: clean clusters'
    /// persisted artifacts stay byte-identical, dirty clusters (and only
    /// they) re-run, and the spliced artifact equals the cold baseline.
    #[test]
    fn incremental_runs_splice_clean_clusters_byte_identically(
        kind_pick in 0usize..KINDS.len(),
        mutation_seed in 0u64..100,
    ) {
        let root: PathBuf = std::env::temp_dir().join(format!(
            "atlas-incr-prop-{}-{kind_pick}-{mutation_seed}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let extraction = (8, 64);
        let kind = KINDS[kind_pick];

        let variant = atlas_javalib::variant_named("javalib-lang").expect("registered");
        let old_program = variant.build_program();
        let old_interface = LibraryInterface::from_program(&old_program);
        let clusters = variant.cluster_ids(&old_program);
        let config = AtlasConfig {
            samples_per_cluster: 150,
            clusters: clusters.clone(),
            num_threads: 1,
            ..AtlasConfig::default()
        };

        // Seed the store with a cold full run over the old content.
        let old_engine = Engine::new(&old_program, &old_interface, config.clone());
        let mut session = old_engine.session();
        let old_outcome = session.run();
        session
            .persist_shards(&old_outcome, &root, extraction)
            .expect("seed shards");
        let old_provenance = old_engine.run_provenance();

        let Ok(mutated) = mutate_library(&old_program, &MutationConfig::new(kind, mutation_seed))
        else {
            let _ = std::fs::remove_dir_all(&root);
            return Ok(());
        };
        let new_program = mutated.program;
        let new_interface = LibraryInterface::from_program(&new_program);
        let new_engine = Engine::new(&new_program, &new_interface, config.clone());
        let mut incr = new_engine.incremental_session(&old_provenance);

        // Expected dirty set: exactly the clusters whose closure contains
        // the mutated method.
        let new_graph = DepGraph::build(&new_program);
        let expected_dirty: BTreeSet<usize> = clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| new_graph.closure_of(c).contains_method(mutated.outcome.method))
            .map(|(i, _)| i)
            .collect();
        // The diff partition must match closure membership.
        prop_assert_eq!(
            incr.dirty_indices().into_iter().collect::<BTreeSet<_>>(),
            expected_dirty.clone()
        );

        // Snapshot the clean shards before the incremental run.
        let clean_closures: Vec<u64> = incr
            .clean_indices()
            .iter()
            .map(|&i| incr.jobs()[i].closure)
            .collect();
        let before_bytes = shard_bytes(&root, &clean_closures);

        let outcome = incr.run_with_store(&root, extraction).expect("incremental");
        prop_assert_eq!(outcome.forced_dirty, 0);
        prop_assert_eq!(outcome.dirty_clusters, expected_dirty.len());
        // The dirty clusters reran; the clean clusters spliced.
        for cluster in &outcome.clusters {
            match &cluster.disposition {
                ClusterDisposition::Reran(_) => {
                    prop_assert!(expected_dirty.contains(&cluster.index))
                }
                ClusterDisposition::Spliced { .. } => {
                    prop_assert!(!expected_dirty.contains(&cluster.index))
                }
            }
        }
        // Clean shards: byte-identical on disk, verdicts and specs alike.
        prop_assert_eq!(shard_bytes(&root, &clean_closures), before_bytes);

        // Splice invariant: incremental == cold baseline, byte for byte.
        let cold = Engine::new(&new_program, &new_interface, config).run();
        prop_assert_eq!(
            outcome
                .spec_artifact(&new_program)
                .encode(&new_program)
                .unwrap()
                .render(),
            cold.spec_artifact(&new_program, &new_interface, extraction.0, extraction.1)
                .encode(&new_program)
                .unwrap()
                .render()
        );
        std::fs::remove_dir_all(&root).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Cross-engine splice: shards persisted by a *tree-walking* cold run
    /// warm-start a *bytecode* (default-engine) incremental run.  Nothing
    /// may be forced dirty, the splice must reproduce the byte-identical
    /// artifact, and both engines' cold baselines must agree — verdicts
    /// and spec exports carry no trace of which engine produced them.
    #[test]
    fn splice_survives_the_engine_swap(
        kind_pick in 0usize..KINDS.len(),
        mutation_seed in 0u64..100,
    ) {
        let root: PathBuf = std::env::temp_dir().join(format!(
            "atlas-incr-xengine-{}-{kind_pick}-{mutation_seed}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let extraction = (8, 64);
        let kind = KINDS[kind_pick];

        let variant = atlas_javalib::variant_named("javalib-lang").expect("registered");
        let old_program = variant.build_program();
        let old_interface = LibraryInterface::from_program(&old_program);
        let clusters = variant.cluster_ids(&old_program);
        let config = AtlasConfig {
            samples_per_cluster: 150,
            clusters: clusters.clone(),
            num_threads: 1,
            ..AtlasConfig::default()
        };
        // The swap under test: seed with the reference engine, resume with
        // the default (bytecode) engine.
        prop_assert_eq!(config.engine, OracleEngine::Bytecode);
        let seed_config = AtlasConfig {
            engine: OracleEngine::TreeWalk,
            ..config.clone()
        };

        let old_engine = Engine::new(&old_program, &old_interface, seed_config);
        let mut session = old_engine.session();
        let old_outcome = session.run();
        session
            .persist_shards(&old_outcome, &root, extraction)
            .expect("seed shards");
        let old_provenance = old_engine.run_provenance();

        let Ok(mutated) = mutate_library(&old_program, &MutationConfig::new(kind, mutation_seed))
        else {
            let _ = std::fs::remove_dir_all(&root);
            return Ok(());
        };
        let new_program = mutated.program;
        let new_interface = LibraryInterface::from_program(&new_program);
        let new_engine = Engine::new(&new_program, &new_interface, config.clone());
        let mut incr = new_engine.incremental_session(&old_provenance);
        let outcome = incr.run_with_store(&root, extraction).expect("incremental");

        // The engine swap must not force a single extra re-execution: the
        // persisted verdicts are engine-independent.
        prop_assert_eq!(outcome.forced_dirty, 0);
        let spliced = outcome
            .clusters
            .iter()
            .filter(|c| matches!(c.disposition, ClusterDisposition::Spliced { .. }))
            .count();
        prop_assert_eq!(spliced, clusters.len() - outcome.dirty_clusters);

        // The spliced artifact matches a cold run under either engine.
        let artifact = outcome
            .spec_artifact(&new_program)
            .encode(&new_program)
            .unwrap()
            .render();
        for engine in [OracleEngine::Bytecode, OracleEngine::TreeWalk] {
            let cold_config = AtlasConfig { engine, ..config.clone() };
            let cold = Engine::new(&new_program, &new_interface, cold_config).run();
            prop_assert_eq!(
                &artifact,
                &cold.spec_artifact(&new_program, &new_interface, extraction.0, extraction.1)
                    .encode(&new_program)
                    .unwrap()
                    .render()
            );
        }
        std::fs::remove_dir_all(&root).unwrap();
    }
}
