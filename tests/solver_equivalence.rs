//! Equivalence of the difference-propagation worklist solver and the
//! retained naive reference: on randomized synthetic constraint graphs and
//! on graphs extracted from generated benchmark apps, both algorithms must
//! compute the identical closure (`PointsToResult` equality covers the
//! points-to sets, the abstract heap, and the derived flow graph).

use atlas_pointsto::{
    ExtractionOptions, Graph, LoadEdge, NodeId, ObjId, SolveAlgorithm, Solver, StoreEdge,
};
use proptest::prelude::*;

const NODES: usize = 18;
const OBJS: usize = 6;
const FIELDS: usize = 3;

/// One randomized constraint: kind (alloc/copy/store/load) plus operand
/// picks resolved against the synthetic node/object/field spaces.
type RawEdge = (
    usize,
    prop::sample::Index,
    prop::sample::Index,
    prop::sample::Index,
);

fn build_graph(edges: &[RawEdge]) -> Graph {
    let mut g = Graph::synthetic(NODES, OBJS);
    for (kind, a, b, f) in edges {
        match kind % 4 {
            0 => g
                .alloc_edges
                .push((ObjId(a.index(OBJS) as u32), NodeId(b.index(NODES) as u32))),
            1 => g
                .copy_edges
                .push((NodeId(a.index(NODES) as u32), NodeId(b.index(NODES) as u32))),
            2 => g.store_edges.push(StoreEdge {
                src: NodeId(a.index(NODES) as u32),
                field: f.index(FIELDS) as u32,
                objvar: NodeId(b.index(NODES) as u32),
            }),
            _ => g.load_edges.push(LoadEdge {
                objvar: NodeId(a.index(NODES) as u32),
                field: f.index(FIELDS) as u32,
                dst: NodeId(b.index(NODES) as u32),
            }),
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The worklist solver computes the identical `PointsToResult` to the
    /// naive reference on randomized graphs.
    #[test]
    fn worklist_equals_naive_on_random_graphs(
        edges in proptest::collection::vec(
            (0..4usize, any::<prop::sample::Index>(), any::<prop::sample::Index>(), any::<prop::sample::Index>()),
            1..140,
        )
    ) {
        let graph = build_graph(&edges);
        let worklist = Solver::new().solve(&graph);
        let naive = Solver::naive_reference().solve(&graph);
        prop_assert!(worklist == naive, "closures differ on {} edges", edges.len());
        prop_assert_eq!(worklist.num_points_to_edges(), naive.num_points_to_edges());
        // Spot-check the query layer on a few node pairs too: equal closures
        // must answer equal alias/transfer queries.
        for i in 0..NODES.min(6) {
            for j in 0..NODES.min(6) {
                let (a, b) = (NodeId(i as u32), NodeId(j as u32));
                prop_assert_eq!(worklist.alias(a, b), naive.alias(a, b));
                prop_assert_eq!(worklist.transfer(a, b), naive.transfer(a, b));
            }
        }
    }

    /// Dense graphs with every constraint hitting a tiny node space force
    /// deep heap/copy interaction; the algorithms must still agree.
    #[test]
    fn worklist_equals_naive_on_dense_tiny_graphs(
        edges in proptest::collection::vec(
            (0..4usize, any::<prop::sample::Index>(), any::<prop::sample::Index>(), any::<prop::sample::Index>()),
            20..80,
        )
    ) {
        let mut g = Graph::synthetic(5, 3);
        for (kind, a, b, f) in &edges {
            match kind % 4 {
                0 => g.alloc_edges.push((ObjId(a.index(3) as u32), NodeId(b.index(5) as u32))),
                1 => g.copy_edges.push((NodeId(a.index(5) as u32), NodeId(b.index(5) as u32))),
                2 => g.store_edges.push(StoreEdge {
                    src: NodeId(a.index(5) as u32),
                    field: f.index(2) as u32,
                    objvar: NodeId(b.index(5) as u32),
                }),
                _ => g.load_edges.push(LoadEdge {
                    objvar: NodeId(a.index(5) as u32),
                    field: f.index(2) as u32,
                    dst: NodeId(b.index(5) as u32),
                }),
            }
        }
        let worklist = Solver::with_algorithm(SolveAlgorithm::Worklist).solve(&g);
        let naive = Solver::with_algorithm(SolveAlgorithm::NaiveReference).solve(&g);
        prop_assert!(worklist == naive);
    }
}

/// The algorithms agree on real extracted graphs: generated benchmark apps
/// under all three library variants.
#[test]
fn worklist_equals_naive_on_generated_apps() {
    for index in [0usize, 7] {
        let app = atlas_apps::generate_app(index, 0xE05EED);
        let program = &app.program;
        let variants = [
            ExtractionOptions::with_implementation(),
            ExtractionOptions::empty_specs(),
            ExtractionOptions::with_specs(
                atlas_javalib::ground_truth_specs(program)
                    .into_iter()
                    .collect(),
            ),
        ];
        for options in variants {
            let graph = Graph::extract(program, &options);
            let worklist = Solver::new().solve(&graph);
            let naive = Solver::naive_reference().solve(&graph);
            assert!(worklist == naive, "app {index}: closures differ");
        }
    }
}
