//! Integration tests for the central soundness/precision property of the
//! paper (Theorem 4.2 / Appendix A): analyzing a client against code-fragment
//! specifications produces the same client-visible points-to facts as
//! analyzing it against the library implementation the specifications
//! summarize — and strictly better facts than analyzing nothing.

use atlas_ir::builder::ProgramBuilder;
use atlas_ir::{LibraryInterface, MethodId, ParamSlot, Program, Type};
use atlas_javalib::ground_truth_specs;
use atlas_pointsto::{ExtractionOptions, Graph, Node, PointsToStats, Solver};
use atlas_spec::{CodeFragments, Fsa, PathSpec, StateId};

/// Box library plus a client that stores, clones twice, and reads back.
fn box_clone_client() -> (Program, MethodId) {
    let mut pb = ProgramBuilder::new();
    atlas_javalib::install_library(&mut pb);
    atlas_javalib::install_box_example(&mut pb);
    let mut main = pb.class("Main");
    let mut t = main.static_method("test");
    t.returns(Type::Bool);
    let in_v = t.local("in", Type::object());
    let box_v = t.local("box", Type::class("Box"));
    let box2 = t.local("box2", Type::class("Box"));
    let box3 = t.local("box3", Type::class("Box"));
    let out_v = t.local("out", Type::object());
    let other = t.local("other", Type::object());
    let object = t.cref("Object");
    let box_c = t.cref("Box");
    t.new_object(in_v, object);
    t.new_object(other, object);
    t.new_object(box_v, box_c);
    let set = t.mref("Box", "set");
    let get = t.mref("Box", "get");
    let clone = t.mref("Box", "clone");
    t.call(None, set, Some(box_v), &[in_v]);
    t.call(Some(box2), clone, Some(box_v), &[]);
    t.call(Some(box3), clone, Some(box2), &[]);
    t.call(Some(out_v), get, Some(box3), &[]);
    let test = t.finish();
    main.build();
    (pb.build(), test)
}

/// The starred Box specification of Figure 5 row 3, as an automaton.
fn box_star_fsa(program: &Program) -> Fsa {
    let set = program.method_qualified("Box.set").unwrap();
    let get = program.method_qualified("Box.get").unwrap();
    let clone = program.method_qualified("Box.clone").unwrap();
    let word = vec![
        ParamSlot::param(set, 0),
        ParamSlot::receiver(set),
        ParamSlot::receiver(clone),
        ParamSlot::ret(clone),
        ParamSlot::receiver(get),
        ParamSlot::ret(get),
    ];
    let fsa = Fsa::prefix_tree(&[word]);
    fsa.merge(StateId(4), StateId(2))
}

#[test]
fn starred_spec_fragments_match_the_implementation_on_the_clone_client() {
    let (program, test) = box_clone_client();
    let tm = program.method(test);
    let in_node = Node::Var(test, tm.var_named("in").unwrap());
    let out_node = Node::Var(test, tm.var_named("out").unwrap());
    let other_node = Node::Var(test, tm.var_named("other").unwrap());

    // Implementation analysis: `out` aliases `in` through two clones.
    let impl_graph = Graph::extract(&program, &ExtractionOptions::with_implementation());
    let impl_result = Solver::new().solve(&impl_graph);
    let a = impl_graph.find_node(in_node).unwrap();
    let b = impl_graph.find_node(out_node).unwrap();
    let c = impl_graph.find_node(other_node).unwrap();
    assert!(impl_result.alias(a, b));
    assert!(!impl_result.alias(a, c));

    // Specification analysis with the starred automaton: same client facts.
    let fragments = CodeFragments::from_fsa(&program, &box_star_fsa(&program));
    let spec_graph = Graph::extract(
        &program,
        &ExtractionOptions::with_specs(fragments.to_overrides()),
    );
    let spec_result = Solver::new().solve(&spec_graph);
    let a = spec_graph.find_node(in_node).unwrap();
    let b = spec_graph.find_node(out_node).unwrap();
    let c = spec_graph.find_node(other_node).unwrap();
    assert!(
        spec_result.alias(a, b),
        "fragments must reproduce the in/out alias"
    );
    assert!(
        !spec_result.alias(a, c),
        "fragments must not add spurious aliases"
    );

    // Without specifications the flow is lost entirely.
    let empty_graph = Graph::extract(&program, &ExtractionOptions::empty_specs());
    let empty_result = Solver::new().solve(&empty_graph);
    let a = empty_graph.find_node(in_node).unwrap();
    let b = empty_graph.find_node(out_node).unwrap();
    assert!(!empty_result.alias(a, b));
}

#[test]
fn star_generalization_extends_the_accepted_language() {
    // The prefix-tree automaton of the single 1-clone example accepts only
    // that chain; the merged (starred) automaton accepts every number of
    // clones — this is the inductive generalization of Section 5.3.  At the
    // fragment level both compile without error and the starred fragments
    // stay within the same set of methods.
    let (program, _) = box_clone_client();
    let set = program.method_qualified("Box.set").unwrap();
    let get = program.method_qualified("Box.get").unwrap();
    let clone = program.method_qualified("Box.clone").unwrap();
    let chain = |n: usize| {
        let mut w = vec![ParamSlot::param(set, 0), ParamSlot::receiver(set)];
        for _ in 0..n {
            w.push(ParamSlot::receiver(clone));
            w.push(ParamSlot::ret(clone));
        }
        w.push(ParamSlot::receiver(get));
        w.push(ParamSlot::ret(get));
        w
    };
    let prefix_tree = Fsa::prefix_tree(&[chain(1)]);
    let starred = box_star_fsa(&program);
    for n in 0..4 {
        assert_eq!(prefix_tree.accepts(&chain(n)), n == 1);
        assert!(starred.accepts(&chain(n)));
    }
    let finite_frags = CodeFragments::from_specs(&program, &[PathSpec::new(chain(1)).unwrap()]);
    let starred_frags = CodeFragments::from_fsa(&program, &starred);
    let finite_methods: Vec<_> = finite_frags.methods().collect();
    let starred_methods: Vec<_> = starred_frags.methods().collect();
    assert_eq!(finite_methods, starred_methods);
    assert!(starred_frags.num_statements() <= finite_frags.num_statements());
}

/// Builds a client exercising ArrayList/HashMap/Stack flows for the
/// ground-truth-vs-implementation comparison.
fn collections_client() -> (Program, MethodId) {
    let mut pb = ProgramBuilder::new();
    atlas_javalib::install_library(&mut pb);
    let mut main = pb.class("Main");
    let mut t = main.static_method("run");
    let secret = t.local("secret", Type::object());
    let key = t.local("key", Type::object());
    let list = t.local("list", Type::class("ArrayList"));
    let map = t.local("map", Type::class("HashMap"));
    let stack = t.local("stack", Type::class("Stack"));
    let from_list = t.local("fromList", Type::object());
    let from_map = t.local("fromMap", Type::object());
    let from_stack = t.local("fromStack", Type::object());
    let zero = t.local("zero", Type::Int);
    let object = t.cref("Object");
    t.new_object(secret, object);
    t.new_object(key, object);
    for (var, class) in [(list, "ArrayList"), (map, "HashMap"), (stack, "Stack")] {
        let cid = t.cref(class);
        t.new_object(var, cid);
        let ctor = t.mref(class, "<init>");
        t.call(None, ctor, Some(var), &[]);
    }
    let add = t.mref("ArrayList", "add");
    let get = t.mref("ArrayList", "get");
    let put = t.mref("HashMap", "put");
    let mget = t.mref("HashMap", "get");
    let push = t.mref("Stack", "push");
    let pop = t.mref("Stack", "pop");
    t.const_int(zero, 0);
    t.call(None, add, Some(list), &[secret]);
    t.call(Some(from_list), get, Some(list), &[zero]);
    t.call(None, put, Some(map), &[key, secret]);
    t.call(Some(from_map), mget, Some(map), &[key]);
    t.call(None, push, Some(stack), &[secret]);
    t.call(Some(from_stack), pop, Some(stack), &[]);
    let run = t.finish();
    main.build();
    (pb.build(), run)
}

#[test]
fn ground_truth_specs_are_precise_and_sound_for_collection_flows() {
    let (program, run) = collections_client();
    let rm = program.method(run);
    let secret = Node::Var(run, rm.var_named("secret").unwrap());
    let retrieved =
        ["fromList", "fromMap", "fromStack"].map(|n| Node::Var(run, rm.var_named(n).unwrap()));

    // Analysis against the real implementation.
    let impl_graph = Graph::extract(&program, &ExtractionOptions::with_implementation());
    let impl_result = Solver::new().solve(&impl_graph);
    // Analysis against ground-truth fragments.
    let overrides = ground_truth_specs(&program).into_iter().collect();
    let spec_graph = Graph::extract(&program, &ExtractionOptions::with_specs(overrides));
    let spec_result = Solver::new().solve(&spec_graph);

    for node in retrieved {
        let ia = impl_graph.find_node(secret).unwrap();
        let ib = impl_graph.find_node(node).unwrap();
        assert!(
            impl_result.alias(ia, ib),
            "implementation must see the flow"
        );
        let sa = spec_graph.find_node(secret).unwrap();
        let sb = spec_graph.find_node(node).unwrap();
        assert!(spec_result.alias(sa, sb), "ground truth must see the flow");
    }

    // Precision: the ground-truth analysis computes no more non-trivial
    // client points-to edges than the implementation analysis (Figure 9c
    // measures how much *more* the implementation reports).
    let trivial_graph = Graph::extract(&program, &ExtractionOptions::empty_specs());
    let trivial_result = Solver::new().solve(&trivial_graph);
    let trivial = PointsToStats::collect(&program, &trivial_graph, &trivial_result);
    let impl_stats = PointsToStats::collect(&program, &impl_graph, &impl_result);
    let spec_stats = PointsToStats::collect(&program, &spec_graph, &spec_result);
    assert!(spec_stats.nontrivial(&trivial) <= impl_stats.nontrivial(&trivial));
    assert!(spec_stats.nontrivial(&trivial) > 0);
}

#[test]
fn inferred_box_specs_round_trip_through_the_full_pipeline() {
    // End-to-end: infer on the Box cluster, compile to fragments, analyze
    // the clone client, and check the headline alias fact.
    let (program, test) = box_clone_client();
    let interface = LibraryInterface::from_program(&program);
    let box_class = program.class_named("Box").unwrap();
    let config = atlas_core::AtlasConfig {
        samples_per_cluster: 3_000,
        clusters: vec![vec![box_class]],
        ..atlas_core::AtlasConfig::default()
    };
    let outcome = atlas_core::infer_specifications(&program, &interface, &config);
    let fragments = outcome.fragments(&program);
    let graph = Graph::extract(
        &program,
        &ExtractionOptions::with_specs(fragments.to_overrides()),
    );
    let result = Solver::new().solve(&graph);
    let tm = program.method(test);
    let a = graph
        .find_node(Node::Var(test, tm.var_named("in").unwrap()))
        .unwrap();
    let c = graph
        .find_node(Node::Var(test, tm.var_named("other").unwrap()))
        .unwrap();
    // Precision always holds: no spurious alias with the unrelated object.
    assert!(!result.alias(a, c));
    // The set/get specification must have been inferred (the clone star may
    // or may not be found at this sampling budget).
    let set = program.method_qualified("Box.set").unwrap();
    let get = program.method_qualified("Box.get").unwrap();
    assert!(fragments.body(set).is_some());
    assert!(fragments.body(get).is_some());
}
