//! Property-based tests (proptest) over the core data structures:
//! path-specification well-formedness, FSA/prefix-tree invariants, the
//! points-to solver, and witness synthesis.

use atlas_ir::{LibraryInterface, MethodId, ParamSlot, Program, SlotKind};
use atlas_learn::{Oracle, OracleConfig};
use atlas_pointsto::{ExtractionOptions, Graph, Solver};
use atlas_spec::{CodeFragments, Fsa, PathSpec};
use atlas_synth::{synthesize_witness, InitStrategy, InstantiationPlanner};
use proptest::prelude::*;

fn library() -> Program {
    atlas_javalib::library_program()
}

/// Strategy producing structurally valid path-specification words over the
/// library interface: alternating entry/exit symbols of the same method,
/// ending in a return, no consecutive returns across steps.
fn valid_word(
    interface: &LibraryInterface,
    max_steps: usize,
) -> impl Strategy<Value = Vec<ParamSlot>> {
    let methods_with_return: Vec<MethodId> = interface
        .methods()
        .iter()
        .filter(|sig| !sig.is_constructor && sig.returns_reference() && sig.has_this)
        .map(|sig| sig.method)
        .collect();
    let methods_any: Vec<MethodId> = interface
        .methods()
        .iter()
        .filter(|sig| !sig.is_constructor && sig.has_this)
        .map(|sig| sig.method)
        .collect();
    let steps = 1..=max_steps;
    (
        steps,
        proptest::collection::vec(any::<prop::sample::Index>(), max_steps * 2 + 1),
    )
        .prop_map(move |(k, picks)| {
            let mut word = Vec::new();
            for i in 0..k {
                let last = i + 1 == k;
                let method = if last {
                    methods_with_return[picks[2 * i].index(methods_with_return.len())]
                } else {
                    methods_any[picks[2 * i].index(methods_any.len())]
                };
                // Entry symbol: receiver (never a return, so the
                // "consecutive returns" constraint holds trivially).
                word.push(ParamSlot::receiver(method));
                // Exit symbol: return for the last step, receiver otherwise.
                if last {
                    word.push(ParamSlot::ret(method));
                } else {
                    word.push(ParamSlot::param(method, 0));
                }
            }
            word
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Structurally valid words are accepted by the PathSpec constructor and
    /// survive a round trip through their own symbols.
    #[test]
    fn valid_words_form_path_specs(word in valid_word(&LibraryInterface::from_program(&library()), 3)) {
        // Words whose non-final steps picked a parameter slot that does not
        // exist (method with no reference parameters) are filtered out.
        let library = library();
        let interface = LibraryInterface::from_program(&library);
        let ok = word.chunks(2).all(|c| {
            interface.slots_of(c[0].method).contains(&c[1]) || c[1].kind == SlotKind::Receiver
        });
        prop_assume!(ok);
        let spec = PathSpec::new(word.clone()).expect("structurally valid word");
        prop_assert_eq!(spec.symbols(), word.as_slice());
        prop_assert_eq!(spec.num_steps() * 2, word.len());
        prop_assert!(spec.last().is_return());
        // The premise has exactly k-1 edges.
        prop_assert_eq!(spec.premise().len(), spec.num_steps() - 1);
    }

    /// The prefix-tree acceptor accepts exactly its construction words.
    #[test]
    fn prefix_tree_accepts_exactly_its_words(
        words in proptest::collection::vec(valid_word(&LibraryInterface::from_program(&library()), 3), 1..5)
    ) {
        let fsa = Fsa::prefix_tree(&words);
        for w in &words {
            prop_assert!(fsa.accepts(w));
        }
        // Any strict prefix of odd length is rejected (prefix-tree accepting
        // states are word endpoints; odd-length prefixes are never words
        // because all words have even length).
        for w in &words {
            if w.len() > 1 {
                prop_assert!(!fsa.accepts(&w[..1]));
            }
        }
        // Enumeration returns at least the distinct words and each is
        // accepted.
        let enumerated = fsa.enumerate_words(8, 256);
        for w in &enumerated {
            prop_assert!(fsa.accepts(w));
        }
        let distinct: std::collections::BTreeSet<_> = words.iter().cloned().collect();
        prop_assert!(enumerated.len() >= distinct.iter().filter(|w| w.len() <= 8).count());
    }

    /// Merging automaton states only ever grows the accepted language.
    #[test]
    fn merging_states_grows_the_language(
        words in proptest::collection::vec(valid_word(&LibraryInterface::from_program(&library()), 2), 1..4),
        q_pick in any::<prop::sample::Index>(),
        p_pick in any::<prop::sample::Index>()
    ) {
        let fsa = Fsa::prefix_tree(&words);
        let n = fsa.num_states();
        prop_assume!(n > 2);
        let q = atlas_spec::StateId(1 + q_pick.index(n - 1) as u32);
        let p = atlas_spec::StateId(p_pick.index(n) as u32);
        prop_assume!(q != p && q != fsa.init());
        let merged = fsa.merge(q, p);
        for w in &words {
            prop_assert!(merged.accepts(w), "merge lost an original word");
        }
    }

    /// Code fragments generated from any set of valid specifications never
    /// introduce aliasing between unrelated client objects (a precision
    /// smoke test), and fragment generation never panics.
    #[test]
    fn fragments_never_alias_unrelated_objects(
        words in proptest::collection::vec(valid_word(&LibraryInterface::from_program(&library()), 2), 1..4)
    ) {
        let library = library();
        let specs: Vec<PathSpec> = words.into_iter().filter_map(|w| PathSpec::new(w).ok()).collect();
        prop_assume!(!specs.is_empty());
        let fragments = CodeFragments::from_specs(&library, &specs);
        // Build a tiny client with two unrelated objects and no library calls.
        let mut pb = atlas_ir::builder::ProgramBuilder::new();
        atlas_javalib::install_library(&mut pb);
        let mut main = pb.class("Main");
        let mut t = main.static_method("run");
        let a = t.local("a", atlas_ir::Type::object());
        let b = t.local("b", atlas_ir::Type::object());
        let object = t.cref("Object");
        t.new_object(a, object);
        t.new_object(b, object);
        let run = t.finish();
        main.build();
        let program = pb.build();
        let graph = Graph::extract(&program, &ExtractionOptions::with_specs(fragments.to_overrides()));
        let result = Solver::new().solve(&graph);
        let rm = program.method(run);
        let na = graph.find_node(atlas_pointsto::Node::Var(run, rm.var_named("a").unwrap())).unwrap();
        let nb = graph.find_node(atlas_pointsto::Node::Var(run, rm.var_named("b").unwrap())).unwrap();
        prop_assert!(!result.alias(na, nb));
    }

    /// Witness synthesis succeeds for every valid candidate over the library
    /// interface, and executing the witness never panics (it may fail, which
    /// the oracle treats as a rejection).
    #[test]
    fn witness_synthesis_is_total_over_valid_candidates(
        word in valid_word(&LibraryInterface::from_program(&library()), 2)
    ) {
        let library = library();
        let interface = LibraryInterface::from_program(&library);
        prop_assume!(word.chunks(2).all(|c| interface.slots_of(c[0].method).contains(&c[1])));
        let Ok(spec) = PathSpec::new(word) else { return Ok(()); };
        let planner = InstantiationPlanner::new(&library, &interface);
        let witness = synthesize_witness(&library, &interface, &planner, &spec, InitStrategy::Instantiate)
            .expect("synthesis must succeed for interface candidates");
        prop_assert!(witness.num_ops() >= spec.num_steps());
        let mut interp = atlas_interp::Interpreter::new(&library);
        let _ = witness.execute(&library, &mut interp);
    }

    /// The oracle is deterministic: asking the same question twice gives the
    /// same answer (memoized or not).
    #[test]
    fn oracle_is_deterministic(word in valid_word(&LibraryInterface::from_program(&library()), 2)) {
        let library = library();
        let interface = LibraryInterface::from_program(&library);
        prop_assume!(word.chunks(2).all(|c| interface.slots_of(c[0].method).contains(&c[1])));
        let mut memoized = Oracle::new(&library, &interface, OracleConfig::default());
        let mut fresh = Oracle::new(&library, &interface, OracleConfig { memoize: false, ..OracleConfig::default() });
        let a1 = memoized.check_word(&word);
        let a2 = memoized.check_word(&word);
        let b1 = fresh.check_word(&word);
        let b2 = fresh.check_word(&word);
        prop_assert_eq!(a1, a2);
        prop_assert_eq!(b1, b2);
        prop_assert_eq!(a1, b1);
    }
}
