//! The observability no-interference invariant: attaching an `atlas-obs`
//! recorder — at any level, under any thread count — never changes a
//! single result byte, and the event stream itself is a deterministic
//! function of the workload rather than the schedule.
//!
//! Three angles:
//!
//! * **Artifact identity.**  Batch, incremental, and resident-service
//!   pipelines are run traced and untraced; spec artifacts (and, for the
//!   incremental leg, every store file) must be byte-identical.
//! * **Drain-order determinism.**  The same traced session at 1 and 4
//!   worker threads must export the same `(lane, cat, name)` event
//!   sequence: lanes are keyed by workload structure (cluster index),
//!   never by thread identity, and the export stable-sorts by lane.
//! * **Schedule-free counters.**  Commutative merges make the counter
//!   map thread-count-independent too.

use atlas_core::{AtlasConfig, Engine, Recorder};
use atlas_ir::{LibraryInterface, MutationKind};
use atlas_serve::{Daemon, EditRequest, Envelope, Request, ServeConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

const EXTRACTION: (usize, usize) = (8, 64);

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("atlas-tracedet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_config(lib: &atlas_apps::RegistryLibrary, threads: usize) -> AtlasConfig {
    AtlasConfig {
        samples_per_cluster: 200,
        clusters: lib.clusters.clone(),
        num_threads: threads,
        ..AtlasConfig::default()
    }
}

/// One full inference run under `recorder`, rendered to artifact bytes.
fn batch_artifact(lib: &atlas_apps::RegistryLibrary, threads: usize, recorder: Recorder) -> String {
    let interface = LibraryInterface::from_program(&lib.program);
    Engine::new(&lib.program, &interface, small_config(lib, threads))
        .with_recorder(recorder)
        .run()
        .spec_artifact(&lib.program, &interface, EXTRACTION.0, EXTRACTION.1)
        .encode(&lib.program)
        .expect("encodable artifact")
        .render()
}

/// Every file under `root`, relative path -> bytes.
fn dir_bytes(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).expect("readable store") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .display()
                    .to_string();
                out.insert(rel, std::fs::read(&path).expect("readable file"));
            }
        }
    }
    let mut out = BTreeMap::new();
    if root.exists() {
        walk(root, root, &mut out);
    }
    out
}

#[test]
fn tracing_keeps_batch_artifacts_byte_identical() {
    let lib = atlas_apps::build_library("javalib-lang", 0x5EED).expect("registry library");
    let plain = batch_artifact(&lib, 2, Recorder::off());
    let traced_recorder = Recorder::tracing();
    let traced = batch_artifact(&lib, 2, traced_recorder.clone());
    assert_eq!(plain, traced, "tracing changed the spec artifact");
    assert!(
        !traced_recorder.events().is_empty(),
        "the traced run must actually have recorded spans"
    );
    assert!(
        traced_recorder.counter("engine.oracle_executions") > 0,
        "the traced run must have mirrored the engine counters"
    );
}

#[test]
fn tracing_keeps_incremental_run_and_store_bytes_identical() {
    // The same cold-seed + edit + incremental-rerun sequence against two
    // store roots: one fully traced, one untraced.  The spliced artifact
    // AND every byte the store wrote must match.
    let run = |store: &Path, recorder: Recorder| -> String {
        let lib = atlas_apps::build_library("javalib-lang", 0x5EED).expect("registry library");
        let interface = LibraryInterface::from_program(&lib.program);
        let engine = Engine::new(&lib.program, &interface, small_config(&lib, 2))
            .with_recorder(recorder.clone());
        let mut session = engine.session();
        let outcome = session.run();
        session
            .persist_shards(&outcome, store, EXTRACTION)
            .expect("seedable store");
        let provenance = engine.run_provenance();

        let mutated = atlas_apps::mutate_library(
            &lib.program,
            &atlas_apps::MutationConfig {
                kind: MutationKind::BodyEdit,
                seed: 7,
                target: None,
            },
        )
        .expect("eligible edit");
        let new_program = mutated.program;
        let new_interface = LibraryInterface::from_program(&new_program);
        let config = AtlasConfig {
            samples_per_cluster: 200,
            clusters: lib.clusters.clone(),
            num_threads: 2,
            ..AtlasConfig::default()
        };
        let engine = Engine::new(&new_program, &new_interface, config)
            .with_recorder(recorder.with_lane_base(4096));
        let mut incr = engine.incremental_session(&provenance);
        let outcome = incr
            .run_with_store(store, EXTRACTION)
            .expect("incremental run");
        outcome
            .spec_artifact(&new_program)
            .encode(&new_program)
            .expect("encodable artifact")
            .render()
    };

    let plain_store = scratch("incr-plain");
    let traced_store = scratch("incr-traced");
    let plain = run(&plain_store, Recorder::off());
    let recorder = Recorder::tracing();
    let traced = run(&traced_store, recorder.clone());
    assert_eq!(plain, traced, "tracing changed the incremental artifact");
    assert_eq!(
        dir_bytes(&plain_store),
        dir_bytes(&traced_store),
        "tracing changed what the store wrote"
    );
    assert!(
        recorder.counter("incr.spliced_verdicts") > 0,
        "the traced incremental run must have spliced (and counted it)"
    );
    let _ = std::fs::remove_dir_all(&plain_store);
    let _ = std::fs::remove_dir_all(&traced_store);
}

#[test]
fn event_stream_is_independent_of_thread_count() {
    let lib = atlas_apps::build_library("javalib-lang", 0x5EED).expect("registry library");
    let shape = |threads: usize| -> Vec<(u64, &'static str, &'static str)> {
        let recorder = Recorder::tracing();
        let artifact = batch_artifact(&lib, threads, recorder.clone());
        let shape = recorder
            .events()
            .iter()
            .map(|e| (e.lane, e.cat, e.name))
            .collect();
        // Counters merge commutatively: same totals at any parallelism.
        let mut counters = recorder.counters();
        counters.insert("artifact_len".to_string(), artifact.len() as u64);
        assert!(counters["engine.clusters"] > 0);
        shape
    };
    let single = shape(1);
    let parallel = shape(4);
    assert_eq!(
        single, parallel,
        "the exported event sequence must not depend on the thread count"
    );
}

#[test]
fn counters_are_independent_of_thread_count() {
    let lib = atlas_apps::build_library("javalib-lang", 0x5EED).expect("registry library");
    let counts = |threads: usize| {
        let recorder = Recorder::metrics();
        let _ = batch_artifact(&lib, threads, recorder.clone());
        recorder.counters()
    };
    assert_eq!(counts(1), counts(4));
}

const KINDS: &[MutationKind] = &[
    MutationKind::BodyEdit,
    MutationKind::RenameLocal,
    MutationKind::AddMethod,
    MutationKind::SignatureChange,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// A traced daemon and an untraced daemon serve the same random edit
    /// stream against separate store roots: every `specs` response — and
    /// every flushed store byte — must be identical.
    #[test]
    fn traced_daemon_serves_identical_bytes(entropy in any::<u64>()) {
        let run = |store: PathBuf, trace: bool| -> (Vec<String>, BTreeMap<String, Vec<u8>>) {
            let mut config = ServeConfig::small(store.clone());
            config.library = "javalib-lang".to_string();
            config.samples = 150;
            config.trace = trace;
            let daemon = Daemon::new(config).expect("daemon startup");
            let mut specs = Vec::new();
            for i in 0..6u64 {
                let seed = entropy.wrapping_add(i);
                let kind = KINDS[(seed % KINDS.len() as u64) as usize];
                let _ = daemon.handle(&Envelope::of(Request::Edit(EditRequest {
                    kind,
                    seed,
                    target: None,
                })));
                let response = daemon.handle(&Envelope::of(Request::Specs));
                specs.push(match response.outcome {
                    Ok(json) => json.render(),
                    Err(e) => format!("error:{}", e.code.as_str()),
                });
            }
            let _ = daemon.handle(&Envelope::of(Request::Shutdown));
            drop(daemon);
            let bytes = dir_bytes(&store);
            let _ = std::fs::remove_dir_all(&store);
            (specs, bytes)
        };
        let plain = run(scratch(&format!("serve-plain-{entropy:016x}")), false);
        let traced = run(scratch(&format!("serve-traced-{entropy:016x}")), true);
        prop_assert_eq!(plain.0, traced.0);
        prop_assert_eq!(plain.1, traced.1);
    }
}
