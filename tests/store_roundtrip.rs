//! Round-trip guarantees of the persistent store (`atlas-store`):
//!
//! * **JSON**: `parse(render(x)) == x` for randomized value trees — the
//!   self-contained parser and the report writer implement the same
//!   dialect;
//! * **cache artifacts**: a verdict cache harvested from a real inference
//!   run survives persist → reload with identical statistics and verdicts;
//! * **spec artifacts**: a learned specification set survives encode →
//!   render → parse → decode against a freshly built program, and
//!   re-encoding is byte-identical (the cross-process determinism
//!   invariant).

use atlas_core::{AtlasConfig, CacheArtifact, Engine, SpecArtifact};
use atlas_ir::LibraryInterface;
use atlas_store::Json;
use proptest::prelude::*;

/// Deterministic value-tree generator: SplitMix64 over a seed, recursing
/// with shrinking breadth/depth.  Produces every `Json` variant, gnarly
/// strings (quotes, controls, non-ASCII), and full-range floats — exactly
/// the population the writer can emit (non-finite floats are excluded:
/// they serialize as `null` by design).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn build_json(state: &mut u64, depth: usize) -> Json {
    let choice = if depth == 0 {
        splitmix(state) % 5
    } else {
        splitmix(state) % 7
    };
    match choice {
        0 => Json::Null,
        1 => Json::Bool(splitmix(state).is_multiple_of(2)),
        2 => Json::Int(splitmix(state) as i64),
        3 => {
            let f = f64::from_bits(splitmix(state));
            Json::Float(if f.is_finite() { f } else { 0.5 })
        }
        4 => {
            let len = (splitmix(state) % 12) as usize;
            let s: String =
                (0..len)
                    .map(|_| {
                        // Bias toward characters that exercise the escaper.
                        match splitmix(state) % 8 {
                            0 => '"',
                            1 => '\\',
                            2 => '\n',
                            3 => char::from_u32((splitmix(state) % 0x20) as u32).unwrap(),
                            4 => char::from_u32(0x80 + (splitmix(state) % 0x2000) as u32)
                                .unwrap_or('é'),
                            5 => char::from_u32(0x1F600 + (splitmix(state) % 0x50) as u32)
                                .unwrap_or('x'),
                            _ => char::from_u32(0x20 + (splitmix(state) % 0x5f) as u32).unwrap(),
                        }
                    })
                    .collect();
            Json::Str(s)
        }
        5 => {
            let len = (splitmix(state) % 4) as usize;
            Json::Arr((0..len).map(|_| build_json(state, depth - 1)).collect())
        }
        _ => {
            let len = (splitmix(state) % 4) as usize;
            let mut obj = Json::obj();
            for i in 0..len {
                // Distinct keys: the parser rejects duplicates.
                let key = format!("k{i}_{}", splitmix(state) % 100);
                obj = obj.set(&key, build_json(state, depth - 1));
            }
            obj
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The satellite property: `parser(writer(x)) == x` over randomized
    /// value trees.
    #[test]
    fn parser_inverts_writer(seed in any::<u64>()) {
        let mut state = seed;
        let value = build_json(&mut state, 3);
        let rendered = value.render();
        let parsed = Json::parse(&rendered)
            .unwrap_or_else(|e| panic!("writer output must parse: {e}\n{rendered}"));
        prop_assert_eq!(parsed, value);
    }
}

fn box_setup() -> (atlas_ir::Program, LibraryInterface) {
    let mut pb = atlas_ir::builder::ProgramBuilder::new();
    atlas_javalib::install_library(&mut pb);
    atlas_javalib::install_box_example(&mut pb);
    let program = pb.build();
    let interface = LibraryInterface::from_program(&program);
    (program, interface)
}

fn box_config(program: &atlas_ir::Program) -> AtlasConfig {
    AtlasConfig {
        samples_per_cluster: 250,
        clusters: vec![vec![program.class_named("Box").unwrap()]],
        num_threads: 1,
        ..AtlasConfig::default()
    }
}

/// The satellite store round-trip: persist a real harvested cache, reload
/// it, and check statistics and every verdict survive unchanged.  Since
/// the incremental refactor, a session's entries are keyed per cluster
/// closure, so the artifact carries one provenance shard per cluster.
#[test]
fn cache_artifact_preserves_stats_and_verdicts() {
    let (program, interface) = box_setup();
    let engine = Engine::new(&program, &interface, box_config(&program));
    let mut session = engine.session();
    let _ = session.run();
    let provenances = session.cluster_provenances();
    assert_eq!(provenances.len(), 1);
    assert_eq!(
        provenances[0].fingerprint,
        engine.provenance().fingerprint,
        "cluster shards are attributed to the library fingerprint"
    );
    assert_eq!(provenances[0].closure, session.jobs()[0].closure);
    let cache = session.into_cache();
    assert!(!cache.is_empty());

    let artifact = CacheArtifact::from_cache_shards(&cache, &provenances);
    let reparsed = Json::parse(&artifact.encode().render()).expect("render parses");
    let reloaded = CacheArtifact::decode(&reparsed).expect("decode");
    assert_eq!(reloaded, artifact);

    // Identical CacheStats...
    assert_eq!(reloaded.shards.len(), 1);
    assert_eq!(reloaded.shards[0].stats, cache.stats());
    assert_eq!(reloaded.shards[0].provenance, provenances[0]);
    // ...and identical verdicts for every key, in insertion order.
    let original: Vec<_> = cache.entries().collect();
    assert_eq!(reloaded.num_entries(), original.len());
    let live = reloaded.to_cache();
    for (key, verdict) in original {
        assert_eq!(live.peek(key), Some(verdict), "verdict changed for {key:?}");
    }
}

/// Spec artifacts survive the full file cycle against a *freshly built*
/// program, and re-encoding is byte-stable.
#[test]
fn spec_artifact_round_trips_and_is_byte_stable() {
    let (program, interface) = box_setup();
    let outcome = Engine::new(&program, &interface, box_config(&program)).run();
    let artifact = outcome.spec_artifact(&program, &interface, 8, 64);
    assert!(artifact.num_specs() > 0, "inference found specs to persist");

    let rendered = artifact.encode(&program).expect("encode").render();
    // Decode against a *new* build of the same program: names, not ids.
    let (program2, _) = box_setup();
    let reloaded =
        SpecArtifact::decode(&Json::parse(&rendered).unwrap(), &program2).expect("decode");
    assert_eq!(reloaded, artifact);
    assert_eq!(reloaded.all_specs(), outcome.specs(8, 64));
    // Byte-stability: re-encoding the reloaded artifact is identical.
    assert_eq!(
        reloaded.encode(&program2).expect("re-encode").render(),
        rendered
    );
}
