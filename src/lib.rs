//! Umbrella crate for the Atlas reproduction workspace.
//!
//! The actual functionality lives in the `crates/` members; this package
//! only hosts the runnable `examples/` and the cross-crate integration tests
//! in `tests/`.  See the workspace `README.md` for an overview and
//! `DESIGN.md` for the system inventory.

/// The workspace version, re-exported for convenience.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
