//! # atlas-flow
//!
//! The client analysis of the paper's evaluation: a static *explicit
//! information flow* analysis for (synthetic) Android apps.  Sensitive
//! sources (device identifiers, location, contacts, SMS) are methods whose
//! return values are tainted; sinks (SMS sending, HTTP upload, log leaks)
//! are methods whose payload argument must never receive tainted data.
//!
//! Flows are resolved through the heap using the points-to sets computed by
//! `atlas-pointsto`: a flow `(source, sink)` is reported when some object
//! returned by the source is reachable — through any chain of heap fields,
//! including the ghost fields introduced by specifications — from an object
//! passed to the sink.

pub mod taint;

pub use taint::{find_flows, sink_methods, source_methods, Flow, FlowResult};
