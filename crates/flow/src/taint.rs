//! Explicit information-flow analysis over points-to results.

use atlas_ir::{MethodId, Program};
use atlas_pointsto::{Graph, Node, ObjId, PointsToResult};
use std::collections::{BTreeSet, VecDeque};

/// One discovered information flow.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Flow {
    /// The source method whose return value is tainted.
    pub source: MethodId,
    /// The sink method whose payload argument receives tainted data.
    pub sink: MethodId,
}

/// The set of flows found in one program under one specification set.
#[derive(Debug, Clone, Default)]
pub struct FlowResult {
    /// The distinct `(source, sink)` flows.
    pub flows: BTreeSet<Flow>,
}

impl FlowResult {
    /// Number of distinct flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether no flow was found.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Renders the flows with qualified method names.
    pub fn describe(&self, program: &Program) -> Vec<String> {
        self.flows
            .iter()
            .map(|f| {
                format!(
                    "{} -> {}",
                    program.qualified_name(f.source),
                    program.qualified_name(f.sink)
                )
            })
            .collect()
    }
}

/// Resolves the configured source method names present in the program.
pub fn source_methods(program: &Program, names: &[&str]) -> Vec<MethodId> {
    names
        .iter()
        .filter_map(|n| program.method_qualified(n))
        .collect()
}

/// Resolves the configured sink method names present in the program.
pub fn sink_methods(program: &Program, names: &[&str]) -> Vec<MethodId> {
    names
        .iter()
        .filter_map(|n| program.method_qualified(n))
        .collect()
}

/// Finds all `(source, sink)` pairs such that an object returned by the
/// source may reach (directly or through heap fields) the payload argument
/// of the sink.
pub fn find_flows(
    program: &Program,
    graph: &Graph,
    result: &PointsToResult,
    sources: &[MethodId],
    sinks: &[MethodId],
) -> FlowResult {
    let mut out = FlowResult::default();
    // Objects returned by each source, plus everything reachable from them
    // through the heap (a contact list is as sensitive as its contacts).
    let tainted_by_source: Vec<(MethodId, BTreeSet<ObjId>)> = sources
        .iter()
        .map(|&src| {
            let roots = result.points_to_node(graph, Node::Ret(src));
            (src, heap_reachable(result, &roots))
        })
        .collect();
    for &sink in sinks {
        let sink_objs = sink_argument_objects(program, graph, result, sink);
        if sink_objs.is_empty() {
            continue;
        }
        let reachable = heap_reachable(result, &sink_objs);
        for (src, tainted) in &tainted_by_source {
            if tainted.iter().any(|o| reachable.contains(o)) {
                out.flows.insert(Flow { source: *src, sink });
            }
        }
    }
    out
}

/// The objects that may be passed as the first reference parameter of the
/// sink method.
fn sink_argument_objects(
    program: &Program,
    graph: &Graph,
    result: &PointsToResult,
    sink: MethodId,
) -> BTreeSet<ObjId> {
    let method = program.method(sink);
    let mut objs = BTreeSet::new();
    for i in 0..method.num_params() {
        let v = method.param_var(i);
        if !method.var_data(v).ty.is_reference() {
            continue;
        }
        objs.extend(result.points_to_node(graph, Node::Var(sink, v)));
        // Only the first reference parameter is considered the payload.
        break;
    }
    objs
}

/// The set of objects reachable from `roots` through any heap field
/// (including `$elems` and specification ghost fields), plus the roots
/// themselves.
fn heap_reachable(result: &PointsToResult, roots: &BTreeSet<ObjId>) -> BTreeSet<ObjId> {
    let mut seen: BTreeSet<ObjId> = roots.clone();
    let mut queue: VecDeque<ObjId> = roots.iter().copied().collect();
    while let Some(o) = queue.pop_front() {
        for ((base, _field), contents) in result.heap_cells() {
            if *base != o {
                continue;
            }
            for &next in contents {
                if seen.insert(next) {
                    queue.push_back(next);
                }
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_ir::builder::ProgramBuilder;
    use atlas_ir::Type;
    use atlas_pointsto::{ExtractionOptions, Solver};

    /// A tiny program: source() returns a fresh Secret; the app stores it in
    /// a Box-like container and sends the retrieved value to sink().
    fn program(leaky: bool) -> atlas_ir::Program {
        let mut pb = ProgramBuilder::new();
        pb.class("Object").build();
        let mut secret = pb.class("Secret");
        secret.library(true);
        secret.build();
        let mut c = pb.class("Box");
        c.library(true);
        c.field("f", Type::object());
        let mut set = c.method("set");
        let this = set.this();
        let ob = set.param("ob", Type::object());
        set.store(this, "f", ob);
        set.finish();
        let mut get = c.method("get");
        get.returns(Type::object());
        let this = get.this();
        let r = get.local("r", Type::object());
        get.load(r, this, "f");
        get.ret(Some(r));
        get.finish();
        c.build();
        let mut api = pb.class("Api");
        api.library(true);
        let mut src = api.method("source");
        src.returns(Type::class("Secret"));
        src.this();
        let s = src.local("s", Type::class("Secret"));
        let secret_class = src.cref("Secret");
        src.new_object(s, secret_class);
        src.ret(Some(s));
        src.finish();
        let mut sink = api.method("sink");
        sink.this();
        sink.param("payload", Type::object());
        sink.finish();
        api.build();

        let mut app = pb.class("App");
        let mut run = app.static_method("run");
        let api_v = run.local("api", Type::class("Api"));
        let box_v = run.local("box", Type::class("Box"));
        let s = run.local("s", Type::class("Secret"));
        let out = run.local("out", Type::object());
        let benign = run.local("benign", Type::object());
        let api_class = run.cref("Api");
        let box_class = run.cref("Box");
        let obj_class = run.cref("Object");
        run.new_object(api_v, api_class);
        run.new_object(box_v, box_class);
        run.new_object(benign, obj_class);
        let source = run.mref("Api", "source");
        let sinkm = run.mref("Api", "sink");
        let set = run.mref("Box", "set");
        let get = run.mref("Box", "get");
        run.call(Some(s), source, Some(api_v), &[]);
        if leaky {
            run.call(None, set, Some(box_v), &[s]);
        } else {
            run.call(None, set, Some(box_v), &[benign]);
        }
        run.call(Some(out), get, Some(box_v), &[]);
        run.call(None, sinkm, Some(api_v), &[out]);
        run.finish();
        app.build();
        pb.build()
    }

    #[test]
    fn detects_flow_through_the_container() {
        let p = program(true);
        let graph = Graph::extract(&p, &ExtractionOptions::with_implementation());
        let result = Solver::new().solve(&graph);
        let sources = source_methods(&p, &["Api.source"]);
        let sinks = sink_methods(&p, &["Api.sink"]);
        assert_eq!(sources.len(), 1);
        assert_eq!(sinks.len(), 1);
        let flows = find_flows(&p, &graph, &result, &sources, &sinks);
        assert_eq!(flows.len(), 1);
        assert!(!flows.is_empty());
        let desc = flows.describe(&p);
        assert!(desc[0].contains("Api.source -> Api.sink"), "{desc:?}");
    }

    #[test]
    fn no_flow_for_benign_program_or_empty_specs() {
        // Benign variant: the secret never reaches the container.
        let p = program(false);
        let graph = Graph::extract(&p, &ExtractionOptions::with_implementation());
        let result = Solver::new().solve(&graph);
        let sources = source_methods(&p, &["Api.source"]);
        let sinks = sink_methods(&p, &["Api.sink"]);
        let flows = find_flows(&p, &graph, &result, &sources, &sinks);
        assert!(flows.is_empty());

        // Leaky variant but with the library treated as a no-op: the flow
        // through Box.set/get is missed (this is exactly the recall gap that
        // specifications close).
        let p = program(true);
        let graph = Graph::extract(&p, &ExtractionOptions::empty_specs());
        let result = Solver::new().solve(&graph);
        let sources = source_methods(&p, &["Api.source"]);
        let sinks = sink_methods(&p, &["Api.sink"]);
        let flows = find_flows(&p, &graph, &result, &sources, &sinks);
        assert!(flows.is_empty());
        // Unknown method names resolve to nothing.
        assert!(source_methods(&p, &["No.such"]).is_empty());
    }
}
