//! The interpreter itself.

use crate::builtins::BuiltinRegistry;
use crate::heap::Heap;
use crate::limits::{ExecLimits, StepBudget};
use crate::value::Value;
use atlas_ir::{BinOp, Constant, MethodId, Program, Stmt, Var};
use std::fmt;

/// Errors raised during execution.  A synthesized unit test that raises any
/// of these is treated as a *failing* potential witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Dereference of `null` (field access, array access, call receiver).
    NullPointer,
    /// Array access out of bounds.
    IndexOutOfBounds,
    /// Integer division or remainder by zero.
    DivideByZero,
    /// An explicit `throw` in library code.
    Thrown(String),
    /// The step / depth / heap budget was exhausted.
    LimitExceeded(&'static str),
    /// A native method without a registered builtin was called.
    MissingBuiltin(String),
    /// A builtin rejected its arguments.
    Builtin(String),
    /// A value of the wrong kind was used (e.g. branching on a non-boolean).
    TypeError(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::NullPointer => write!(f, "null pointer dereference"),
            ExecError::IndexOutOfBounds => write!(f, "array index out of bounds"),
            ExecError::DivideByZero => write!(f, "division by zero"),
            ExecError::Thrown(m) => write!(f, "exception thrown: {m}"),
            ExecError::LimitExceeded(what) => write!(f, "execution limit exceeded: {what}"),
            ExecError::MissingBuiltin(m) => write!(f, "native method has no builtin: {m}"),
            ExecError::Builtin(m) => write!(f, "builtin error: {m}"),
            ExecError::TypeError(m) => write!(f, "type error: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The outcome of executing an entry method.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// The method returned normally with the given value.
    Returned(Value),
    /// The method failed with an error.
    Failed(ExecError),
}

impl ExecOutcome {
    /// Whether the execution returned the boolean `true` — the success
    /// criterion for potential witnesses.
    pub fn is_true(&self) -> bool {
        matches!(self, ExecOutcome::Returned(Value::Bool(true)))
    }
}

enum Flow {
    Normal,
    Return(Value),
}

/// Blackbox access to a library implementation: allocate raw objects and
/// call methods.  Implemented by both execution engines — the
/// tree-walking [`Interpreter`] and the bytecode [`crate::Vm`] — so
/// callers that drive executions (witness tests, differential harnesses)
/// are engine-agnostic.
pub trait Executor {
    /// Allocates a raw object of `class` without running a constructor.
    fn alloc_object(&mut self, class: atlas_ir::ClassId) -> crate::heap::ObjRef;

    /// Executes a method call with the given receiver and arguments.
    fn call_method(
        &mut self,
        method: MethodId,
        recv: Option<Value>,
        args: &[Value],
    ) -> Result<Value, ExecError>;

    /// Number of statements charged against the step budget so far.
    fn steps(&self) -> usize;
}

/// A tree-walking concrete interpreter over a program.
///
/// This is the reference engine: the bytecode VM ([`crate::Vm`]) must
/// match it bit for bit on outcomes, step counts, and limit errors, and
/// the differential tests in `tests/vm_equivalence.rs` hold it to that.
#[derive(Debug)]
pub struct Interpreter<'p> {
    program: &'p Program,
    builtins: BuiltinRegistry,
    heap: Heap,
    budget: StepBudget,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter with the default builtins and limits.
    pub fn new(program: &'p Program) -> Interpreter<'p> {
        Interpreter::with_config(
            program,
            BuiltinRegistry::with_defaults(),
            ExecLimits::default(),
        )
    }

    /// Creates an interpreter with custom builtins and limits.
    pub fn with_config(
        program: &'p Program,
        builtins: BuiltinRegistry,
        limits: ExecLimits,
    ) -> Interpreter<'p> {
        Interpreter {
            program,
            builtins,
            heap: Heap::new(),
            budget: StepBudget::new(limits),
        }
    }

    /// Access to the heap (after execution), e.g. for inspecting effects.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Allocates a raw object of the given class on the heap without running
    /// a constructor.  Used by synthesized unit tests for the `x ← X()`
    /// allocation statements added during hole filling.
    pub fn alloc_object(&mut self, class: atlas_ir::ClassId) -> crate::heap::ObjRef {
        self.heap.alloc(class)
    }

    /// Number of statements executed so far.
    pub fn steps(&self) -> usize {
        self.budget.steps()
    }

    /// Executes a static entry method with no arguments and returns its
    /// outcome.  Never panics on program errors; all failures are reported
    /// as [`ExecOutcome::Failed`].
    pub fn run_entry(&mut self, method: MethodId) -> ExecOutcome {
        match self.call_method(method, None, &[]) {
            Ok(v) => ExecOutcome::Returned(v),
            Err(e) => ExecOutcome::Failed(e),
        }
    }

    /// Executes a method call with the given receiver and arguments.
    pub fn call_method(
        &mut self,
        method: MethodId,
        recv: Option<Value>,
        args: &[Value],
    ) -> Result<Value, ExecError> {
        self.budget.check_depth()?;
        let m = self.program.method(method);
        if m.is_native() {
            let name = self.program.qualified_name(method);
            let builtin = self
                .builtins
                .lookup(&name)
                .ok_or(ExecError::MissingBuiltin(name))?;
            return builtin(&mut self.heap, recv, args);
        }
        // Set up the frame: receiver, parameters, locals default to null/0.
        let mut locals: Vec<Value> = vec![Value::Null; m.num_vars()];
        if m.has_this() {
            locals[0] = recv.ok_or(ExecError::TypeError("missing receiver".into()))?;
            if locals[0].is_null() {
                return Err(ExecError::NullPointer);
            }
        }
        for i in 0..m.num_params() {
            let v = args.get(i).cloned().unwrap_or(Value::Null);
            locals[m.param_var(i).index() as usize] = v;
        }
        self.budget.push_frame();
        let body: Vec<Stmt> = m.body().to_vec();
        let result = self.exec_block(&body, &mut locals, method);
        self.budget.pop_frame();
        match result? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Ok(Value::Void),
        }
    }

    fn read(&self, locals: &[Value], v: Var) -> Value {
        locals
            .get(v.index() as usize)
            .cloned()
            .unwrap_or(Value::Null)
    }

    fn write(&self, locals: &mut Vec<Value>, v: Var, value: Value) {
        let idx = v.index() as usize;
        if idx >= locals.len() {
            locals.resize(idx + 1, Value::Null);
        }
        locals[idx] = value;
    }

    fn tick(&mut self) -> Result<(), ExecError> {
        self.budget.tick(self.heap.len())
    }

    fn exec_block(
        &mut self,
        block: &[Stmt],
        locals: &mut Vec<Value>,
        method: MethodId,
    ) -> Result<Flow, ExecError> {
        for stmt in block {
            match self.exec_stmt(stmt, locals, method)? {
                Flow::Normal => {}
                ret @ Flow::Return(_) => return Ok(ret),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        locals: &mut Vec<Value>,
        method: MethodId,
    ) -> Result<Flow, ExecError> {
        self.tick()?;
        match stmt {
            Stmt::Assign { dst, src } => {
                let v = self.read(locals, *src);
                self.write(locals, *dst, v);
            }
            Stmt::New { dst, class, .. } => {
                let r = self.heap.alloc(*class);
                self.write(locals, *dst, Value::Ref(r));
            }
            Stmt::NewArray { dst, len, .. } => {
                let len = self
                    .read(locals, *len)
                    .as_int()
                    .ok_or_else(|| ExecError::TypeError("array length must be int".into()))?;
                if len < 0 {
                    return Err(ExecError::IndexOutOfBounds);
                }
                let r = self.heap.alloc_array(len as usize);
                self.write(locals, *dst, Value::Ref(r));
            }
            Stmt::Store { obj, field, src } => {
                let r = self
                    .read(locals, *obj)
                    .as_ref()
                    .ok_or(ExecError::NullPointer)?;
                let v = self.read(locals, *src);
                self.heap.write_field(r, *field, v);
            }
            Stmt::Load { dst, obj, field } => {
                let r = self
                    .read(locals, *obj)
                    .as_ref()
                    .ok_or(ExecError::NullPointer)?;
                let v = self.heap.read_field(r, *field);
                self.write(locals, *dst, v);
            }
            Stmt::ArrayStore { arr, index, src } => {
                let r = self
                    .read(locals, *arr)
                    .as_ref()
                    .ok_or(ExecError::NullPointer)?;
                let i = self
                    .read(locals, *index)
                    .as_int()
                    .ok_or_else(|| ExecError::TypeError("array index must be int".into()))?;
                let v = self.read(locals, *src);
                if !self.heap.write_element(r, i, v) {
                    return Err(ExecError::IndexOutOfBounds);
                }
            }
            Stmt::ArrayLoad { dst, arr, index } => {
                let r = self
                    .read(locals, *arr)
                    .as_ref()
                    .ok_or(ExecError::NullPointer)?;
                let i = self
                    .read(locals, *index)
                    .as_int()
                    .ok_or_else(|| ExecError::TypeError("array index must be int".into()))?;
                let v = self
                    .heap
                    .read_element(r, i)
                    .ok_or(ExecError::IndexOutOfBounds)?;
                self.write(locals, *dst, v);
            }
            Stmt::ArrayLen { dst, arr } => {
                let r = self
                    .read(locals, *arr)
                    .as_ref()
                    .ok_or(ExecError::NullPointer)?;
                let len = self
                    .heap
                    .array_len(r)
                    .ok_or_else(|| ExecError::TypeError("length of non-array".into()))?;
                self.write(locals, *dst, Value::Int(len as i64));
            }
            Stmt::Call {
                dst,
                method: target,
                recv,
                args,
            } => {
                let recv_val = recv.map(|r| self.read(locals, r));
                let arg_vals: Vec<Value> = args.iter().map(|&a| self.read(locals, a)).collect();
                let result = self.call_method(*target, recv_val, &arg_vals)?;
                if let Some(d) = dst {
                    self.write(locals, *d, result);
                }
            }
            Stmt::Const { dst, value, .. } => {
                let v = match value {
                    Constant::Null => Value::Null,
                    Constant::Int(i) => Value::Int(*i),
                    Constant::Bool(b) => Value::Bool(*b),
                    Constant::Char(c) => Value::Char(*c),
                    Constant::Str(s) => Value::Str(s.clone()),
                };
                self.write(locals, *dst, v);
            }
            Stmt::Bin { dst, op, a, b } => {
                let v = eval_bin(*op, &self.read(locals, *a), &self.read(locals, *b))?;
                self.write(locals, *dst, v);
            }
            Stmt::RefEq { dst, a, b } => {
                let eq = self.read(locals, *a).ref_eq(&self.read(locals, *b));
                self.write(locals, *dst, Value::Bool(eq));
            }
            Stmt::IsNull { dst, a } => {
                let is_null = self.read(locals, *a).is_null();
                self.write(locals, *dst, Value::Bool(is_null));
            }
            Stmt::Not { dst, a } => {
                let v = self
                    .read(locals, *a)
                    .as_bool()
                    .ok_or_else(|| ExecError::TypeError("! of non-boolean".into()))?;
                self.write(locals, *dst, Value::Bool(!v));
            }
            Stmt::If { cond, then, els } => {
                let c = self
                    .read(locals, *cond)
                    .as_bool()
                    .ok_or_else(|| ExecError::TypeError("if condition must be boolean".into()))?;
                let flow = if c {
                    self.exec_block(then, locals, method)?
                } else {
                    self.exec_block(els, locals, method)?
                };
                if let Flow::Return(v) = flow {
                    return Ok(Flow::Return(v));
                }
            }
            Stmt::While { header, cond, body } => loop {
                if let Flow::Return(v) = self.exec_block(header, locals, method)? {
                    return Ok(Flow::Return(v));
                }
                let c = self.read(locals, *cond).as_bool().ok_or_else(|| {
                    ExecError::TypeError("while condition must be boolean".into())
                })?;
                if !c {
                    break;
                }
                if let Flow::Return(v) = self.exec_block(body, locals, method)? {
                    return Ok(Flow::Return(v));
                }
                self.tick()?;
            },
            Stmt::Return { var } => {
                let v = var.map(|v| self.read(locals, v)).unwrap_or(Value::Void);
                return Ok(Flow::Return(v));
            }
            Stmt::Throw { message } => {
                return Err(ExecError::Thrown(message.clone()));
            }
        }
        Ok(Flow::Normal)
    }
}

impl Executor for Interpreter<'_> {
    fn alloc_object(&mut self, class: atlas_ir::ClassId) -> crate::heap::ObjRef {
        Interpreter::alloc_object(self, class)
    }

    fn call_method(
        &mut self,
        method: MethodId,
        recv: Option<Value>,
        args: &[Value],
    ) -> Result<Value, ExecError> {
        Interpreter::call_method(self, method, recv, args)
    }

    fn steps(&self) -> usize {
        Interpreter::steps(self)
    }
}

/// Evaluates a binary operator — the one semantics shared verbatim by the
/// tree-walker and the bytecode VM.
#[inline]
pub(crate) fn eval_bin(op: BinOp, a: &Value, b: &Value) -> Result<Value, ExecError> {
    use BinOp::*;
    match op {
        And | Or => {
            let (x, y) = (
                a.as_bool()
                    .ok_or_else(|| ExecError::TypeError("boolean expected".into()))?,
                b.as_bool()
                    .ok_or_else(|| ExecError::TypeError("boolean expected".into()))?,
            );
            Ok(Value::Bool(if op == And { x && y } else { x || y }))
        }
        _ => {
            let (x, y) = (
                a.as_int()
                    .ok_or_else(|| ExecError::TypeError("int expected".into()))?,
                b.as_int()
                    .ok_or_else(|| ExecError::TypeError("int expected".into()))?,
            );
            Ok(match op {
                Add => Value::Int(x.wrapping_add(y)),
                Sub => Value::Int(x.wrapping_sub(y)),
                Mul => Value::Int(x.wrapping_mul(y)),
                Div => {
                    if y == 0 {
                        return Err(ExecError::DivideByZero);
                    }
                    Value::Int(x / y)
                }
                Rem => {
                    if y == 0 {
                        return Err(ExecError::DivideByZero);
                    }
                    Value::Int(x % y)
                }
                Lt => Value::Bool(x < y),
                Le => Value::Bool(x <= y),
                Gt => Value::Bool(x > y),
                Ge => Value::Bool(x >= y),
                EqInt => Value::Bool(x == y),
                NeInt => Value::Bool(x != y),
                And | Or => unreachable!("handled above"),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_ir::builder::ProgramBuilder;
    use atlas_ir::Type;

    /// Box library + a client test that stores `in` and reads it back.
    fn box_program() -> Program {
        let mut pb = ProgramBuilder::new();
        pb.class("Object").build();
        let mut c = pb.class("Box");
        c.library(true);
        c.field("f", Type::object());
        let mut set = c.method("set");
        let this = set.this();
        let ob = set.param("ob", Type::object());
        set.store(this, "f", ob);
        set.finish();
        let mut get = c.method("get");
        get.returns(Type::object());
        let this = get.this();
        let r = get.local("r", Type::object());
        get.load(r, this, "f");
        get.ret(Some(r));
        get.finish();
        c.build();
        let mut main = pb.class("Main");
        let mut t = main.static_method("test");
        t.returns(Type::Bool);
        let in_v = t.local("in", Type::object());
        let box_v = t.local("box", Type::class("Box"));
        let out_v = t.local("out", Type::object());
        let eq = t.local("eq", Type::Bool);
        let obj = t.cref("Object");
        let boxc = t.cref("Box");
        t.new_object(in_v, obj);
        t.new_object(box_v, boxc);
        let set = t.mref("Box", "set");
        let get = t.mref("Box", "get");
        t.call(None, set, Some(box_v), &[in_v]);
        t.call(Some(out_v), get, Some(box_v), &[]);
        t.ref_eq(eq, in_v, out_v);
        t.ret(Some(eq));
        t.finish();
        main.build();
        pb.build()
    }

    #[test]
    fn box_round_trip_returns_true() {
        let p = box_program();
        let test = p.method_qualified("Main.test").unwrap();
        let mut interp = Interpreter::new(&p);
        let outcome = interp.run_entry(test);
        assert!(outcome.is_true(), "{outcome:?}");
        assert!(interp.steps() > 5);
        assert_eq!(interp.heap().len(), 2);
    }

    #[test]
    fn null_receiver_fails() {
        let mut pb = ProgramBuilder::new();
        pb.class("Object").build();
        let mut c = pb.class("Box");
        c.library(true);
        let mut get = c.method("get");
        get.returns(Type::object());
        get.this();
        get.finish();
        c.build();
        let mut main = pb.class("Main");
        let mut t = main.static_method("test");
        t.returns(Type::Bool);
        let box_v = t.local("box", Type::class("Box"));
        let out_v = t.local("out", Type::object());
        let get = t.mref("Box", "get");
        t.const_null(box_v);
        t.call(Some(out_v), get, Some(box_v), &[]);
        t.finish();
        main.build();
        let p = pb.build();
        let test = p.method_qualified("Main.test").unwrap();
        let outcome = Interpreter::new(&p).run_entry(test);
        assert_eq!(outcome, ExecOutcome::Failed(ExecError::NullPointer));
        assert!(!outcome.is_true());
    }

    #[test]
    fn arithmetic_loops_and_arrays() {
        // Sum the first 5 integers into an array cell and compare.
        let mut pb = ProgramBuilder::new();
        pb.class("Object").build();
        let mut main = pb.class("Main");
        let mut t = main.static_method("test");
        t.returns(Type::Bool);
        let arr = t.local("arr", Type::object_array());
        let i = t.local("i", Type::Int);
        let n = t.local("n", Type::Int);
        let sum = t.local("sum", Type::Int);
        let cond = t.local("cond", Type::Bool);
        let one = t.local("one", Type::Int);
        let len = t.local("len", Type::Int);
        t.const_int(len, 3);
        t.new_array(arr, len);
        t.const_int(i, 0);
        t.const_int(n, 5);
        t.const_int(sum, 0);
        t.const_int(one, 1);
        t.while_stmt(
            |m| {
                m.bin(cond, BinOp::Lt, i, n);
                cond
            },
            |m| {
                m.bin(sum, BinOp::Add, sum, i);
                m.bin(i, BinOp::Add, i, one);
            },
        );
        // arr[1] = sum (as an Int value); read back and compare to 10.
        let idx = t.local("idx", Type::Int);
        t.const_int(idx, 1);
        // store primitive in array for test purposes
        t.array_store(arr, idx, sum);
        let back = t.local("back", Type::Int);
        t.array_load(back, arr, idx);
        let ten = t.local("ten", Type::Int);
        t.const_int(ten, 10);
        let eq = t.local("eq", Type::Bool);
        t.bin(eq, BinOp::EqInt, back, ten);
        let alen = t.local("alen", Type::Int);
        t.array_len(alen, arr);
        let three = t.local("three", Type::Int);
        t.const_int(three, 3);
        let eq2 = t.local("eq2", Type::Bool);
        t.bin(eq2, BinOp::EqInt, alen, three);
        let both = t.local("both", Type::Bool);
        t.bin(both, BinOp::And, eq, eq2);
        t.ret(Some(both));
        t.finish();
        main.build();
        let p = pb.build();
        let test = p.method_qualified("Main.test").unwrap();
        assert!(Interpreter::new(&p).run_entry(test).is_true());
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let mut pb = ProgramBuilder::new();
        pb.class("Object").build();
        let mut main = pb.class("Main");
        let mut t = main.static_method("spin");
        let c = t.local("c", Type::Bool);
        t.const_bool(c, true);
        t.while_stmt(|_| c, |_| {});
        t.finish();
        main.build();
        let p = pb.build();
        let spin = p.method_qualified("Main.spin").unwrap();
        let mut interp = Interpreter::with_config(
            &p,
            BuiltinRegistry::with_defaults(),
            ExecLimits {
                max_steps: 100,
                max_call_depth: 8,
                max_heap_objects: 10,
            },
        );
        assert_eq!(
            interp.run_entry(spin),
            ExecOutcome::Failed(ExecError::LimitExceeded("steps"))
        );
    }

    #[test]
    fn native_method_dispatches_to_builtin() {
        let mut pb = ProgramBuilder::new();
        pb.class("Object").build();
        let mut sys = pb.class("System");
        sys.library(true);
        let mut ac = sys.static_method("arraycopy");
        ac.native(true);
        ac.param("src", Type::object_array());
        ac.param("srcPos", Type::Int);
        ac.param("dest", Type::object_array());
        ac.param("destPos", Type::Int);
        ac.param("length", Type::Int);
        ac.finish();
        sys.build();
        let mut main = pb.class("Main");
        let mut t = main.static_method("test");
        t.returns(Type::Bool);
        let a = t.local("a", Type::object_array());
        let b = t.local("b", Type::object_array());
        let o = t.local("o", Type::object());
        let len = t.local("len", Type::Int);
        let zero = t.local("zero", Type::Int);
        t.const_int(len, 2);
        t.const_int(zero, 0);
        t.new_array(a, len);
        t.new_array(b, len);
        let obj = t.cref("Object");
        t.new_object(o, obj);
        t.array_store(a, zero, o);
        let ac_ref = t.mref("System", "arraycopy");
        t.call(None, ac_ref, None, &[a, zero, b, zero, len]);
        let back = t.local("back", Type::object());
        t.array_load(back, b, zero);
        let eq = t.local("eq", Type::Bool);
        t.ref_eq(eq, back, o);
        t.ret(Some(eq));
        t.finish();
        main.build();
        let p = pb.build();
        let test = p.method_qualified("Main.test").unwrap();
        assert!(Interpreter::new(&p).run_entry(test).is_true());
    }

    #[test]
    fn throw_and_divide_by_zero() {
        let mut pb = ProgramBuilder::new();
        pb.class("Object").build();
        let mut main = pb.class("Main");
        let mut t = main.static_method("boom");
        t.throw("boom");
        t.finish();
        let mut d = main.static_method("div0");
        let a = d.local("a", Type::Int);
        let b = d.local("b", Type::Int);
        d.const_int(a, 1);
        d.const_int(b, 0);
        d.bin(a, BinOp::Div, a, b);
        d.finish();
        main.build();
        let p = pb.build();
        let boom = p.method_qualified("Main.boom").unwrap();
        let div0 = p.method_qualified("Main.div0").unwrap();
        assert_eq!(
            Interpreter::new(&p).run_entry(boom),
            ExecOutcome::Failed(ExecError::Thrown("boom".into()))
        );
        assert_eq!(
            Interpreter::new(&p).run_entry(div0),
            ExecOutcome::Failed(ExecError::DivideByZero)
        );
    }

    #[test]
    fn error_display() {
        assert!(ExecError::NullPointer.to_string().contains("null"));
        assert!(ExecError::MissingBuiltin("X.y".into())
            .to_string()
            .contains("X.y"));
        assert!(ExecError::LimitExceeded("steps")
            .to_string()
            .contains("steps"));
    }
}
