//! One-pass lowering from [`atlas_ir::Stmt`] bodies to flat bytecode.
//!
//! Each method body becomes a single `Vec<Instr>`: nested `If`/`While`
//! blocks are flattened into basic blocks with jump targets resolved to
//! instruction indices, and the `Var`-keyed environment becomes dense
//! register slots (a register window per call frame, see
//! [`crate::frame`]).  The [`CompiledProgram`] is built once per library
//! and shared read-only across every execution — and, behind an `Arc`,
//! across every worker thread of an inference session.
//!
//! The lowering is engineered so the VM charges the step budget at
//! exactly the statements the tree-walking interpreter does (see the
//! module docs of [`crate::vm`] for the tick discipline): every control
//! instruction below documents whether it ticks.

use atlas_ir::{BinOp, ClassId, Constant, FieldId, MethodId, Program, Stmt, Var};

/// A register index within the current call frame's window.
pub type Reg = u32;

/// The callee, operands, and destination of a [`Instr::Call`].
///
/// Boxed behind the instruction to keep the common data-instruction
/// variants small.
#[derive(Debug, Clone, PartialEq)]
pub struct CallSite {
    /// The statically resolved callee.
    pub method: MethodId,
    /// The receiver register, absent for static calls.
    pub recv: Option<Reg>,
    /// Argument registers, in declaration order.
    pub args: Vec<Reg>,
    /// Destination register for the return value, if bound.
    pub dst: Option<Reg>,
}

/// One bytecode instruction.
///
/// Every instruction charges one step on execution ("ticks"), mirroring
/// the tree-walker's per-statement accounting, except the pure
/// control-transfer instructions that have no statement counterpart:
/// [`Instr::Jump`], [`Instr::LoopCond`], and [`Instr::RetFall`].
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = src`.
    Move {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = constant`.
    Const {
        /// Destination register.
        dst: Reg,
        /// The literal value.
        value: Constant,
    },
    /// `dst = new C()` (no constructor call).
    NewObj {
        /// Destination register.
        dst: Reg,
        /// Class of the allocated object.
        class: ClassId,
    },
    /// `dst = new T[len]`.
    NewArr {
        /// Destination register.
        dst: Reg,
        /// Register holding the array length.
        len: Reg,
    },
    /// `dst = obj.field`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Register holding the object reference.
        obj: Reg,
        /// The field read.
        field: FieldId,
    },
    /// `obj.field = src`.
    Store {
        /// Register holding the object reference.
        obj: Reg,
        /// The field written.
        field: FieldId,
        /// Register holding the stored value.
        src: Reg,
    },
    /// `dst = arr[index]`.
    ArrLoad {
        /// Destination register.
        dst: Reg,
        /// Register holding the array reference.
        arr: Reg,
        /// Register holding the element index.
        index: Reg,
    },
    /// `arr[index] = src`.
    ArrStore {
        /// Register holding the array reference.
        arr: Reg,
        /// Register holding the element index.
        index: Reg,
        /// Register holding the stored value.
        src: Reg,
    },
    /// `dst = arr.length`.
    ArrLen {
        /// Destination register.
        dst: Reg,
        /// Register holding the array reference.
        arr: Reg,
    },
    /// `dst = a <op> b`.
    Bin {
        /// Destination register.
        dst: Reg,
        /// The operator.
        op: BinOp,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
    },
    /// `dst = (a == b)` — reference identity.
    RefEq {
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
    },
    /// `dst = (a == null)`.
    IsNull {
        /// Destination register.
        dst: Reg,
        /// The register tested.
        a: Reg,
    },
    /// `dst = !a`.
    Not {
        /// Destination register.
        dst: Reg,
        /// The operand register.
        a: Reg,
    },
    /// A statically resolved call (lowered from [`Stmt::Call`]).
    Call(Box<CallSite>),
    /// The ticking conditional of a lowered `If`: falls through into the
    /// then-block when `cond` is true, jumps to `else_target` otherwise.
    Branch {
        /// Register holding the branch condition.
        cond: Reg,
        /// Instruction index of the else-block.
        else_target: u32,
    },
    /// Unconditional jump (end of a then-block).  Does **not** tick: it
    /// has no statement counterpart in the tree.
    Jump {
        /// Destination instruction index.
        target: u32,
    },
    /// Entry marker of a lowered `While`: ticks once, for the `While`
    /// statement's own entry charge, then falls through to the header.
    LoopEnter,
    /// The loop condition test: falls through into the body when `cond`
    /// is true, jumps to `exit_target` otherwise.  Does **not** tick —
    /// the tree-walker reads the condition without charging a step.
    LoopCond {
        /// Register holding the loop condition.
        cond: Reg,
        /// Instruction index just past the loop.
        exit_target: u32,
    },
    /// Back-edge of a lowered `While`: ticks (the tree-walker charges one
    /// step per completed iteration) and jumps to the header.
    LoopJump {
        /// Instruction index of the loop header.
        target: u32,
    },
    /// `return src`.
    Ret {
        /// Register holding the returned value.
        src: Reg,
    },
    /// `return` (void).
    RetVoid,
    /// Implicit return appended at the end of every body: returns `void`
    /// without ticking (falling off the end is not a statement).
    RetFall,
    /// `throw` — aborts the execution with [`crate::ExecError::Thrown`].
    Throw {
        /// The exception message.
        message: String,
    },
}

/// A method lowered to bytecode.
#[derive(Debug, Clone)]
pub struct CompiledMethod {
    pub(crate) code: Vec<Instr>,
    pub(crate) num_regs: u32,
    pub(crate) has_this: bool,
    pub(crate) num_params: usize,
    /// For native methods: the qualified `Class.method` name used to look
    /// up the builtin, precomputed so calls skip the per-call `format!`.
    pub(crate) native: Option<String>,
}

impl CompiledMethod {
    /// The lowered instruction sequence (empty for native methods).
    pub fn code(&self) -> &[Instr] {
        &self.code
    }

    /// Size of the register window a frame for this method needs.
    pub fn num_regs(&self) -> u32 {
        self.num_regs
    }

    /// The precomputed qualified name, for native methods.
    pub fn native(&self) -> Option<&str> {
        self.native.as_deref()
    }
}

/// A whole program lowered to bytecode, indexed by [`MethodId`].
///
/// Built once per library with [`CompiledProgram::compile`]; execution
/// state lives entirely in the VM, so one `CompiledProgram` (behind an
/// `Arc`) serves any number of concurrent executions.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    methods: Vec<CompiledMethod>,
    /// Identity of this compilation: freshly drawn per [`CompiledProgram::compile`],
    /// shared by clones.  Keys the VM's resolved-builtin cache together
    /// with [`crate::BuiltinRegistry`]'s version.
    id: u64,
}

/// Source of unique compilation ids (see [`CompiledProgram::id`]).
static NEXT_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl CompiledProgram {
    /// Lowers every method body of `program` to bytecode.
    pub fn compile(program: &Program) -> CompiledProgram {
        let methods = (0..program.num_methods() as u32)
            .map(|i| compile_method(program, MethodId::from_index(i)))
            .collect();
        CompiledProgram {
            methods,
            id: NEXT_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// An identifier for this compilation (clones share it; each
    /// [`CompiledProgram::compile`] draws a fresh one).
    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    /// Iterates over the compiled methods in [`MethodId`] index order.
    pub(crate) fn methods(&self) -> impl Iterator<Item = &CompiledMethod> {
        self.methods.iter()
    }

    /// The compiled form of a method.
    pub fn method(&self, id: MethodId) -> &CompiledMethod {
        &self.methods[id.index() as usize]
    }

    /// Number of compiled methods.
    pub fn num_methods(&self) -> usize {
        self.methods.len()
    }

    /// Total instruction count across all methods (reported by the
    /// `oracle` bench alongside compile time).
    pub fn total_instructions(&self) -> usize {
        self.methods.iter().map(|m| m.code.len()).sum()
    }
}

fn compile_method(program: &Program, id: MethodId) -> CompiledMethod {
    let m = program.method(id);
    if m.is_native() {
        return CompiledMethod {
            code: Vec::new(),
            num_regs: 0,
            has_this: m.has_this(),
            num_params: m.num_params(),
            native: Some(program.qualified_name(id)),
        };
    }
    // The tree-walker's environment resizes on out-of-range writes and
    // reads missing slots as `null`; sizing the window to the largest
    // register mentioned anywhere in the body reproduces both behaviors
    // with a flat, pre-sized window.
    let mut num_regs = m.num_vars() as u32;
    atlas_ir::visit_block(m.body(), &mut |s| {
        for v in stmt_vars(s) {
            num_regs = num_regs.max(v.index() + 1);
        }
    });
    let mut c = FnCompiler { code: Vec::new() };
    c.block(m.body());
    c.code.push(Instr::RetFall);
    CompiledMethod {
        code: c.code,
        num_regs,
        has_this: m.has_this(),
        num_params: m.num_params(),
        native: None,
    }
}

/// Every variable mentioned by one statement (nested blocks excluded;
/// `visit_block` recurses into those).
fn stmt_vars(s: &Stmt) -> Vec<Var> {
    match s {
        Stmt::Assign { dst, src } => vec![*dst, *src],
        Stmt::New { dst, .. } => vec![*dst],
        Stmt::NewArray { dst, len, .. } => vec![*dst, *len],
        Stmt::Store { obj, src, .. } => vec![*obj, *src],
        Stmt::Load { dst, obj, .. } => vec![*dst, *obj],
        Stmt::ArrayStore { arr, index, src } => vec![*arr, *index, *src],
        Stmt::ArrayLoad { dst, arr, index } => vec![*dst, *arr, *index],
        Stmt::Call {
            dst, recv, args, ..
        } => {
            let mut vs: Vec<Var> = args.clone();
            vs.extend(*dst);
            vs.extend(*recv);
            vs
        }
        Stmt::Const { dst, .. } => vec![*dst],
        Stmt::Bin { dst, a, b, .. } => vec![*dst, *a, *b],
        Stmt::RefEq { dst, a, b } => vec![*dst, *a, *b],
        Stmt::IsNull { dst, a } => vec![*dst, *a],
        Stmt::Not { dst, a } => vec![*dst, *a],
        Stmt::ArrayLen { dst, arr } => vec![*dst, *arr],
        Stmt::If { cond, .. } => vec![*cond],
        Stmt::While { cond, .. } => vec![*cond],
        Stmt::Return { var } => var.iter().copied().collect(),
        Stmt::Throw { .. } => Vec::new(),
    }
}

struct FnCompiler {
    code: Vec<Instr>,
}

impl FnCompiler {
    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn block(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        let r = |v: &Var| v.index();
        match s {
            Stmt::Assign { dst, src } => self.code.push(Instr::Move {
                dst: r(dst),
                src: r(src),
            }),
            Stmt::New { dst, class, .. } => self.code.push(Instr::NewObj {
                dst: r(dst),
                class: *class,
            }),
            Stmt::NewArray { dst, len, .. } => self.code.push(Instr::NewArr {
                dst: r(dst),
                len: r(len),
            }),
            Stmt::Store { obj, field, src } => self.code.push(Instr::Store {
                obj: r(obj),
                field: *field,
                src: r(src),
            }),
            Stmt::Load { dst, obj, field } => self.code.push(Instr::Load {
                dst: r(dst),
                obj: r(obj),
                field: *field,
            }),
            Stmt::ArrayStore { arr, index, src } => self.code.push(Instr::ArrStore {
                arr: r(arr),
                index: r(index),
                src: r(src),
            }),
            Stmt::ArrayLoad { dst, arr, index } => self.code.push(Instr::ArrLoad {
                dst: r(dst),
                arr: r(arr),
                index: r(index),
            }),
            Stmt::Call {
                dst,
                method,
                recv,
                args,
            } => self.code.push(Instr::Call(Box::new(CallSite {
                method: *method,
                recv: recv.as_ref().map(r),
                args: args.iter().map(|v| v.index()).collect(),
                dst: dst.as_ref().map(r),
            }))),
            Stmt::Const { dst, value, .. } => self.code.push(Instr::Const {
                dst: r(dst),
                value: value.clone(),
            }),
            Stmt::Bin { dst, op, a, b } => self.code.push(Instr::Bin {
                dst: r(dst),
                op: *op,
                a: r(a),
                b: r(b),
            }),
            Stmt::RefEq { dst, a, b } => self.code.push(Instr::RefEq {
                dst: r(dst),
                a: r(a),
                b: r(b),
            }),
            Stmt::IsNull { dst, a } => self.code.push(Instr::IsNull {
                dst: r(dst),
                a: r(a),
            }),
            Stmt::Not { dst, a } => self.code.push(Instr::Not {
                dst: r(dst),
                a: r(a),
            }),
            Stmt::ArrayLen { dst, arr } => self.code.push(Instr::ArrLen {
                dst: r(dst),
                arr: r(arr),
            }),
            Stmt::If { cond, then, els } => {
                let branch = self.here();
                self.code.push(Instr::Branch {
                    cond: r(cond),
                    else_target: 0, // patched below
                });
                self.block(then);
                let jump = self.here();
                self.code.push(Instr::Jump { target: 0 }); // patched below
                let else_start = self.here();
                self.patch(branch, else_start);
                self.block(els);
                let join = self.here();
                self.patch(jump, join);
            }
            Stmt::While { header, cond, body } => {
                self.code.push(Instr::LoopEnter);
                let head = self.here();
                self.block(header);
                let test = self.here();
                self.code.push(Instr::LoopCond {
                    cond: r(cond),
                    exit_target: 0, // patched below
                });
                self.block(body);
                self.code.push(Instr::LoopJump { target: head });
                let exit = self.here();
                self.patch(test, exit);
            }
            Stmt::Return { var } => self.code.push(match var {
                Some(v) => Instr::Ret { src: r(v) },
                None => Instr::RetVoid,
            }),
            Stmt::Throw { message } => self.code.push(Instr::Throw {
                message: message.clone(),
            }),
        }
    }

    /// Resolves the pending jump target of the instruction at `at`.
    fn patch(&mut self, at: u32, target: u32) {
        match &mut self.code[at as usize] {
            Instr::Branch { else_target, .. } => *else_target = target,
            Instr::Jump { target: t, .. } | Instr::LoopJump { target: t } => *t = target,
            Instr::LoopCond { exit_target, .. } => *exit_target = target,
            other => unreachable!("patched a non-jump instruction: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_ir::builder::ProgramBuilder;
    use atlas_ir::Type;

    #[test]
    fn lowering_resolves_jump_targets() {
        let mut pb = ProgramBuilder::new();
        pb.class("Object").build();
        let mut main = pb.class("Main");
        let mut t = main.static_method("f");
        let c = t.local("c", Type::Bool);
        let x = t.local("x", Type::Int);
        t.const_bool(c, true);
        t.if_stmt(c, |m| m.const_int(x, 1), |m| m.const_int(x, 2));
        t.while_stmt(|_| c, |m| m.const_bool(c, false));
        t.ret(Some(x));
        t.finish();
        main.build();
        let p = pb.build();
        let compiled = CompiledProgram::compile(&p);
        assert_eq!(compiled.num_methods(), p.num_methods());
        let f = p.method_qualified("Main.f").unwrap();
        let cm = compiled.method(f);
        assert!(cm.num_regs() >= 2);
        assert!(cm.native().is_none());
        // Every jump target lands inside the code, and the lowered body
        // contains the expected control instructions.
        let code = cm.code();
        let n = code.len() as u32;
        let mut saw = (false, false, false, false);
        for instr in code {
            match instr {
                Instr::Branch { else_target, .. } => {
                    assert!(*else_target < n);
                    saw.0 = true;
                }
                Instr::Jump { target } | Instr::LoopJump { target } => {
                    assert!(*target < n);
                    saw.1 = true;
                }
                Instr::LoopCond { exit_target, .. } => {
                    assert!(*exit_target < n);
                    saw.2 = true;
                }
                Instr::LoopEnter => saw.3 = true,
                _ => {}
            }
        }
        assert_eq!(saw, (true, true, true, true));
        // The implicit fall-off return terminates the body.
        assert_eq!(code.last(), Some(&Instr::RetFall));
        assert!(compiled.total_instructions() >= code.len());
    }

    #[test]
    fn native_methods_precompute_their_qualified_name() {
        let mut pb = ProgramBuilder::new();
        pb.class("Object").build();
        let mut sys = pb.class("System");
        sys.library(true);
        let mut ac = sys.static_method("arraycopy");
        ac.native(true);
        ac.param("src", Type::object_array());
        ac.finish();
        sys.build();
        let p = pb.build();
        let compiled = CompiledProgram::compile(&p);
        let id = p.method_qualified("System.arraycopy").unwrap();
        assert_eq!(compiled.method(id).native(), Some("System.arraycopy"));
        assert!(compiled.method(id).code().is_empty());
    }
}
