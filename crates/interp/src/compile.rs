//! One-pass lowering from [`atlas_ir::Stmt`] bodies to flat bytecode.
//!
//! Each method body becomes a single `Vec<Instr>`: nested `If`/`While`
//! blocks are flattened into basic blocks with jump targets resolved to
//! instruction indices, and the `Var`-keyed environment becomes dense
//! register slots (a register window per call frame, see
//! [`crate::frame`]).  The [`CompiledProgram`] is built once per library
//! and shared read-only across every execution — and, behind an `Arc`,
//! across every worker thread of an inference session.
//!
//! The lowering is engineered so the VM charges the step budget at
//! exactly the statements the tree-walking interpreter does (see the
//! module docs of [`crate::vm`] for the tick discipline): every control
//! instruction below documents whether it ticks.

use atlas_ir::{BinOp, ClassId, Constant, FieldId, MethodId, Program, Stmt, Var};

/// A register index within the current call frame's window.
pub type Reg = u32;

/// The callee, operands, and destination of a [`Instr::Call`].
///
/// Boxed behind the instruction to keep the common data-instruction
/// variants small.
#[derive(Debug, Clone, PartialEq)]
pub struct CallSite {
    /// The statically resolved callee.
    pub method: MethodId,
    /// The receiver register, absent for static calls.
    pub recv: Option<Reg>,
    /// Argument registers, in declaration order.
    pub args: Vec<Reg>,
    /// Destination register for the return value, if bound.
    pub dst: Option<Reg>,
}

/// One bytecode instruction.
///
/// Every instruction charges one step on execution ("ticks"), mirroring
/// the tree-walker's per-statement accounting, except the pure
/// control-transfer instructions that have no statement counterpart:
/// [`Instr::Jump`], [`Instr::LoopCond`], and [`Instr::RetFall`].
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = src`.
    Move {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = constant`.
    Const {
        /// Destination register.
        dst: Reg,
        /// The literal value.
        value: Constant,
    },
    /// `dst = new C()` (no constructor call).
    NewObj {
        /// Destination register.
        dst: Reg,
        /// Class of the allocated object.
        class: ClassId,
    },
    /// `dst = new T[len]`.
    NewArr {
        /// Destination register.
        dst: Reg,
        /// Register holding the array length.
        len: Reg,
    },
    /// `dst = obj.field`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Register holding the object reference.
        obj: Reg,
        /// The field read.
        field: FieldId,
        /// Inline-cache site id (see [`CompiledProgram::num_field_sites`]).
        ic: u32,
    },
    /// `obj.field = src`.
    Store {
        /// Register holding the object reference.
        obj: Reg,
        /// The field written.
        field: FieldId,
        /// Register holding the stored value.
        src: Reg,
        /// Inline-cache site id (see [`CompiledProgram::num_field_sites`]).
        ic: u32,
    },
    /// `dst = arr[index]`.
    ArrLoad {
        /// Destination register.
        dst: Reg,
        /// Register holding the array reference.
        arr: Reg,
        /// Register holding the element index.
        index: Reg,
    },
    /// `arr[index] = src`.
    ArrStore {
        /// Register holding the array reference.
        arr: Reg,
        /// Register holding the element index.
        index: Reg,
        /// Register holding the stored value.
        src: Reg,
    },
    /// `dst = arr.length`.
    ArrLen {
        /// Destination register.
        dst: Reg,
        /// Register holding the array reference.
        arr: Reg,
    },
    /// `dst = a <op> b`.
    Bin {
        /// Destination register.
        dst: Reg,
        /// The operator.
        op: BinOp,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
    },
    /// `dst = (a == b)` — reference identity.
    RefEq {
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
    },
    /// `dst = (a == null)`.
    IsNull {
        /// Destination register.
        dst: Reg,
        /// The register tested.
        a: Reg,
    },
    /// `dst = !a`.
    Not {
        /// Destination register.
        dst: Reg,
        /// The operand register.
        a: Reg,
    },
    /// A statically resolved call (lowered from [`Stmt::Call`]).
    Call(Box<CallSite>),
    /// The ticking conditional of a lowered `If`: falls through into the
    /// then-block when `cond` is true, jumps to `else_target` otherwise.
    Branch {
        /// Register holding the branch condition.
        cond: Reg,
        /// Instruction index of the else-block.
        else_target: u32,
    },
    /// Unconditional jump (end of a then-block).  Does **not** tick: it
    /// has no statement counterpart in the tree.
    Jump {
        /// Destination instruction index.
        target: u32,
    },
    /// Entry marker of a lowered `While`: ticks once, for the `While`
    /// statement's own entry charge, then falls through to the header.
    LoopEnter,
    /// The loop condition test: falls through into the body when `cond`
    /// is true, jumps to `exit_target` otherwise.  Does **not** tick —
    /// the tree-walker reads the condition without charging a step.
    LoopCond {
        /// Register holding the loop condition.
        cond: Reg,
        /// Instruction index just past the loop.
        exit_target: u32,
    },
    /// Back-edge of a lowered `While`: ticks (the tree-walker charges one
    /// step per completed iteration) and jumps to the header.
    LoopJump {
        /// Instruction index of the loop header.
        target: u32,
    },
    /// `return src`.
    Ret {
        /// Register holding the returned value.
        src: Reg,
    },
    /// `return` (void).
    RetVoid,
    /// Implicit return appended at the end of every body: returns `void`
    /// without ticking (falling off the end is not a statement).
    RetFall,
    /// `throw` — aborts the execution with [`crate::ExecError::Thrown`].
    Throw {
        /// The exception message.
        message: String,
    },

    // --- Fused superinstructions (see [`fuse`]). ---
    //
    // Fusion never renumbers jump targets: the fused instruction replaces
    // the *first* of the pair in place, performs both effects, and skips
    // over the second, which is retained verbatim so any jump landing on
    // it still executes the original. Each fused instruction ticks once
    // per constituent, in the original order, so the step accounting (and
    // the statement at which a budget exhausts) is unchanged.
    /// Fused `Load` + `Branch` where the branch condition is the loaded
    /// value — the `if (x.field)` shape that dominates javalib bodies.
    LoadBranch {
        /// Destination register (still written: later code may read it).
        dst: Reg,
        /// Register holding the object reference.
        obj: Reg,
        /// The field read.
        field: FieldId,
        /// Inline-cache site id.
        ic: u32,
        /// Instruction index of the else-block.
        else_target: u32,
    },
    /// Fused `Call` + `RetFall` — the tail call at the end of a body.
    /// When the callee is native (returns a value immediately), the
    /// fall-off return happens without re-dispatching; when it pushes a
    /// frame, the callee returns to the retained `RetFall`.
    CallRetFall(Box<CallSite>),
    /// Fused `Const` + `Store` where the stored value is the constant —
    /// the `x.f = null` / `x.f = 0` initialization shape.
    ConstStore {
        /// Destination register of the constant (still written).
        dst: Reg,
        /// The literal value.
        value: Constant,
        /// Register holding the object reference.
        obj: Reg,
        /// The field written.
        field: FieldId,
        /// Inline-cache site id.
        ic: u32,
    },

    // --- Witness-prologue instructions (see [`CompiledWitness`]). ---
    //
    // These mirror the oracle's *external* test harness, which the
    // tree-walker never charges steps for: marshalling a literal,
    // allocating a receiver without a constructor, and issuing a
    // top-level call are all free; only the statements *inside* called
    // method bodies tick. None of these instructions tick.
    /// `dst = literal` — marshals a witness argument. Does **not** tick.
    WConst {
        /// Destination register.
        dst: Reg,
        /// The literal value.
        value: Constant,
    },
    /// `dst = new C()` — raw receiver allocation, no constructor, no
    /// heap-budget charge (checked at the next ticking statement, exactly
    /// like the tree-level harness). Does **not** tick.
    WAlloc {
        /// Destination register.
        dst: Reg,
        /// Class of the allocated object.
        class: ClassId,
    },
    /// A top-level witness call. Does **not** tick for the call itself
    /// (the external harness never does); the callee's body ticks as
    /// usual and its frame charges call depth as usual.
    WCall(Box<CallSite>),
    /// Terminal verdict extraction: the witness passes iff `a` is
    /// non-null and `a` and `b` are the same reference. Does **not**
    /// tick; ends the witness run.
    WVerdict {
        /// Register holding the tracked input object.
        a: Reg,
        /// Register holding the observed output.
        b: Reg,
    },
}

/// The shape of an instruction, without its operands — the key of the
/// static pair-frequency pass and the dynamic `ATLAS_VM_PROFILE`
/// histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum OpKind {
    /// See [`Instr::Move`].
    Move,
    /// See [`Instr::Const`].
    Const,
    /// See [`Instr::NewObj`].
    NewObj,
    /// See [`Instr::NewArr`].
    NewArr,
    /// See [`Instr::Load`].
    Load,
    /// See [`Instr::Store`].
    Store,
    /// See [`Instr::ArrLoad`].
    ArrLoad,
    /// See [`Instr::ArrStore`].
    ArrStore,
    /// See [`Instr::ArrLen`].
    ArrLen,
    /// See [`Instr::Bin`].
    Bin,
    /// See [`Instr::RefEq`].
    RefEq,
    /// See [`Instr::IsNull`].
    IsNull,
    /// See [`Instr::Not`].
    Not,
    /// See [`Instr::Call`].
    Call,
    /// See [`Instr::Branch`].
    Branch,
    /// See [`Instr::Jump`].
    Jump,
    /// See [`Instr::LoopEnter`].
    LoopEnter,
    /// See [`Instr::LoopCond`].
    LoopCond,
    /// See [`Instr::LoopJump`].
    LoopJump,
    /// See [`Instr::Ret`].
    Ret,
    /// See [`Instr::RetVoid`].
    RetVoid,
    /// See [`Instr::RetFall`].
    RetFall,
    /// See [`Instr::Throw`].
    Throw,
    /// See [`Instr::LoadBranch`].
    LoadBranch,
    /// See [`Instr::CallRetFall`].
    CallRetFall,
    /// See [`Instr::ConstStore`].
    ConstStore,
    /// See [`Instr::WConst`].
    WConst,
    /// See [`Instr::WAlloc`].
    WAlloc,
    /// See [`Instr::WCall`].
    WCall,
    /// See [`Instr::WVerdict`].
    WVerdict,
}

impl OpKind {
    /// Number of distinct instruction shapes.
    pub const COUNT: usize = 30;

    /// Every shape, in discriminant order.
    pub const ALL: [OpKind; OpKind::COUNT] = [
        OpKind::Move,
        OpKind::Const,
        OpKind::NewObj,
        OpKind::NewArr,
        OpKind::Load,
        OpKind::Store,
        OpKind::ArrLoad,
        OpKind::ArrStore,
        OpKind::ArrLen,
        OpKind::Bin,
        OpKind::RefEq,
        OpKind::IsNull,
        OpKind::Not,
        OpKind::Call,
        OpKind::Branch,
        OpKind::Jump,
        OpKind::LoopEnter,
        OpKind::LoopCond,
        OpKind::LoopJump,
        OpKind::Ret,
        OpKind::RetVoid,
        OpKind::RetFall,
        OpKind::Throw,
        OpKind::LoadBranch,
        OpKind::CallRetFall,
        OpKind::ConstStore,
        OpKind::WConst,
        OpKind::WAlloc,
        OpKind::WCall,
        OpKind::WVerdict,
    ];

    /// The shape's stable name, as reported in profiles.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Move => "Move",
            OpKind::Const => "Const",
            OpKind::NewObj => "NewObj",
            OpKind::NewArr => "NewArr",
            OpKind::Load => "Load",
            OpKind::Store => "Store",
            OpKind::ArrLoad => "ArrLoad",
            OpKind::ArrStore => "ArrStore",
            OpKind::ArrLen => "ArrLen",
            OpKind::Bin => "Bin",
            OpKind::RefEq => "RefEq",
            OpKind::IsNull => "IsNull",
            OpKind::Not => "Not",
            OpKind::Call => "Call",
            OpKind::Branch => "Branch",
            OpKind::Jump => "Jump",
            OpKind::LoopEnter => "LoopEnter",
            OpKind::LoopCond => "LoopCond",
            OpKind::LoopJump => "LoopJump",
            OpKind::Ret => "Ret",
            OpKind::RetVoid => "RetVoid",
            OpKind::RetFall => "RetFall",
            OpKind::Throw => "Throw",
            OpKind::LoadBranch => "LoadBranch",
            OpKind::CallRetFall => "CallRetFall",
            OpKind::ConstStore => "ConstStore",
            OpKind::WConst => "WConst",
            OpKind::WAlloc => "WAlloc",
            OpKind::WCall => "WCall",
            OpKind::WVerdict => "WVerdict",
        }
    }
}

impl Instr {
    /// The instruction's shape.
    pub fn kind(&self) -> OpKind {
        match self {
            Instr::Move { .. } => OpKind::Move,
            Instr::Const { .. } => OpKind::Const,
            Instr::NewObj { .. } => OpKind::NewObj,
            Instr::NewArr { .. } => OpKind::NewArr,
            Instr::Load { .. } => OpKind::Load,
            Instr::Store { .. } => OpKind::Store,
            Instr::ArrLoad { .. } => OpKind::ArrLoad,
            Instr::ArrStore { .. } => OpKind::ArrStore,
            Instr::ArrLen { .. } => OpKind::ArrLen,
            Instr::Bin { .. } => OpKind::Bin,
            Instr::RefEq { .. } => OpKind::RefEq,
            Instr::IsNull { .. } => OpKind::IsNull,
            Instr::Not { .. } => OpKind::Not,
            Instr::Call(_) => OpKind::Call,
            Instr::Branch { .. } => OpKind::Branch,
            Instr::Jump { .. } => OpKind::Jump,
            Instr::LoopEnter => OpKind::LoopEnter,
            Instr::LoopCond { .. } => OpKind::LoopCond,
            Instr::LoopJump { .. } => OpKind::LoopJump,
            Instr::Ret { .. } => OpKind::Ret,
            Instr::RetVoid => OpKind::RetVoid,
            Instr::RetFall => OpKind::RetFall,
            Instr::Throw { .. } => OpKind::Throw,
            Instr::LoadBranch { .. } => OpKind::LoadBranch,
            Instr::CallRetFall(_) => OpKind::CallRetFall,
            Instr::ConstStore { .. } => OpKind::ConstStore,
            Instr::WConst { .. } => OpKind::WConst,
            Instr::WAlloc { .. } => OpKind::WAlloc,
            Instr::WCall(_) => OpKind::WCall,
            Instr::WVerdict { .. } => OpKind::WVerdict,
        }
    }
}

/// How a [`FastBody`] operand resolves against the *caller's* frame: the
/// callee's argument registers map straight onto the call site's
/// receiver/argument registers, and every other register reads as the
/// `null` a freshly pushed frame would hold in that slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum FastArg {
    /// The callee's `this` register — the site's (already checked)
    /// receiver register.
    This,
    /// The callee's n-th parameter register — the site's n-th argument
    /// register, or `null` when the site passes fewer arguments.
    Param(u32),
    /// A slot a fresh frame would initialize to `null`: a parameter
    /// position past the site's arguments or an unwritten local.
    Null,
}

/// A trivial method body the VM executes inline at the call site without
/// pushing a register frame (see `Vm::invoke_site`).
///
/// Classification runs over the final (fused) code, and every shape
/// reads its operands *before* any write, so the operand values are
/// exactly what a pushed frame would have copied.  Each shape's
/// execution replays the precise tick/check sequence of its instruction
/// sequence — budget charges, step counts, and error identity are the
/// same as dispatching the body, by construction.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum FastBody {
    /// `[Ret src; RetFall]` — returns an argument (identity methods,
    /// `return this`) or `null`.
    RetArg(FastArg),
    /// `[Const dst v; Ret dst; RetFall]` — returns a literal.
    RetConst(Constant),
    /// `[Load dst obj f; Ret dst; RetFall]` — a getter.
    Getter {
        /// The object operand.
        obj: FastArg,
        /// The field read.
        field: FieldId,
        /// The body's inline-cache site (shared with slow dispatch).
        ic: u32,
    },
    /// `[Store obj f src; RetFall]` — a setter with a fall-off return.
    Setter {
        /// The object operand.
        obj: FastArg,
        /// The field written.
        field: FieldId,
        /// The stored value.
        src: FastArg,
        /// The body's inline-cache site (shared with slow dispatch).
        ic: u32,
    },
    /// `[RefEq dst a b; Ret dst; RetFall]` — `equals`-shaped bodies.
    RefEq {
        /// Left operand.
        a: FastArg,
        /// Right operand.
        b: FastArg,
    },
    /// `[NewObj dst C; Ret dst; RetFall]` — factory bodies.
    NewObjRet(ClassId),
    /// `[Const c v; Bin dst op a b; Ret dst; RetFall]` — arithmetic
    /// against a literal (`return x + 1` shapes).
    ConstBinRet {
        /// The literal the leading `Const` wrote.
        value: Constant,
        /// The operator.
        op: BinOp,
        /// Left operand.
        a: FastBinOperand,
        /// Right operand.
        b: FastBinOperand,
    },
}

/// One operand of a [`FastBody::ConstBinRet`]: either the fused literal
/// (the `Const` destination register, which the `Bin` reads *after* the
/// write) or an argument resolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum FastBinOperand {
    /// The fused literal.
    Lit,
    /// A register untouched by the `Const` — an argument or `null`.
    Arg(FastArg),
}

/// Maps a callee register to its [`FastArg`] resolution given the
/// callee's frame layout (`this` at 0 when present, then parameters).
fn fast_arg(r: Reg, has_this: bool, num_params: usize) -> FastArg {
    if has_this && r == 0 {
        FastArg::This
    } else {
        let p = r - has_this as u32;
        if (p as usize) < num_params {
            FastArg::Param(p)
        } else {
            FastArg::Null
        }
    }
}

/// Classifies a lowered body as a [`FastBody`] if it matches one of the
/// inlinable shapes.  Run after fusion, on the final code; the trailing
/// [`Instr::RetFall`] every compiled body carries is part of each
/// pattern.
fn classify_fast(code: &[Instr], has_this: bool, num_params: usize) -> Option<FastBody> {
    let arg = |r: &Reg| fast_arg(*r, has_this, num_params);
    match code {
        [Instr::Ret { src }, Instr::RetFall] => Some(FastBody::RetArg(arg(src))),
        [Instr::Const { dst, value }, Instr::Ret { src }, Instr::RetFall] if dst == src => {
            Some(FastBody::RetConst(value.clone()))
        }
        [Instr::Load {
            dst,
            obj,
            field,
            ic,
        }, Instr::Ret { src }, Instr::RetFall]
            if dst == src =>
        {
            Some(FastBody::Getter {
                obj: arg(obj),
                field: *field,
                ic: *ic,
            })
        }
        [Instr::Store {
            obj,
            field,
            src,
            ic,
        }, Instr::RetFall] => Some(FastBody::Setter {
            obj: arg(obj),
            field: *field,
            src: arg(src),
            ic: *ic,
        }),
        [Instr::RefEq { dst, a, b }, Instr::Ret { src }, Instr::RetFall] if dst == src => {
            Some(FastBody::RefEq {
                a: arg(a),
                b: arg(b),
            })
        }
        [Instr::NewObj { dst, class }, Instr::Ret { src }, Instr::RetFall] if dst == src => {
            Some(FastBody::NewObjRet(*class))
        }
        [Instr::Const { dst: c, value }, Instr::Bin { dst, op, a, b }, Instr::Ret { src }, Instr::RetFall]
            if dst == src =>
        {
            let operand = |r: &Reg| {
                if r == c {
                    FastBinOperand::Lit
                } else {
                    FastBinOperand::Arg(fast_arg(*r, has_this, num_params))
                }
            };
            Some(FastBody::ConstBinRet {
                value: value.clone(),
                op: *op,
                a: operand(a),
                b: operand(b),
            })
        }
        _ => None,
    }
}

/// A method lowered to bytecode.
#[derive(Debug, Clone)]
pub struct CompiledMethod {
    pub(crate) code: Vec<Instr>,
    pub(crate) num_regs: u32,
    pub(crate) has_this: bool,
    pub(crate) num_params: usize,
    /// For native methods: the qualified `Class.method` name used to look
    /// up the builtin, precomputed so calls skip the per-call `format!`.
    pub(crate) native: Option<String>,
    /// The inline-execution shape, when the body is trivial (see
    /// [`FastBody`]).
    pub(crate) fast: Option<FastBody>,
}

impl CompiledMethod {
    /// The lowered instruction sequence (empty for native methods).
    pub fn code(&self) -> &[Instr] {
        &self.code
    }

    /// Size of the register window a frame for this method needs.
    pub fn num_regs(&self) -> u32 {
        self.num_regs
    }

    /// The precomputed qualified name, for native methods.
    pub fn native(&self) -> Option<&str> {
        self.native.as_deref()
    }

    /// The inline-execution shape, when the body is one of the trivial
    /// [`FastBody`] patterns.
    pub(crate) fn fast(&self) -> Option<&FastBody> {
        self.fast.as_ref()
    }
}

/// A whole program lowered to bytecode, indexed by [`MethodId`].
///
/// Built once per library with [`CompiledProgram::compile`]; execution
/// state lives entirely in the VM, so one `CompiledProgram` (behind an
/// `Arc`) serves any number of concurrent executions.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    methods: Vec<CompiledMethod>,
    /// Identity of this compilation: freshly drawn per [`CompiledProgram::compile`],
    /// shared by clones.  Keys the VM's resolved-builtin cache together
    /// with [`crate::BuiltinRegistry`]'s version.
    id: u64,
    /// Number of field-access sites ([`Instr::Load`]/[`Instr::Store`] and
    /// their fused forms), each holding a compile-time-assigned `ic`
    /// index into the VM's inline-cache table.
    num_field_sites: u32,
}

/// Source of unique compilation ids (see [`CompiledProgram::id`]).
static NEXT_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl CompiledProgram {
    /// Lowers every method body of `program` to bytecode and fuses the
    /// hot instruction pairs (see `fuse`).
    pub fn compile(program: &Program) -> CompiledProgram {
        CompiledProgram::compile_inner(program, true)
    }

    /// Lowers without the fusion pass — the baseline the static
    /// pair-frequency pass ([`CompiledProgram::pair_frequencies`]) runs
    /// over, and the control arm of fused-vs-unfused differential tests.
    pub fn compile_unfused(program: &Program) -> CompiledProgram {
        CompiledProgram::compile_inner(program, false)
    }

    fn compile_inner(program: &Program, fused: bool) -> CompiledProgram {
        let mut field_sites = 0u32;
        let mut methods: Vec<CompiledMethod> = (0..program.num_methods() as u32)
            .map(|i| compile_method(program, MethodId::from_index(i), &mut field_sites))
            .collect();
        for m in &mut methods {
            if fused {
                fuse(&mut m.code);
            }
            m.fast = classify_fast(&m.code, m.has_this, m.num_params);
        }
        CompiledProgram {
            methods,
            id: NEXT_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            num_field_sites: field_sites,
        }
    }

    /// Number of field-access sites; sizes the VM's inline-cache table.
    pub fn num_field_sites(&self) -> u32 {
        self.num_field_sites
    }

    /// The static frequency of adjacent instruction pairs across every
    /// method body, most frequent first.  Run on an unfused compilation
    /// ([`CompiledProgram::compile_unfused`]) this is the data that
    /// selects fusion candidates; run on a fused one it shows what
    /// remains unfused.
    pub fn pair_frequencies(&self) -> Vec<((&'static str, &'static str), usize)> {
        let mut counts = std::collections::BTreeMap::new();
        for m in &self.methods {
            for w in m.code.windows(2) {
                *counts
                    .entry((w[0].kind().name(), w[1].kind().name()))
                    .or_insert(0usize) += 1;
            }
        }
        let mut out: Vec<_> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// An identifier for this compilation (clones share it; each
    /// [`CompiledProgram::compile`] draws a fresh one).
    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    /// Iterates over the compiled methods in [`MethodId`] index order.
    pub(crate) fn methods(&self) -> impl Iterator<Item = &CompiledMethod> {
        self.methods.iter()
    }

    /// The compiled form of a method.
    pub fn method(&self, id: MethodId) -> &CompiledMethod {
        &self.methods[id.index() as usize]
    }

    /// Number of compiled methods.
    pub fn num_methods(&self) -> usize {
        self.methods.len()
    }

    /// Total instruction count across all methods (reported by the
    /// `oracle` bench alongside compile time).
    pub fn total_instructions(&self) -> usize {
        self.methods.iter().map(|m| m.code.len()).sum()
    }

    /// Number of methods whose body classified as an inline-executable
    /// trivial shape (the VM runs these at the call site without a frame
    /// push; see `Vm::invoke_site`).  Reported by the `oracle` bench
    /// alongside the compile stats.
    pub fn num_fast_bodies(&self) -> usize {
        self.methods.iter().filter(|m| m.fast.is_some()).count()
    }
}

fn compile_method(program: &Program, id: MethodId, field_sites: &mut u32) -> CompiledMethod {
    let m = program.method(id);
    if m.is_native() {
        return CompiledMethod {
            code: Vec::new(),
            num_regs: 0,
            has_this: m.has_this(),
            num_params: m.num_params(),
            native: Some(program.qualified_name(id)),
            fast: None,
        };
    }
    // The tree-walker's environment resizes on out-of-range writes and
    // reads missing slots as `null`; sizing the window to the largest
    // register mentioned anywhere in the body reproduces both behaviors
    // with a flat, pre-sized window.
    let mut num_regs = m.num_vars() as u32;
    atlas_ir::visit_block(m.body(), &mut |s| {
        for v in stmt_vars(s) {
            num_regs = num_regs.max(v.index() + 1);
        }
    });
    let mut c = FnCompiler {
        code: Vec::new(),
        field_sites,
    };
    c.block(m.body());
    c.code.push(Instr::RetFall);
    CompiledMethod {
        code: c.code,
        num_regs,
        has_this: m.has_this(),
        num_params: m.num_params(),
        native: None,
        fast: None,
    }
}

/// The peephole fusion pass: rewrites the hot adjacent pairs selected by
/// the static frequency data ([`CompiledProgram::pair_frequencies`] on
/// javalib puts `Load+Branch`, `Const+Store`, and `Call+RetFall` at the
/// top) into single fused instructions.
///
/// The fused instruction replaces the pair's *first* slot and performs
/// both effects; the second instruction stays in place, dead on the
/// fall-through path but still a valid target for any jump that lands on
/// it — so no jump needs renumbering, and a jump *into* the middle of a
/// fused pair executes exactly the original second half.  The firsts
/// (`Load`, `Call`, `Const`) and seconds (`Branch`, `RetFall`, `Store`)
/// are disjoint sets, so skipping past a fused pair never misses a
/// fusion opportunity.
fn fuse(code: &mut [Instr]) {
    let mut i = 0;
    while i + 1 < code.len() {
        let fused = match (&code[i], &code[i + 1]) {
            (
                Instr::Load {
                    dst,
                    obj,
                    field,
                    ic,
                },
                Instr::Branch { cond, else_target },
            ) if cond == dst => Some(Instr::LoadBranch {
                dst: *dst,
                obj: *obj,
                field: *field,
                ic: *ic,
                else_target: *else_target,
            }),
            (Instr::Call(site), Instr::RetFall) => Some(Instr::CallRetFall(site.clone())),
            (
                Instr::Const { dst, value },
                Instr::Store {
                    obj,
                    field,
                    src,
                    ic,
                },
            ) if src == dst => Some(Instr::ConstStore {
                dst: *dst,
                value: value.clone(),
                obj: *obj,
                field: *field,
                ic: *ic,
            }),
            _ => None,
        };
        if let Some(f) = fused {
            code[i] = f;
            i += 2;
        } else {
            i += 1;
        }
    }
}

/// Every variable mentioned by one statement (nested blocks excluded;
/// `visit_block` recurses into those).
fn stmt_vars(s: &Stmt) -> Vec<Var> {
    match s {
        Stmt::Assign { dst, src } => vec![*dst, *src],
        Stmt::New { dst, .. } => vec![*dst],
        Stmt::NewArray { dst, len, .. } => vec![*dst, *len],
        Stmt::Store { obj, src, .. } => vec![*obj, *src],
        Stmt::Load { dst, obj, .. } => vec![*dst, *obj],
        Stmt::ArrayStore { arr, index, src } => vec![*arr, *index, *src],
        Stmt::ArrayLoad { dst, arr, index } => vec![*dst, *arr, *index],
        Stmt::Call {
            dst, recv, args, ..
        } => {
            let mut vs: Vec<Var> = args.clone();
            vs.extend(*dst);
            vs.extend(*recv);
            vs
        }
        Stmt::Const { dst, .. } => vec![*dst],
        Stmt::Bin { dst, a, b, .. } => vec![*dst, *a, *b],
        Stmt::RefEq { dst, a, b } => vec![*dst, *a, *b],
        Stmt::IsNull { dst, a } => vec![*dst, *a],
        Stmt::Not { dst, a } => vec![*dst, *a],
        Stmt::ArrayLen { dst, arr } => vec![*dst, *arr],
        Stmt::If { cond, .. } => vec![*cond],
        Stmt::While { cond, .. } => vec![*cond],
        Stmt::Return { var } => var.iter().copied().collect(),
        Stmt::Throw { .. } => Vec::new(),
    }
}

struct FnCompiler<'a> {
    code: Vec<Instr>,
    /// Program-wide field-site counter: every `Load`/`Store` emitted
    /// draws the next inline-cache index.
    field_sites: &'a mut u32,
}

impl FnCompiler<'_> {
    /// Draws the next inline-cache site id.
    fn next_ic(&mut self) -> u32 {
        let ic = *self.field_sites;
        *self.field_sites += 1;
        ic
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn block(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        let r = |v: &Var| v.index();
        match s {
            Stmt::Assign { dst, src } => self.code.push(Instr::Move {
                dst: r(dst),
                src: r(src),
            }),
            Stmt::New { dst, class, .. } => self.code.push(Instr::NewObj {
                dst: r(dst),
                class: *class,
            }),
            Stmt::NewArray { dst, len, .. } => self.code.push(Instr::NewArr {
                dst: r(dst),
                len: r(len),
            }),
            Stmt::Store { obj, field, src } => {
                let ic = self.next_ic();
                self.code.push(Instr::Store {
                    obj: r(obj),
                    field: *field,
                    src: r(src),
                    ic,
                });
            }
            Stmt::Load { dst, obj, field } => {
                let ic = self.next_ic();
                self.code.push(Instr::Load {
                    dst: r(dst),
                    obj: r(obj),
                    field: *field,
                    ic,
                });
            }
            Stmt::ArrayStore { arr, index, src } => self.code.push(Instr::ArrStore {
                arr: r(arr),
                index: r(index),
                src: r(src),
            }),
            Stmt::ArrayLoad { dst, arr, index } => self.code.push(Instr::ArrLoad {
                dst: r(dst),
                arr: r(arr),
                index: r(index),
            }),
            Stmt::Call {
                dst,
                method,
                recv,
                args,
            } => self.code.push(Instr::Call(Box::new(CallSite {
                method: *method,
                recv: recv.as_ref().map(r),
                args: args.iter().map(|v| v.index()).collect(),
                dst: dst.as_ref().map(r),
            }))),
            Stmt::Const { dst, value, .. } => self.code.push(Instr::Const {
                dst: r(dst),
                value: value.clone(),
            }),
            Stmt::Bin { dst, op, a, b } => self.code.push(Instr::Bin {
                dst: r(dst),
                op: *op,
                a: r(a),
                b: r(b),
            }),
            Stmt::RefEq { dst, a, b } => self.code.push(Instr::RefEq {
                dst: r(dst),
                a: r(a),
                b: r(b),
            }),
            Stmt::IsNull { dst, a } => self.code.push(Instr::IsNull {
                dst: r(dst),
                a: r(a),
            }),
            Stmt::Not { dst, a } => self.code.push(Instr::Not {
                dst: r(dst),
                a: r(a),
            }),
            Stmt::ArrayLen { dst, arr } => self.code.push(Instr::ArrLen {
                dst: r(dst),
                arr: r(arr),
            }),
            Stmt::If { cond, then, els } => {
                let branch = self.here();
                self.code.push(Instr::Branch {
                    cond: r(cond),
                    else_target: 0, // patched below
                });
                self.block(then);
                let jump = self.here();
                self.code.push(Instr::Jump { target: 0 }); // patched below
                let else_start = self.here();
                self.patch(branch, else_start);
                self.block(els);
                let join = self.here();
                self.patch(jump, join);
            }
            Stmt::While { header, cond, body } => {
                self.code.push(Instr::LoopEnter);
                let head = self.here();
                self.block(header);
                let test = self.here();
                self.code.push(Instr::LoopCond {
                    cond: r(cond),
                    exit_target: 0, // patched below
                });
                self.block(body);
                self.code.push(Instr::LoopJump { target: head });
                let exit = self.here();
                self.patch(test, exit);
            }
            Stmt::Return { var } => self.code.push(match var {
                Some(v) => Instr::Ret { src: r(v) },
                None => Instr::RetVoid,
            }),
            Stmt::Throw { message } => self.code.push(Instr::Throw {
                message: message.clone(),
            }),
        }
    }

    /// Resolves the pending jump target of the instruction at `at`.
    fn patch(&mut self, at: u32, target: u32) {
        match &mut self.code[at as usize] {
            Instr::Branch { else_target, .. } => *else_target = target,
            Instr::Jump { target: t, .. } | Instr::LoopJump { target: t } => *t = target,
            Instr::LoopCond { exit_target, .. } => *exit_target = target,
            other => unreachable!("patched a non-jump instruction: {other:?}"),
        }
    }
}

/// A synthesized witness lowered to bytecode: the whole oracle query —
/// receiver instantiation, argument marshalling, the call word, and
/// verdict extraction — as one straight-line instruction sequence the VM
/// runs without re-entering the tree-level harness per operation.
///
/// Lifecycle: built once per witness (`atlas-synth`'s
/// `WitnessTest::compile_into`), cached in the caller's scratch so its
/// buffer is recycled across witnesses, and executed any number of times
/// via [`crate::Vm::run_witness`] with a [`crate::Vm::reset`] between
/// rounds.  The witness instructions themselves never tick and the
/// witness frame charges no call depth, so a run is observationally
/// identical — verdict, step count, error — to driving the same ops
/// through the tree-level `execute_with` harness.
#[derive(Debug, Clone, Default)]
pub struct CompiledWitness {
    pub(crate) code: Vec<Instr>,
    pub(crate) num_regs: u32,
}

impl CompiledWitness {
    /// An empty witness buffer, ready to be filled by the emit methods.
    pub fn new() -> CompiledWitness {
        CompiledWitness::default()
    }

    /// Clears the witness for re-lowering, keeping the code buffer's
    /// capacity — the recycling step of the once-per-witness lifecycle.
    pub fn clear(&mut self) {
        self.code.clear();
        self.num_regs = 0;
    }

    /// Number of lowered instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the witness is empty (freshly created or cleared).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Size of the register window the witness frame needs.
    pub fn num_regs(&self) -> u32 {
        self.num_regs
    }

    fn track(&mut self, reg: Reg) {
        self.num_regs = self.num_regs.max(reg + 1);
    }

    /// Emits `dst = literal` (argument marshalling).
    pub fn push_const(&mut self, dst: Reg, value: Constant) {
        self.track(dst);
        self.code.push(Instr::WConst { dst, value });
    }

    /// Emits `dst = new class()` (raw receiver allocation).
    pub fn push_alloc(&mut self, dst: Reg, class: ClassId) {
        self.track(dst);
        self.code.push(Instr::WAlloc { dst, class });
    }

    /// Emits a top-level call of the witness word.
    pub fn push_call(
        &mut self,
        method: MethodId,
        recv: Option<Reg>,
        args: &[Reg],
        dst: Option<Reg>,
    ) {
        if let Some(r) = recv {
            self.track(r);
        }
        if let Some(d) = dst {
            self.track(d);
        }
        for &a in args {
            self.track(a);
        }
        self.code.push(Instr::WCall(Box::new(CallSite {
            method,
            recv,
            args: args.to_vec(),
            dst,
        })));
    }

    /// Terminates the witness with its verdict extraction: passes iff
    /// the tracked input `a` is non-null and identical to the observed
    /// output `b`.
    pub fn finish(&mut self, a: Reg, b: Reg) {
        self.track(a);
        self.track(b);
        self.code.push(Instr::WVerdict { a, b });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_ir::builder::ProgramBuilder;
    use atlas_ir::Type;

    #[test]
    fn lowering_resolves_jump_targets() {
        let mut pb = ProgramBuilder::new();
        pb.class("Object").build();
        let mut main = pb.class("Main");
        let mut t = main.static_method("f");
        let c = t.local("c", Type::Bool);
        let x = t.local("x", Type::Int);
        t.const_bool(c, true);
        t.if_stmt(c, |m| m.const_int(x, 1), |m| m.const_int(x, 2));
        t.while_stmt(|_| c, |m| m.const_bool(c, false));
        t.ret(Some(x));
        t.finish();
        main.build();
        let p = pb.build();
        let compiled = CompiledProgram::compile(&p);
        assert_eq!(compiled.num_methods(), p.num_methods());
        let f = p.method_qualified("Main.f").unwrap();
        let cm = compiled.method(f);
        assert!(cm.num_regs() >= 2);
        assert!(cm.native().is_none());
        // Every jump target lands inside the code, and the lowered body
        // contains the expected control instructions.
        let code = cm.code();
        let n = code.len() as u32;
        let mut saw = (false, false, false, false);
        for instr in code {
            match instr {
                Instr::Branch { else_target, .. } => {
                    assert!(*else_target < n);
                    saw.0 = true;
                }
                Instr::Jump { target } | Instr::LoopJump { target } => {
                    assert!(*target < n);
                    saw.1 = true;
                }
                Instr::LoopCond { exit_target, .. } => {
                    assert!(*exit_target < n);
                    saw.2 = true;
                }
                Instr::LoopEnter => saw.3 = true,
                _ => {}
            }
        }
        assert_eq!(saw, (true, true, true, true));
        // The implicit fall-off return terminates the body.
        assert_eq!(code.last(), Some(&Instr::RetFall));
        assert!(compiled.total_instructions() >= code.len());
    }

    #[test]
    fn native_methods_precompute_their_qualified_name() {
        let mut pb = ProgramBuilder::new();
        pb.class("Object").build();
        let mut sys = pb.class("System");
        sys.library(true);
        let mut ac = sys.static_method("arraycopy");
        ac.native(true);
        ac.param("src", Type::object_array());
        ac.finish();
        sys.build();
        let p = pb.build();
        let compiled = CompiledProgram::compile(&p);
        let id = p.method_qualified("System.arraycopy").unwrap();
        assert_eq!(compiled.method(id).native(), Some("System.arraycopy"));
        assert!(compiled.method(id).code().is_empty());
    }
}
