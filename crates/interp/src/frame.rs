//! Contiguous call frames for the bytecode VM.
//!
//! All registers of all live frames share one `Vec<Value>`; a frame is a
//! window `[base, base + num_regs)` into it, plus a record of where to
//! resume the caller.  Pushing a frame writes the receiver and parameter
//! slots and extends the stack with `null`-initialized slots for the
//! rest, popping truncates it back — no per-call allocation once the
//! stack has reached its high-water mark.

use crate::compile::Reg;
use crate::value::Value;
use atlas_ir::MethodId;

/// One call-frame record: the method executing, its register window, and
/// the caller's resume point.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The method this frame executes.
    pub(crate) method: MethodId,
    /// Start of this frame's register window in the shared stack.
    pub(crate) base: usize,
    /// Instruction index in the *caller* to resume at after return.
    pub(crate) ret_ip: usize,
    /// Caller register receiving the return value, if bound.
    pub(crate) dst: Option<Reg>,
}

/// The shared register stack and the stack of frame records.
#[derive(Debug, Clone, Default)]
pub struct FrameStack {
    pub(crate) regs: Vec<Value>,
    pub(crate) frames: Vec<Frame>,
}

impl FrameStack {
    /// Creates an empty stack.
    pub fn new() -> FrameStack {
        FrameStack::default()
    }

    /// Number of live frames.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Pushes a frame whose leading registers are the receiver (if any)
    /// followed by up to `num_params` arguments, with the remaining
    /// registers null-initialized — every slot of the new window is
    /// written exactly once.  Returns the window base.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn push_with_args(
        &mut self,
        method: MethodId,
        num_regs: u32,
        ret_ip: usize,
        dst: Option<Reg>,
        recv: Option<Value>,
        args: &[Value],
        num_params: usize,
    ) -> usize {
        let base = self.regs.len();
        if let Some(v) = recv {
            self.regs.push(v);
        }
        for v in args.iter().take(num_params) {
            self.regs.push(v.clone());
        }
        self.regs.resize(base + num_regs as usize, Value::Null);
        self.frames.push(Frame {
            method,
            base,
            ret_ip,
            dst,
        });
        base
    }

    /// Pushes a frame whose receiver and arguments are copied directly
    /// out of the *caller's* register window — the fast path of the call
    /// instructions, with no marshalling buffer between the two windows.
    /// Source registers all live below `base = regs.len()`, so each value
    /// is cloned exactly once, from caller slot to callee slot.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn push_from_regs(
        &mut self,
        method: MethodId,
        num_regs: u32,
        ret_ip: usize,
        dst: Option<Reg>,
        caller_base: usize,
        recv: Option<Reg>,
        arg_regs: &[Reg],
        num_params: usize,
    ) -> usize {
        let base = self.regs.len();
        if let Some(r) = recv {
            let v = self.regs[caller_base + r as usize].clone();
            self.regs.push(v);
        }
        for &a in arg_regs.iter().take(num_params) {
            let v = self.regs[caller_base + a as usize].clone();
            self.regs.push(v);
        }
        self.regs.resize(base + num_regs as usize, Value::Null);
        self.frames.push(Frame {
            method,
            base,
            ret_ip,
            dst,
        });
        base
    }

    /// Pops the top frame, truncating its register window away.
    pub(crate) fn pop(&mut self) -> Frame {
        let frame = self.frames.pop().expect("pop on an empty frame stack");
        self.regs.truncate(frame.base);
        frame
    }

    /// Drops every frame and register, keeping the allocated capacity so a
    /// reused stack reaches its high-water mark once and never again.
    pub(crate) fn clear(&mut self) {
        self.regs.clear();
        self.frames.clear();
    }

    /// The allocated capacity of `(regs, frames)` — snapshotted by the
    /// zero-allocation audit alongside [`crate::Heap::capacities`].
    pub fn capacities(&self) -> (usize, usize) {
        (self.regs.capacity(), self.frames.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_nest_and_unwind() {
        let mut s = FrameStack::new();
        assert_eq!(s.depth(), 0);
        let m = MethodId::from_index(0);
        let b0 = s.push_with_args(m, 2, 0, None, None, &[], 0);
        assert_eq!(b0, 0);
        s.regs[b0] = Value::Int(1);
        let b1 = s.push_with_args(m, 3, 7, Some(1), None, &[], 0);
        assert_eq!(b1, 2);
        assert_eq!(s.depth(), 2);
        assert_eq!(s.regs.len(), 5);
        // Callee registers start null; caller registers are untouched.
        assert_eq!(s.regs[b1], Value::Null);
        assert_eq!(s.regs[b0], Value::Int(1));
        s.regs[b1] = Value::Int(9);
        let f = s.pop();
        assert_eq!(f.ret_ip, 7);
        assert_eq!(f.dst, Some(1));
        assert_eq!(s.regs.len(), 2);
        assert_eq!(s.pop().base, 0);
        assert!(s.regs.is_empty());
        assert_eq!(s.depth(), 0);
    }

    #[test]
    fn parameters_fill_leading_registers() {
        let mut s = FrameStack::new();
        let m = MethodId::from_index(0);
        // Receiver + 2 of 2 params + 2 locals, extra args ignored.
        let b = s.push_with_args(
            m,
            5,
            0,
            None,
            Some(Value::Int(7)),
            &[Value::Int(1), Value::Int(2), Value::Int(99)],
            2,
        );
        assert_eq!(
            s.regs[b..],
            [
                Value::Int(7),
                Value::Int(1),
                Value::Int(2),
                Value::Null,
                Value::Null
            ]
        );
        // Missing trailing arguments stay null.
        let b2 = s.push_with_args(m, 3, 0, None, None, &[Value::Bool(true)], 2);
        assert_eq!(s.regs[b2..], [Value::Bool(true), Value::Null, Value::Null]);
    }
}
