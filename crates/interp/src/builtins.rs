//! Builtin implementations of "native" library methods.
//!
//! The modeled Java library marks a handful of methods as native (e.g.
//! `System.arraycopy`, which the real `Vector` implementation calls); the
//! static analysis cannot see through them (one of the motivations of the
//! paper), but the interpreter executes them via this registry.

use crate::eval::ExecError;
use crate::heap::Heap;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The signature of a builtin: receives the heap, the receiver and the
/// argument values, returns the result value.
pub type BuiltinFn = fn(&mut Heap, Option<Value>, &[Value]) -> Result<Value, ExecError>;

/// Source of unique registry versions (see [`BuiltinRegistry::version`]).
static NEXT_VERSION: AtomicU64 = AtomicU64::new(0);

fn fresh_version() -> u64 {
    NEXT_VERSION.fetch_add(1, Ordering::Relaxed)
}

/// A registry of native-method implementations keyed by qualified
/// `"Class.method"` name.
#[derive(Clone)]
pub struct BuiltinRegistry {
    by_name: HashMap<String, BuiltinFn>,
    /// Identity of this registry's *contents*: freshly drawn on
    /// construction and on every [`BuiltinRegistry::register`] call,
    /// shared by clones (their contents are identical), and never reused
    /// by a different content set.  Lets the VM cache name→fn resolutions
    /// across executions and invalidate on any possible change.
    version: u64,
}

impl Default for BuiltinRegistry {
    fn default() -> BuiltinRegistry {
        BuiltinRegistry {
            by_name: HashMap::new(),
            version: fresh_version(),
        }
    }
}

impl fmt::Debug for BuiltinRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&String> = self.by_name.keys().collect();
        names.sort();
        f.debug_struct("BuiltinRegistry")
            .field("builtins", &names)
            .finish()
    }
}

impl BuiltinRegistry {
    /// Creates an empty registry.
    pub fn new() -> BuiltinRegistry {
        BuiltinRegistry::default()
    }

    /// Creates the default registry with the natives used by the modeled
    /// library.
    pub fn with_defaults() -> BuiltinRegistry {
        let mut r = BuiltinRegistry::new();
        r.register("System.arraycopy", builtin_arraycopy);
        r.register("System.identityHashCode", builtin_identity_hash);
        r.register("Object.hashCode", builtin_identity_hash_recv);
        r.register("Math.max", builtin_max);
        r.register("Math.min", builtin_min);
        r.register("Arrays.copyOf", builtin_copy_of);
        r
    }

    /// Registers (or replaces) a builtin.
    pub fn register(&mut self, qualified_name: &str, f: BuiltinFn) {
        self.by_name.insert(qualified_name.to_string(), f);
        self.version = fresh_version();
    }

    /// An identifier for this registry's contents: two registries with the
    /// same version hold the same builtins (clones share it; mutation
    /// draws a fresh one).  Used by the VM to key its resolved-builtin
    /// cache.
    pub(crate) fn version(&self) -> u64 {
        self.version
    }

    /// Looks up a builtin by qualified name.
    pub fn lookup(&self, qualified_name: &str) -> Option<BuiltinFn> {
        self.by_name.get(qualified_name).copied()
    }

    /// Number of registered builtins.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }
}

fn int_arg(args: &[Value], i: usize) -> Result<i64, ExecError> {
    args.get(i)
        .and_then(Value::as_int)
        .ok_or_else(|| ExecError::Builtin(format!("expected int argument at position {i}")))
}

fn ref_arg(args: &[Value], i: usize) -> Result<crate::heap::ObjRef, ExecError> {
    match args.get(i) {
        Some(Value::Ref(r)) => Ok(*r),
        Some(Value::Null) => Err(ExecError::NullPointer),
        _ => Err(ExecError::Builtin(format!(
            "expected reference argument at position {i}"
        ))),
    }
}

/// `System.arraycopy(src, srcPos, dest, destPos, length)`.
fn builtin_arraycopy(
    heap: &mut Heap,
    _recv: Option<Value>,
    args: &[Value],
) -> Result<Value, ExecError> {
    let src = ref_arg(args, 0)?;
    let src_pos = int_arg(args, 1)?;
    let dest = ref_arg(args, 2)?;
    let dest_pos = int_arg(args, 3)?;
    let length = int_arg(args, 4)?;
    if length < 0 || src_pos < 0 || dest_pos < 0 {
        return Err(ExecError::IndexOutOfBounds);
    }
    for k in 0..length {
        let v = heap
            .read_element(src, src_pos + k)
            .ok_or(ExecError::IndexOutOfBounds)?;
        if !heap.write_element(dest, dest_pos + k, v) {
            return Err(ExecError::IndexOutOfBounds);
        }
    }
    Ok(Value::Void)
}

/// `Arrays.copyOf(original, newLength)`.
fn builtin_copy_of(
    heap: &mut Heap,
    _recv: Option<Value>,
    args: &[Value],
) -> Result<Value, ExecError> {
    let src = ref_arg(args, 0)?;
    let new_len = int_arg(args, 1)?;
    if new_len < 0 {
        return Err(ExecError::IndexOutOfBounds);
    }
    let old_len = heap
        .array_len(src)
        .ok_or(ExecError::Builtin("copyOf of non-array".into()))? as i64;
    let dst = heap.alloc_array(new_len as usize);
    for k in 0..new_len.min(old_len) {
        let v = heap
            .read_element(src, k)
            .ok_or(ExecError::IndexOutOfBounds)?;
        heap.write_element(dst, k, v);
    }
    Ok(Value::Ref(dst))
}

/// `System.identityHashCode(x)`.
fn builtin_identity_hash(
    _heap: &mut Heap,
    _recv: Option<Value>,
    args: &[Value],
) -> Result<Value, ExecError> {
    Ok(match args.first() {
        Some(Value::Ref(r)) => Value::Int(r.0 as i64),
        Some(Value::Null) | None => Value::Int(0),
        Some(Value::Int(v)) => Value::Int(*v),
        Some(other) => Value::Int(format!("{other}").len() as i64),
    })
}

/// `Object.hashCode()` — identity hash of the receiver.
fn builtin_identity_hash_recv(
    heap: &mut Heap,
    recv: Option<Value>,
    _args: &[Value],
) -> Result<Value, ExecError> {
    builtin_identity_hash(heap, None, &[recv.unwrap_or(Value::Null)])
}

/// `Math.max(a, b)`.
fn builtin_max(_heap: &mut Heap, _recv: Option<Value>, args: &[Value]) -> Result<Value, ExecError> {
    Ok(Value::Int(int_arg(args, 0)?.max(int_arg(args, 1)?)))
}

/// `Math.min(a, b)`.
fn builtin_min(_heap: &mut Heap, _recv: Option<Value>, args: &[Value]) -> Result<Value, ExecError> {
    Ok(Value::Int(int_arg(args, 0)?.min(int_arg(args, 1)?)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_ir::ClassId;

    #[test]
    fn registry_defaults() {
        let r = BuiltinRegistry::with_defaults();
        assert!(!r.is_empty());
        assert!(r.len() >= 5);
        assert!(r.lookup("System.arraycopy").is_some());
        assert!(r.lookup("No.such").is_none());
        assert!(format!("{r:?}").contains("arraycopy"));
    }

    #[test]
    fn arraycopy_copies_and_bounds_checks() {
        let mut heap = Heap::new();
        let src = heap.alloc_array(3);
        let obj = heap.alloc(ClassId::from_index(0));
        heap.write_element(src, 0, Value::Ref(obj));
        heap.write_element(src, 1, Value::Int(7));
        let dst = heap.alloc_array(3);
        let args = [
            Value::Ref(src),
            Value::Int(0),
            Value::Ref(dst),
            Value::Int(1),
            Value::Int(2),
        ];
        builtin_arraycopy(&mut heap, None, &args).unwrap();
        assert_eq!(heap.read_element(dst, 1), Some(Value::Ref(obj)));
        assert_eq!(heap.read_element(dst, 2), Some(Value::Int(7)));
        // Out of bounds length fails.
        let bad = [
            Value::Ref(src),
            Value::Int(0),
            Value::Ref(dst),
            Value::Int(0),
            Value::Int(9),
        ];
        assert!(matches!(
            builtin_arraycopy(&mut heap, None, &bad),
            Err(ExecError::IndexOutOfBounds)
        ));
        // Null source fails.
        let null_src = [
            Value::Null,
            Value::Int(0),
            Value::Ref(dst),
            Value::Int(0),
            Value::Int(1),
        ];
        assert!(matches!(
            builtin_arraycopy(&mut heap, None, &null_src),
            Err(ExecError::NullPointer)
        ));
    }

    #[test]
    fn copy_of_grows_array() {
        let mut heap = Heap::new();
        let src = heap.alloc_array(2);
        heap.write_element(src, 0, Value::Int(1));
        heap.write_element(src, 1, Value::Int(2));
        let out = builtin_copy_of(&mut heap, None, &[Value::Ref(src), Value::Int(4)]).unwrap();
        let out = out.as_ref().unwrap();
        assert_eq!(heap.array_len(out), Some(4));
        assert_eq!(heap.read_element(out, 1), Some(Value::Int(2)));
        assert_eq!(heap.read_element(out, 3), Some(Value::Null));
    }

    #[test]
    fn math_and_hash_builtins() {
        let mut heap = Heap::new();
        assert_eq!(
            builtin_max(&mut heap, None, &[Value::Int(2), Value::Int(5)]).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            builtin_min(&mut heap, None, &[Value::Int(2), Value::Int(5)]).unwrap(),
            Value::Int(2)
        );
        let o = heap.alloc(ClassId::from_index(0));
        assert_eq!(
            builtin_identity_hash(&mut heap, None, &[Value::Ref(o)]).unwrap(),
            Value::Int(o.0 as i64)
        );
        assert_eq!(
            builtin_identity_hash(&mut heap, None, &[Value::Null]).unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            builtin_identity_hash_recv(&mut heap, Some(Value::Ref(o)), &[]).unwrap(),
            Value::Int(o.0 as i64)
        );
    }
}
