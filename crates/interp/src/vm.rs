//! The bytecode VM: a dispatch loop over [`CompiledProgram`] code.
//!
//! The VM is the oracle's fast path.  It executes the flat instruction
//! streams produced by [`crate::compile`] with contiguous call frames
//! ([`crate::frame::FrameStack`]) and the arena-backed [`Heap`], and it
//! must be *observationally identical* to the tree-walking
//! [`crate::Interpreter`]: same [`ExecOutcome`], same step count, same
//! [`ExecError`] (including which limit a budget exhaustion reports and
//! at which statement it fires).  That guarantee rests on two pillars:
//!
//! * both engines charge the one shared [`StepBudget`]
//!   ([`crate::limits`]), so the accounting arithmetic cannot drift; and
//! * the lowering gives every ticking tree statement exactly one ticking
//!   instruction, and every non-ticking control transfer a non-ticking
//!   one ([`Instr::Jump`], [`Instr::LoopCond`], [`Instr::RetFall`]).
//!
//! `tests/vm_equivalence.rs` enforces the guarantee differentially.

use crate::builtins::BuiltinRegistry;
use crate::compile::{
    CompiledProgram, CompiledWitness, FastArg, FastBinOperand, FastBody, Instr, OpKind, Reg,
};
use crate::eval::{eval_bin, ExecError, ExecOutcome, Executor};
use crate::frame::FrameStack;
use crate::heap::{FieldCache, Heap, ObjRef};
use crate::limits::{ExecLimits, StepBudget};
use crate::value::Value;
use atlas_ir::{ClassId, Constant, MethodId};

/// Result of dispatching a call: natives produce a value immediately,
/// compiled bodies push a frame — carrying its register base and code
/// slice so the dispatch loop resumes without a second method lookup.
enum Invoked<'p> {
    Value(Value),
    Frame(usize, &'p [Instr]),
}

/// Sentinel method id of the synthetic witness base frame (never used to
/// resolve code: the dispatch loop resolves the witness slice directly).
fn witness_frame_method() -> MethodId {
    MethodId::from_index(u32::MAX)
}

/// Per-opcode dynamic execution counts plus inline-cache hit/miss
/// totals, gathered when profiling is enabled (`ATLAS_VM_PROFILE`).
///
/// Off by default and allocated out of line (`Option<Box<VmProfile>>`),
/// so the unprofiled dispatch loop pays one predictable branch per
/// instruction and nothing else — recording never changes verdicts,
/// steps, or errors.
#[derive(Debug, Clone)]
pub struct VmProfile {
    counts: [u64; OpKind::COUNT],
    ic_hits: u64,
    ic_misses: u64,
}

impl Default for VmProfile {
    fn default() -> VmProfile {
        VmProfile {
            counts: [0; OpKind::COUNT],
            ic_hits: 0,
            ic_misses: 0,
        }
    }
}

impl VmProfile {
    #[inline]
    fn record(&mut self, kind: OpKind) {
        self.counts[kind as usize] += 1;
    }

    #[inline]
    fn record_ic(&mut self, hit: bool) {
        if hit {
            self.ic_hits += 1;
        } else {
            self.ic_misses += 1;
        }
    }

    /// Executions of one instruction shape.
    pub fn count(&self, kind: OpKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Total instructions dispatched.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Inline-cache hits across all field sites.
    pub fn ic_hits(&self) -> u64 {
        self.ic_hits
    }

    /// Inline-cache misses (including megamorphic fallbacks).
    pub fn ic_misses(&self) -> u64 {
        self.ic_misses
    }

    /// The nonzero counts, most-executed first.
    pub fn histogram(&self) -> Vec<(OpKind, u64)> {
        let mut out: Vec<(OpKind, u64)> = OpKind::ALL
            .iter()
            .map(|&k| (k, self.counts[k as usize]))
            .filter(|&(_, n)| n > 0)
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Folds another profile into this one (per-worker profiles merge
    /// into session totals like the oracle's other counters).
    pub fn merge(&mut self, other: &VmProfile) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.ic_hits += other.ic_hits;
        self.ic_misses += other.ic_misses;
    }
}

/// Reusable VM state: the arena heap, the register stack, and the
/// call-argument buffer.
///
/// A fresh VM starts from empty arenas and pays their growth in its first
/// executions.  A long-running caller (the oracle, which executes
/// thousands of short unit tests) instead keeps one `VmScratch` alive,
/// builds each per-test [`Vm`] with [`Vm::with_scratch`], and takes the
/// buffers back via [`Vm::into_scratch`]: the state is *cleared* between
/// tests (no values survive — engine equivalence is untouched) but the
/// allocations are kept, so steady-state execution allocates nothing.
#[derive(Debug, Default)]
pub struct VmScratch {
    heap: Heap,
    stack: FrameStack,
    args: Vec<Value>,
    /// Resolved builtin per method (indexed by [`MethodId`]); `None` for
    /// non-native methods and for natives absent from the registry.
    natives: Vec<Option<crate::builtins::BuiltinFn>>,
    /// The `(CompiledProgram::id, BuiltinRegistry::version)` pair the
    /// `natives` table was resolved against.  Unlike the other buffers,
    /// the table is *kept* across executions while this key matches —
    /// both ids are globally unique, so a match proves the resolution is
    /// still exact and native dispatch never re-hashes a method name.
    natives_key: Option<(u64, u64)>,
    /// Per-site inline caches (indexed by the `ic` field of
    /// `Load`/`Store` and their fused forms).  Kept *warm* across
    /// executions while `field_cache_key` matches the program: entries
    /// are verified on every use, so a stale guess from a previous
    /// execution is a safe miss, and a correct one skips the field scan
    /// from the very first round.
    field_cache: Vec<FieldCache>,
    /// The `CompiledProgram::id` the `field_cache` table was sized for.
    field_cache_key: Option<u64>,
    /// Dynamic opcode counts, when profiling is enabled; carried across
    /// executions so a profiled pass accumulates session totals.
    profile: Option<Box<VmProfile>>,
}

impl VmScratch {
    /// Turns on per-opcode profiling for every VM built from this
    /// scratch (see [`VmProfile`]).  Counters accumulate across
    /// executions until taken with [`VmScratch::take_profile`].
    pub fn enable_profile(&mut self) {
        if self.profile.is_none() {
            self.profile = Some(Box::default());
        }
    }

    /// The accumulated profile, if profiling is enabled.
    pub fn profile(&self) -> Option<&VmProfile> {
        self.profile.as_deref()
    }

    /// Takes the accumulated profile, disabling further recording.
    pub fn take_profile(&mut self) -> Option<Box<VmProfile>> {
        self.profile.take()
    }
}

/// The bytecode execution engine.
///
/// A `Vm` borrows its (immutable, shareable) [`CompiledProgram`] and
/// [`BuiltinRegistry`]; all mutable state — heap, budget, frames — is
/// per-execution, so constructing a fresh `Vm` per unit test is cheap
/// and worker threads can share one compiled program behind an `Arc`.
/// Callers that execute many tests back to back should recycle the
/// mutable state through a [`VmScratch`].
#[derive(Debug)]
pub struct Vm<'p> {
    compiled: &'p CompiledProgram,
    heap: Heap,
    budget: StepBudget,
    stack: FrameStack,
    /// Scratch for marshalling call arguments, reused across calls.
    args: Vec<Value>,
    /// Pre-resolved builtin per method (see [`VmScratch`]): native
    /// dispatch indexes this table instead of hashing the method name.
    natives: Vec<Option<crate::builtins::BuiltinFn>>,
    natives_key: Option<(u64, u64)>,
    /// Per-site inline caches (see [`VmScratch::field_cache`]).
    field_cache: Vec<FieldCache>,
    field_cache_key: Option<u64>,
    /// Dynamic opcode counts, when profiling is enabled.
    profile: Option<Box<VmProfile>>,
}

impl<'p> Vm<'p> {
    /// Creates a VM over a compiled program with the given builtins and
    /// limits.
    pub fn new(
        compiled: &'p CompiledProgram,
        builtins: &'p BuiltinRegistry,
        limits: ExecLimits,
    ) -> Vm<'p> {
        Vm::with_scratch(compiled, builtins, limits, VmScratch::default())
    }

    /// Creates a VM that reuses the buffers of a previous execution (see
    /// [`VmScratch`]).  The scratch state is cleared; only its capacity
    /// carries over.
    pub fn with_scratch(
        compiled: &'p CompiledProgram,
        builtins: &'p BuiltinRegistry,
        limits: ExecLimits,
        mut scratch: VmScratch,
    ) -> Vm<'p> {
        scratch.heap.clear();
        scratch.stack.clear();
        scratch.args.clear();
        let key = (compiled.id(), builtins.version());
        if scratch.natives_key != Some(key) {
            scratch.natives.clear();
            scratch.natives.extend(
                compiled
                    .methods()
                    .map(|m| m.native().and_then(|n| builtins.lookup(n))),
            );
            scratch.natives_key = Some(key);
        }
        // The inline-cache table is likewise keyed on the program and
        // *kept* while the key matches: entries verify on use, so reuse
        // is safe and keeps the caches warm across executions.
        if scratch.field_cache_key != Some(compiled.id()) {
            scratch.field_cache.clear();
            scratch
                .field_cache
                .resize(compiled.num_field_sites() as usize, FieldCache::EMPTY);
            scratch.field_cache_key = Some(compiled.id());
        }
        Vm {
            compiled,
            heap: scratch.heap,
            budget: StepBudget::new(limits),
            stack: scratch.stack,
            args: scratch.args,
            natives: scratch.natives,
            natives_key: scratch.natives_key,
            field_cache: scratch.field_cache,
            field_cache_key: scratch.field_cache_key,
            profile: scratch.profile,
        }
    }

    /// Clears the mutable state for a fresh execution — same program and
    /// builtins, new budget — keeping every buffer's capacity.  The
    /// cheapest way to run many unit tests back to back: where
    /// [`Vm::with_scratch`] moves the buffers through a [`VmScratch`] per
    /// execution, `reset` reuses them in place.
    pub fn reset(&mut self, limits: ExecLimits) {
        self.heap.clear();
        self.stack.clear();
        self.args.clear();
        self.budget = StepBudget::new(limits);
    }

    /// Consumes the VM and returns its buffers for reuse by the next one.
    pub fn into_scratch(self) -> VmScratch {
        VmScratch {
            heap: self.heap,
            stack: self.stack,
            args: self.args,
            natives: self.natives,
            natives_key: self.natives_key,
            field_cache: self.field_cache,
            field_cache_key: self.field_cache_key,
            profile: self.profile,
        }
    }

    /// Access to the heap (after execution), e.g. for inspecting effects.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// The accumulated opcode profile, if profiling is enabled (see
    /// [`VmScratch::enable_profile`]).
    pub fn profile(&self) -> Option<&VmProfile> {
        self.profile.as_deref()
    }

    /// The allocated capacities of every reusable buffer — `(heap
    /// arenas, (regs, frames), call-arg buffer)`.  The zero-allocation
    /// audit snapshots this between rounds: once the buffers reach their
    /// high-water mark, back-to-back rounds must not move any of these.
    pub fn arena_capacities(&self) -> ((usize, usize, usize), (usize, usize), usize) {
        (
            self.heap.capacities(),
            self.stack.capacities(),
            self.args.capacity(),
        )
    }

    /// Allocates a raw object of the given class on the heap without
    /// running a constructor (used by synthesized unit tests).
    pub fn alloc_object(&mut self, class: ClassId) -> ObjRef {
        self.heap.alloc(class)
    }

    /// Number of statements executed so far.
    pub fn steps(&self) -> usize {
        self.budget.steps()
    }

    /// Executes a static entry method with no arguments and returns its
    /// outcome.  Never panics on program errors; all failures are
    /// reported as [`ExecOutcome::Failed`].
    pub fn run_entry(&mut self, method: MethodId) -> ExecOutcome {
        match self.call_method(method, None, &[]) {
            Ok(v) => ExecOutcome::Returned(v),
            Err(e) => ExecOutcome::Failed(e),
        }
    }

    /// Executes a method call with the given receiver and arguments.
    pub fn call_method(
        &mut self,
        method: MethodId,
        recv: Option<Value>,
        args: &[Value],
    ) -> Result<Value, ExecError> {
        debug_assert_eq!(self.stack.depth(), 0, "external call on an active VM");
        let result = match self.invoke(method, recv, args, 0, None) {
            Ok(Invoked::Value(v)) => Ok(v),
            Ok(Invoked::Frame(base, code)) => self.run_loop(base, code, None),
            Err(e) => Err(e),
        };
        if result.is_err() {
            // Unwind like the tree-walker: every live frame's depth charge
            // is released; steps already charged stay charged.
            while self.stack.depth() > 0 {
                self.stack.pop();
                self.budget.pop_frame();
            }
        }
        result
    }

    /// Executes a compiled witness to its verdict.
    ///
    /// The witness runs in a synthetic base frame that mirrors the
    /// tree-level harness exactly: the frame charges no call depth and
    /// the witness instructions charge no steps, so only the called
    /// method bodies tick — verdict, step count, and error identity with
    /// `atlas_synth`-level `execute_with` hold by construction.
    /// Between rounds, [`Vm::reset`] restores a fresh budget while
    /// keeping every buffer (and the warm inline caches) in place.
    pub fn run_witness(&mut self, witness: &CompiledWitness) -> Result<bool, ExecError> {
        debug_assert_eq!(self.stack.depth(), 0, "witness run on an active VM");
        debug_assert!(
            self.field_cache.len() >= self.compiled.num_field_sites() as usize,
            "inline-cache table sized for a different program"
        );
        // No budget.push_frame: the harness level is depth 0.
        self.stack.push_with_args(
            witness_frame_method(),
            witness.num_regs,
            0,
            None,
            None,
            &[],
            0,
        );
        match self.run_loop(0, &witness.code, Some(&witness.code)) {
            Ok(v) => {
                debug_assert_eq!(self.stack.depth(), 1, "witness left frames behind");
                self.stack.pop();
                Ok(v.as_bool().expect("witness verdict is boolean"))
            }
            Err(e) => {
                // Unwind method frames with their depth charges, then the
                // synthetic witness frame without one.
                while self.stack.depth() > 1 {
                    self.stack.pop();
                    self.budget.pop_frame();
                }
                self.stack.pop();
                Err(e)
            }
        }
    }

    /// Dispatches an external call (entry points and the [`Executor`]
    /// bridge): depth check, native dispatch, receiver checks, then frame
    /// setup — in exactly the tree-walker's order, so every error path
    /// reports the same [`ExecError`].
    #[inline]
    fn invoke(
        &mut self,
        method: MethodId,
        recv: Option<Value>,
        args: &[Value],
        ret_ip: usize,
        dst: Option<Reg>,
    ) -> Result<Invoked<'p>, ExecError> {
        self.budget.check_depth()?;
        let compiled = self.compiled;
        let cm = compiled.method(method);
        if let Some(name) = cm.native() {
            let builtin = self.natives[method.index() as usize]
                .ok_or_else(|| ExecError::MissingBuiltin(name.to_string()))?;
            return builtin(&mut self.heap, recv, args).map(Invoked::Value);
        }
        let recv_val = if cm.has_this {
            let v = recv.ok_or_else(|| ExecError::TypeError("missing receiver".into()))?;
            if v.is_null() {
                return Err(ExecError::NullPointer);
            }
            Some(v)
        } else {
            None
        };
        self.budget.push_frame();
        let base = self.stack.push_with_args(
            method,
            cm.num_regs,
            ret_ip,
            dst,
            recv_val,
            args,
            cm.num_params,
        );
        Ok(Invoked::Frame(base, cm.code()))
    }

    /// Dispatches an in-loop call site: the same check order as
    /// [`Vm::invoke`] — depth, native dispatch, receiver checks, frame
    /// setup — but arguments of non-native callees are copied straight
    /// from the caller's register window into the callee's, skipping the
    /// marshalling buffer (one clone per value instead of two).  The
    /// buffer detour survives only for natives, whose ABI takes a value
    /// slice.  Argument reads are pure, so moving them after the depth
    /// check cannot reorder any observable effect.
    ///
    /// Callees classified as a [`FastBody`] execute inline without a
    /// frame push (the dominant javalib callee is one instruction plus a
    /// return); the budget still sees the same depth charge and the same
    /// ticks in the same order.  Profiled runs take the frame path so the
    /// per-opcode histogram counts every body instruction.
    #[inline]
    fn invoke_site<const PROFILE: bool>(
        &mut self,
        site: &crate::compile::CallSite,
        base: usize,
        ret_ip: usize,
    ) -> Result<Invoked<'p>, ExecError> {
        self.budget.check_depth()?;
        let compiled = self.compiled;
        let cm = compiled.method(site.method);
        if let Some(name) = cm.native() {
            let builtin = self.natives[site.method.index() as usize]
                .ok_or_else(|| ExecError::MissingBuiltin(name.to_string()))?;
            let recv = site.recv.map(|r| self.rd(base, r));
            let mut args = std::mem::take(&mut self.args);
            args.clear();
            args.extend(site.args.iter().map(|&a| self.rd(base, a)));
            let out = builtin(&mut self.heap, recv, &args);
            self.args = args;
            return out.map(Invoked::Value);
        }
        let recv = if cm.has_this {
            let r = site
                .recv
                .ok_or_else(|| ExecError::TypeError("missing receiver".into()))?;
            if self.stack.regs[base + r as usize].is_null() {
                return Err(ExecError::NullPointer);
            }
            Some(r)
        } else {
            None
        };
        if !PROFILE {
            if let Some(fast) = cm.fast() {
                self.budget.push_frame();
                let out = self.fast_body(fast, site, base, recv);
                self.budget.pop_frame();
                return out.map(Invoked::Value);
            }
        }
        self.budget.push_frame();
        let callee_base = self.stack.push_from_regs(
            site.method,
            cm.num_regs,
            ret_ip,
            site.dst,
            base,
            recv,
            &site.args,
            cm.num_params,
        );
        Ok(Invoked::Frame(callee_base, cm.code()))
    }

    /// The dispatch loop: executes the frame at `(base, code)` — and
    /// every frame it pushes — to completion.  In witness mode
    /// (`witness` is the lowered witness slice), the bottom frame's code
    /// is the witness itself and a [`Instr::WVerdict`] terminates the
    /// run.
    fn run_loop<'w>(
        &mut self,
        base: usize,
        code: &'w [Instr],
        witness: Option<&'w [Instr]>,
    ) -> Result<Value, ExecError>
    where
        'p: 'w,
    {
        // Monomorphize the loop on the profiling flag: the common
        // unprofiled path carries no per-instruction recording code at
        // all, not even the predictable branch.
        if self.profile.is_some() {
            self.run_loop_impl::<true>(base, code, witness)
        } else {
            self.run_loop_impl::<false>(base, code, witness)
        }
    }

    fn run_loop_impl<'w, const PROFILE: bool>(
        &mut self,
        base: usize,
        code: &'w [Instr],
        witness: Option<&'w [Instr]>,
    ) -> Result<Value, ExecError>
    where
        'p: 'w,
    {
        let mut base = base;
        let mut code = code;
        let mut ip = 0usize;
        loop {
            if PROFILE {
                if let Some(p) = self.profile.as_deref_mut() {
                    p.record(code[ip].kind());
                }
            }
            match &code[ip] {
                Instr::Move { dst, src } => {
                    self.tick()?;
                    let v = self.rd(base, *src);
                    self.wr(base, *dst, v);
                }
                Instr::Const { dst, value } => {
                    self.tick()?;
                    self.wr(base, *dst, const_value(value));
                }
                Instr::NewObj { dst, class } => {
                    self.tick()?;
                    let r = self.heap.alloc(*class);
                    self.wr(base, *dst, Value::Ref(r));
                }
                Instr::NewArr { dst, len } => {
                    self.tick()?;
                    let len = self
                        .rr(base, *len)
                        .as_int()
                        .ok_or_else(|| ExecError::TypeError("array length must be int".into()))?;
                    if len < 0 {
                        return Err(ExecError::IndexOutOfBounds);
                    }
                    let r = self.heap.alloc_array(len as usize);
                    self.wr(base, *dst, Value::Ref(r));
                }
                Instr::Load {
                    dst,
                    obj,
                    field,
                    ic,
                } => {
                    self.tick()?;
                    let r = self.rr(base, *obj).as_ref().ok_or(ExecError::NullPointer)?;
                    let (v, hit) =
                        self.heap
                            .read_field_cached(r, *field, &mut self.field_cache[*ic as usize]);
                    if PROFILE {
                        if let Some(p) = self.profile.as_deref_mut() {
                            p.record_ic(hit);
                        }
                    }
                    self.wr(base, *dst, v);
                }
                Instr::Store {
                    obj,
                    field,
                    src,
                    ic,
                } => {
                    self.tick()?;
                    let r = self.rr(base, *obj).as_ref().ok_or(ExecError::NullPointer)?;
                    let v = self.rd(base, *src);
                    let hit = self.heap.write_field_cached(
                        r,
                        *field,
                        v,
                        &mut self.field_cache[*ic as usize],
                    );
                    if PROFILE {
                        if let Some(p) = self.profile.as_deref_mut() {
                            p.record_ic(hit);
                        }
                    }
                }
                Instr::ArrLoad { dst, arr, index } => {
                    self.tick()?;
                    let r = self.rr(base, *arr).as_ref().ok_or(ExecError::NullPointer)?;
                    let i = self
                        .rr(base, *index)
                        .as_int()
                        .ok_or_else(|| ExecError::TypeError("array index must be int".into()))?;
                    let v = self
                        .heap
                        .read_element(r, i)
                        .ok_or(ExecError::IndexOutOfBounds)?;
                    self.wr(base, *dst, v);
                }
                Instr::ArrStore { arr, index, src } => {
                    self.tick()?;
                    let r = self.rr(base, *arr).as_ref().ok_or(ExecError::NullPointer)?;
                    let i = self
                        .rr(base, *index)
                        .as_int()
                        .ok_or_else(|| ExecError::TypeError("array index must be int".into()))?;
                    let v = self.rd(base, *src);
                    if !self.heap.write_element(r, i, v) {
                        return Err(ExecError::IndexOutOfBounds);
                    }
                }
                Instr::ArrLen { dst, arr } => {
                    self.tick()?;
                    let r = self.rr(base, *arr).as_ref().ok_or(ExecError::NullPointer)?;
                    let len = self
                        .heap
                        .array_len(r)
                        .ok_or_else(|| ExecError::TypeError("length of non-array".into()))?;
                    self.wr(base, *dst, Value::Int(len as i64));
                }
                Instr::Bin { dst, op, a, b } => {
                    self.tick()?;
                    let v = eval_bin(*op, self.rr(base, *a), self.rr(base, *b))?;
                    self.wr(base, *dst, v);
                }
                Instr::RefEq { dst, a, b } => {
                    self.tick()?;
                    let eq = self.rr(base, *a).ref_eq(self.rr(base, *b));
                    self.wr(base, *dst, Value::Bool(eq));
                }
                Instr::IsNull { dst, a } => {
                    self.tick()?;
                    let is_null = self.rr(base, *a).is_null();
                    self.wr(base, *dst, Value::Bool(is_null));
                }
                Instr::Not { dst, a } => {
                    self.tick()?;
                    let v = self
                        .rr(base, *a)
                        .as_bool()
                        .ok_or_else(|| ExecError::TypeError("! of non-boolean".into()))?;
                    self.wr(base, *dst, Value::Bool(!v));
                }
                Instr::Call(site) => {
                    self.tick()?;
                    match self.invoke_site::<PROFILE>(site, base, ip + 1)? {
                        Invoked::Value(v) => {
                            if let Some(d) = site.dst {
                                self.wr(base, d, v);
                            }
                            ip += 1;
                        }
                        Invoked::Frame(b, c) => {
                            (base, code, ip) = (b, c, 0);
                        }
                    }
                    continue;
                }
                Instr::Branch { cond, else_target } => {
                    self.tick()?;
                    let c = self.rr(base, *cond).as_bool().ok_or_else(|| {
                        ExecError::TypeError("if condition must be boolean".into())
                    })?;
                    ip = if c { ip + 1 } else { *else_target as usize };
                    continue;
                }
                Instr::Jump { target } => {
                    ip = *target as usize;
                    continue;
                }
                Instr::LoopEnter => {
                    self.tick()?;
                }
                Instr::LoopCond { cond, exit_target } => {
                    let c = self.rr(base, *cond).as_bool().ok_or_else(|| {
                        ExecError::TypeError("while condition must be boolean".into())
                    })?;
                    ip = if c { ip + 1 } else { *exit_target as usize };
                    continue;
                }
                Instr::LoopJump { target } => {
                    self.tick()?;
                    ip = *target as usize;
                    continue;
                }
                Instr::Ret { src } => {
                    self.tick()?;
                    let v = self.rd(base, *src);
                    match self.ret(v, witness) {
                        Ok((b, c, i)) => (base, code, ip) = (b, c, i),
                        Err(v) => return Ok(v),
                    }
                    continue;
                }
                Instr::RetVoid => {
                    self.tick()?;
                    match self.ret(Value::Void, witness) {
                        Ok((b, c, i)) => (base, code, ip) = (b, c, i),
                        Err(v) => return Ok(v),
                    }
                    continue;
                }
                Instr::RetFall => {
                    match self.ret(Value::Void, witness) {
                        Ok((b, c, i)) => (base, code, ip) = (b, c, i),
                        Err(v) => return Ok(v),
                    }
                    continue;
                }
                Instr::Throw { message } => {
                    self.tick()?;
                    return Err(ExecError::Thrown(message.clone()));
                }
                Instr::LoadBranch {
                    dst,
                    obj,
                    field,
                    ic,
                    else_target,
                } => {
                    // Fused Load + Branch: both ticks, in the original
                    // order, with the dst write between them — the budget
                    // can exhaust at exactly the same two points.
                    self.tick()?;
                    let r = self.rr(base, *obj).as_ref().ok_or(ExecError::NullPointer)?;
                    let (v, hit) =
                        self.heap
                            .read_field_cached(r, *field, &mut self.field_cache[*ic as usize]);
                    if PROFILE {
                        if let Some(p) = self.profile.as_deref_mut() {
                            p.record_ic(hit);
                        }
                    }
                    let cond = v.as_bool();
                    self.wr(base, *dst, v);
                    self.tick()?;
                    let c = cond.ok_or_else(|| {
                        ExecError::TypeError("if condition must be boolean".into())
                    })?;
                    // The retained Branch sits at ip + 1; the true path
                    // falls through past it.
                    ip = if c { ip + 2 } else { *else_target as usize };
                    continue;
                }
                Instr::CallRetFall(site) => {
                    self.tick()?;
                    match self.invoke_site::<PROFILE>(site, base, ip + 1)? {
                        Invoked::Value(v) => {
                            if let Some(d) = site.dst {
                                self.wr(base, d, v);
                            }
                            // The fall-off return, without re-dispatching
                            // the retained RetFall.
                            match self.ret(Value::Void, witness) {
                                Ok((b, c, i)) => (base, code, ip) = (b, c, i),
                                Err(v) => return Ok(v),
                            }
                        }
                        Invoked::Frame(b, c) => {
                            // The callee returns to the retained RetFall
                            // at ip + 1, which unwinds as before.
                            (base, code, ip) = (b, c, 0);
                        }
                    }
                    continue;
                }
                Instr::ConstStore {
                    dst,
                    value,
                    obj,
                    field,
                    ic,
                } => {
                    // Fused Const + Store: dst is still written (later
                    // code may read it) before the second tick.
                    self.tick()?;
                    self.wr(base, *dst, const_value(value));
                    self.tick()?;
                    let r = self.rr(base, *obj).as_ref().ok_or(ExecError::NullPointer)?;
                    let v = self.rd(base, *dst);
                    let hit = self.heap.write_field_cached(
                        r,
                        *field,
                        v,
                        &mut self.field_cache[*ic as usize],
                    );
                    if PROFILE {
                        if let Some(p) = self.profile.as_deref_mut() {
                            p.record_ic(hit);
                        }
                    }
                    // Skip the retained Store at ip + 1.
                    ip += 2;
                    continue;
                }
                Instr::WConst { dst, value } => {
                    self.wr(base, *dst, const_value(value));
                }
                Instr::WAlloc { dst, class } => {
                    let r = self.heap.alloc(*class);
                    self.wr(base, *dst, Value::Ref(r));
                }
                Instr::WCall(site) => {
                    // A top-level witness call: no tick for the call
                    // itself, exactly like the external harness.
                    match self.invoke_site::<PROFILE>(site, base, ip + 1)? {
                        Invoked::Value(v) => {
                            if let Some(d) = site.dst {
                                self.wr(base, d, v);
                            }
                            ip += 1;
                        }
                        Invoked::Frame(b, c) => {
                            (base, code, ip) = (b, c, 0);
                        }
                    }
                    continue;
                }
                Instr::WVerdict { a, b } => {
                    let av = self.rr(base, *a);
                    let bv = self.rr(base, *b);
                    return Ok(Value::Bool(!av.is_null() && av.ref_eq(bv)));
                }
            }
            ip += 1;
        }
    }

    /// Returns `v` from the top frame.  `Ok((base, code, ip))` resumes
    /// the caller; `Err(v)` means the outermost frame returned `v` and
    /// the dispatch loop is done.  In witness mode, resuming the bottom
    /// frame resolves to the witness slice instead of a compiled method.
    #[allow(clippy::type_complexity)]
    #[inline]
    fn ret<'w>(
        &mut self,
        v: Value,
        witness: Option<&'w [Instr]>,
    ) -> Result<(usize, &'w [Instr], usize), Value>
    where
        'p: 'w,
    {
        let compiled = self.compiled;
        let popped = self.stack.pop();
        self.budget.pop_frame();
        if let Some(top) = self.stack.frames.last() {
            let base = top.base;
            let code = match witness {
                Some(w) if self.stack.frames.len() == 1 => w,
                _ => compiled.method(top.method).code(),
            };
            if let Some(d) = popped.dst {
                self.wr(base, d, v);
            }
            Ok((base, code, popped.ret_ip))
        } else {
            Err(v)
        }
    }

    /// Executes a [`FastBody`] against the caller's frame.  Each arm
    /// replays its instruction sequence's exact tick/check order, so the
    /// step count and every error path are identical to dispatching the
    /// body instruction by instruction in a pushed frame.
    #[inline]
    fn fast_body(
        &mut self,
        fast: &FastBody,
        site: &crate::compile::CallSite,
        base: usize,
        recv: Option<Reg>,
    ) -> Result<Value, ExecError> {
        match fast {
            FastBody::RetArg(src) => {
                self.tick()?; // Ret
                Ok(self.fast_read(site, base, recv, *src).clone())
            }
            FastBody::RetConst(c) => {
                self.tick()?; // Const
                self.tick()?; // Ret
                Ok(const_value(c))
            }
            FastBody::Getter { obj, field, ic } => {
                self.tick()?; // Load
                let r = self
                    .fast_read(site, base, recv, *obj)
                    .as_ref()
                    .ok_or(ExecError::NullPointer)?;
                let (v, _) =
                    self.heap
                        .read_field_cached(r, *field, &mut self.field_cache[*ic as usize]);
                self.tick()?; // Ret
                Ok(v)
            }
            FastBody::Setter {
                obj,
                field,
                src,
                ic,
            } => {
                self.tick()?; // Store
                let r = self
                    .fast_read(site, base, recv, *obj)
                    .as_ref()
                    .ok_or(ExecError::NullPointer)?;
                let v = self.fast_read(site, base, recv, *src).clone();
                self.heap
                    .write_field_cached(r, *field, v, &mut self.field_cache[*ic as usize]);
                Ok(Value::Void) // fall-off return: no tick
            }
            FastBody::RefEq { a, b } => {
                self.tick()?; // RefEq
                let eq = self
                    .fast_read(site, base, recv, *a)
                    .ref_eq(self.fast_read(site, base, recv, *b));
                self.tick()?; // Ret
                Ok(Value::Bool(eq))
            }
            FastBody::NewObjRet(class) => {
                self.tick()?; // NewObj
                let r = self.heap.alloc(*class);
                self.tick()?; // Ret — sees the grown heap, like slow dispatch
                Ok(Value::Ref(r))
            }
            FastBody::ConstBinRet { value, op, a, b } => {
                self.tick()?; // Const
                self.tick()?; // Bin
                let cv = const_value(value);
                let av = match a {
                    FastBinOperand::Lit => &cv,
                    FastBinOperand::Arg(x) => self.fast_read(site, base, recv, *x),
                };
                let bv = match b {
                    FastBinOperand::Lit => &cv,
                    FastBinOperand::Arg(x) => self.fast_read(site, base, recv, *x),
                };
                let v = eval_bin(*op, av, bv)?;
                self.tick()?; // Ret
                Ok(v)
            }
        }
    }

    /// Resolves a [`FastArg`] against the call site: `This` and `Param`
    /// read the caller's registers (exactly the values a pushed frame
    /// would have copied in), `Null` is what a fresh frame holds in
    /// every other slot.
    #[inline]
    fn fast_read(
        &self,
        site: &crate::compile::CallSite,
        base: usize,
        recv: Option<Reg>,
        arg: FastArg,
    ) -> &Value {
        static NULL: Value = Value::Null;
        match arg {
            FastArg::This => {
                let r = recv.expect("fast body reads `this` of a receiverless callee");
                self.rr(base, r)
            }
            FastArg::Param(p) => match site.args.get(p as usize) {
                Some(&r) => self.rr(base, r),
                None => &NULL,
            },
            FastArg::Null => &NULL,
        }
    }

    #[inline]
    fn tick(&mut self) -> Result<(), ExecError> {
        self.budget.tick(self.heap.len())
    }

    #[inline]
    fn rd(&self, base: usize, r: Reg) -> Value {
        self.stack.regs[base + r as usize].clone()
    }

    /// Reads a register in place — the dispatch arms that only inspect a
    /// value (`as_int`, `as_bool`, `as_ref`, equality) borrow it instead
    /// of cloning 24 bytes per operand.
    #[inline]
    fn rr(&self, base: usize, r: Reg) -> &Value {
        &self.stack.regs[base + r as usize]
    }

    #[inline]
    fn wr(&mut self, base: usize, r: Reg, v: Value) {
        self.stack.regs[base + r as usize] = v;
    }
}

impl Executor for Vm<'_> {
    fn alloc_object(&mut self, class: ClassId) -> ObjRef {
        Vm::alloc_object(self, class)
    }

    fn call_method(
        &mut self,
        method: MethodId,
        recv: Option<Value>,
        args: &[Value],
    ) -> Result<Value, ExecError> {
        Vm::call_method(self, method, recv, args)
    }

    fn steps(&self) -> usize {
        Vm::steps(self)
    }
}

/// Materializes a constant operand as a runtime value.
fn const_value(c: &Constant) -> Value {
    match c {
        Constant::Null => Value::Null,
        Constant::Int(i) => Value::Int(*i),
        Constant::Bool(b) => Value::Bool(*b),
        Constant::Char(ch) => Value::Char(*ch),
        Constant::Str(s) => Value::Str(s.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Interpreter;
    use atlas_ir::builder::ProgramBuilder;
    use atlas_ir::{BinOp, Program, Type};

    /// Box library + a client test exercising calls, loops, arrays.
    fn box_program() -> Program {
        let mut pb = ProgramBuilder::new();
        pb.class("Object").build();
        let mut c = pb.class("Box");
        c.library(true);
        c.field("f", Type::object());
        let mut set = c.method("set");
        let this = set.this();
        let ob = set.param("ob", Type::object());
        set.store(this, "f", ob);
        set.finish();
        let mut get = c.method("get");
        get.returns(Type::object());
        let this = get.this();
        let r = get.local("r", Type::object());
        get.load(r, this, "f");
        get.ret(Some(r));
        get.finish();
        c.build();
        let mut main = pb.class("Main");
        let mut t = main.static_method("test");
        t.returns(Type::Bool);
        let in_v = t.local("in", Type::object());
        let box_v = t.local("box", Type::class("Box"));
        let out_v = t.local("out", Type::object());
        let eq = t.local("eq", Type::Bool);
        let obj = t.cref("Object");
        let boxc = t.cref("Box");
        t.new_object(in_v, obj);
        t.new_object(box_v, boxc);
        let set = t.mref("Box", "set");
        let get = t.mref("Box", "get");
        t.call(None, set, Some(box_v), &[in_v]);
        t.call(Some(out_v), get, Some(box_v), &[]);
        t.ref_eq(eq, in_v, out_v);
        t.ret(Some(eq));
        t.finish();
        // A looping method: sums 0..n via a while loop.
        let mut s = main.static_method("sum");
        s.returns(Type::Int);
        let i = s.local("i", Type::Int);
        let n = s.local("n", Type::Int);
        let acc = s.local("acc", Type::Int);
        let cond = s.local("cond", Type::Bool);
        let one = s.local("one", Type::Int);
        s.const_int(i, 0);
        s.const_int(n, 5);
        s.const_int(acc, 0);
        s.const_int(one, 1);
        s.while_stmt(
            |m| {
                m.bin(cond, BinOp::Lt, i, n);
                cond
            },
            |m| {
                m.bin(acc, BinOp::Add, acc, i);
                m.bin(i, BinOp::Add, i, one);
            },
        );
        s.ret(Some(acc));
        s.finish();
        main.build();
        pb.build()
    }

    fn both_engines(p: &Program, name: &str) -> (ExecOutcome, usize, ExecOutcome, usize) {
        let m = p.method_qualified(name).unwrap();
        let mut tree = Interpreter::new(p);
        let t_out = tree.run_entry(m);
        let compiled = CompiledProgram::compile(p);
        let builtins = BuiltinRegistry::with_defaults();
        let mut vm = Vm::new(&compiled, &builtins, ExecLimits::default());
        let v_out = vm.run_entry(m);
        (t_out, tree.steps(), v_out, vm.steps())
    }

    #[test]
    fn box_round_trip_matches_tree_walker() {
        let p = box_program();
        let (t_out, t_steps, v_out, v_steps) = both_engines(&p, "Main.test");
        assert!(v_out.is_true(), "{v_out:?}");
        assert_eq!(t_out, v_out);
        assert_eq!(t_steps, v_steps);
    }

    #[test]
    fn loop_steps_match_tree_walker() {
        let p = box_program();
        let (t_out, t_steps, v_out, v_steps) = both_engines(&p, "Main.sum");
        assert_eq!(t_out, ExecOutcome::Returned(Value::Int(10)));
        assert_eq!(t_out, v_out);
        assert_eq!(t_steps, v_steps);
    }

    #[test]
    fn infinite_loop_hits_step_limit_at_same_statement() {
        let mut pb = ProgramBuilder::new();
        pb.class("Object").build();
        let mut main = pb.class("Main");
        let mut t = main.static_method("spin");
        let c = t.local("c", Type::Bool);
        t.const_bool(c, true);
        t.while_stmt(|_| c, |_| {});
        t.finish();
        main.build();
        let p = pb.build();
        let spin = p.method_qualified("Main.spin").unwrap();
        let limits = ExecLimits {
            max_steps: 100,
            max_call_depth: 8,
            max_heap_objects: 10,
        };
        let mut tree = Interpreter::with_config(&p, BuiltinRegistry::with_defaults(), limits);
        let t_out = tree.run_entry(spin);
        let compiled = CompiledProgram::compile(&p);
        let builtins = BuiltinRegistry::with_defaults();
        let mut vm = Vm::new(&compiled, &builtins, limits);
        let v_out = vm.run_entry(spin);
        assert_eq!(
            t_out,
            ExecOutcome::Failed(ExecError::LimitExceeded("steps"))
        );
        assert_eq!(t_out, v_out);
        // The shared StepBudget exhausts at the same statement.
        assert_eq!(tree.steps(), vm.steps());
        // After unwinding, the VM is reusable state-wise (frames drained).
        assert_eq!(vm.stack.depth(), 0);
    }

    #[test]
    fn null_receiver_and_missing_builtin_errors_match() {
        let mut pb = ProgramBuilder::new();
        pb.class("Object").build();
        let mut c = pb.class("Box");
        c.library(true);
        let mut get = c.method("get");
        get.returns(Type::object());
        get.this();
        get.finish();
        c.build();
        let mut nat = pb.class("Nat");
        nat.library(true);
        let mut f = nat.static_method("mystery");
        f.native(true);
        f.finish();
        nat.build();
        let p = pb.build();
        let get = p.method_qualified("Box.get").unwrap();
        let mystery = p.method_qualified("Nat.mystery").unwrap();
        let compiled = CompiledProgram::compile(&p);
        let builtins = BuiltinRegistry::with_defaults();
        let mut vm = Vm::new(&compiled, &builtins, ExecLimits::default());
        assert_eq!(
            vm.call_method(get, Some(Value::Null), &[]),
            Err(ExecError::NullPointer)
        );
        assert_eq!(
            vm.call_method(get, None, &[]),
            Err(ExecError::TypeError("missing receiver".into()))
        );
        assert_eq!(
            vm.call_method(mystery, None, &[]),
            Err(ExecError::MissingBuiltin("Nat.mystery".into()))
        );
        // All three match the tree-walker verbatim.
        let mut tree = Interpreter::new(&p);
        assert_eq!(
            tree.call_method(get, Some(Value::Null), &[]),
            Err(ExecError::NullPointer)
        );
        assert_eq!(
            tree.call_method(get, None, &[]),
            Err(ExecError::TypeError("missing receiver".into()))
        );
        assert_eq!(
            tree.call_method(mystery, None, &[]),
            Err(ExecError::MissingBuiltin("Nat.mystery".into()))
        );
    }

    #[test]
    fn executor_trait_drives_both_engines() {
        let p = box_program();
        let test = p.method_qualified("Main.test").unwrap();
        fn run(e: &mut dyn Executor, m: atlas_ir::MethodId) -> (Result<Value, ExecError>, usize) {
            let r = e.call_method(m, None, &[]);
            (r, e.steps())
        }
        let mut tree = Interpreter::new(&p);
        let compiled = CompiledProgram::compile(&p);
        let builtins = BuiltinRegistry::with_defaults();
        let mut vm = Vm::new(&compiled, &builtins, ExecLimits::default());
        let (tr, ts) = run(&mut tree, test);
        let (vr, vs) = run(&mut vm, test);
        assert_eq!(tr, vr);
        assert_eq!(ts, vs);
        // Raw allocation through the trait works on both engines.
        let class = p.class_named("Object").unwrap();
        let a = Executor::alloc_object(&mut tree, class);
        let b = Executor::alloc_object(&mut vm, class);
        assert_eq!(a.0, b.0);
        assert!(!vm.heap().is_empty());
    }
}
