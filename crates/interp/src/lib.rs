//! # atlas-interp
//!
//! A concrete interpreter for the mini-Java IR of [`atlas_ir`].
//!
//! Atlas only requires *blackbox access* to the library: the ability to
//! execute sequences of library functions on chosen inputs and observe the
//! outputs (Section 5.1 of the paper).  This crate provides that blackbox:
//! it executes synthesized unit tests (and any other IR program) against the
//! modeled library implementation, with a real heap, real arrays, and
//! builtin implementations of "native" methods such as `System.arraycopy`.
//!
//! Execution is bounded by a configurable step budget so that the oracle
//! never diverges on an ill-formed candidate.

pub mod builtins;
pub mod eval;
pub mod heap;
pub mod limits;
pub mod value;

pub use builtins::BuiltinRegistry;
pub use eval::{ExecError, ExecOutcome, Interpreter};
pub use heap::{Heap, HeapObject, ObjRef};
pub use limits::ExecLimits;
pub use value::Value;
