//! # atlas-interp
//!
//! A concrete interpreter for the mini-Java IR of [`atlas_ir`].
//!
//! Atlas only requires *blackbox access* to the library: the ability to
//! execute sequences of library functions on chosen inputs and observe the
//! outputs (Section 5.1 of the paper).  This crate provides that blackbox:
//! it executes synthesized unit tests (and any other IR program) against the
//! modeled library implementation, with a real heap, real arrays, and
//! builtin implementations of "native" methods such as `System.arraycopy`.
//!
//! Two engines implement the same [`Executor`] semantics:
//!
//! * [`Interpreter`] — the tree-walking reference engine, which executes
//!   [`atlas_ir::Stmt`] bodies directly; and
//! * [`Vm`] — the oracle fast path, which executes flat bytecode produced
//!   by [`CompiledProgram::compile`] with register frames and an
//!   arena-backed heap.
//!
//! The engines are interchangeable bit for bit: same outcomes, same step
//! counts, same errors.  Both charge the shared [`StepBudget`], so an
//! execution is bounded by the same [`ExecLimits`] regardless of engine
//! and the oracle never diverges on an ill-formed candidate.

#![warn(missing_docs)]

pub mod builtins;
pub mod compile;
pub mod eval;
pub mod frame;
pub mod heap;
pub mod limits;
pub mod value;
pub mod vm;

pub use builtins::BuiltinRegistry;
pub use compile::{CompiledMethod, CompiledProgram, CompiledWitness, Instr, OpKind};
pub use eval::{ExecError, ExecOutcome, Executor, Interpreter};
pub use heap::{FieldCache, Heap, ObjRef};
pub use limits::{ExecLimits, StepBudget};
pub use value::Value;
pub use vm::{Vm, VmProfile, VmScratch};
