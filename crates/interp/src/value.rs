//! Runtime values.

use crate::heap::ObjRef;
use std::fmt;

/// A runtime value of the interpreter.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// The `null` reference.
    #[default]
    Null,
    /// A reference to a heap object (or array).
    Ref(ObjRef),
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A character.
    Char(char),
    /// An interned string value (content equality).
    Str(String),
    /// The absence of a value (result of a `void` call).
    Void,
}

impl Value {
    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer payload.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Char(c) => Some(*c as i64),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The heap reference payload.
    pub fn as_ref(&self) -> Option<ObjRef> {
        match self {
            Value::Ref(r) => Some(*r),
            _ => None,
        }
    }

    /// Reference identity (`==` on references in Java).  `null == null` is
    /// true; a reference never equals `null`; non-reference values compare by
    /// content.
    pub fn ref_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Ref(a), Value::Ref(b)) => a == b,
            (Value::Null, Value::Ref(_)) | (Value::Ref(_), Value::Null) => false,
            (a, b) => a == b,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Ref(r) => write!(f, "@{}", r.0),
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Char(c) => write!(f, "'{c}'"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Void => write!(f, "void"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Char('a').as_int(), Some(97));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(1).as_bool(), None);
        assert_eq!(Value::Ref(ObjRef(3)).as_ref(), Some(ObjRef(3)));
        assert_eq!(Value::Null.as_ref(), None);
    }

    #[test]
    fn reference_equality() {
        assert!(Value::Null.ref_eq(&Value::Null));
        assert!(Value::Ref(ObjRef(1)).ref_eq(&Value::Ref(ObjRef(1))));
        assert!(!Value::Ref(ObjRef(1)).ref_eq(&Value::Ref(ObjRef(2))));
        assert!(!Value::Ref(ObjRef(1)).ref_eq(&Value::Null));
        assert!(Value::Int(4).ref_eq(&Value::Int(4)));
        assert!(!Value::Int(4).ref_eq(&Value::Int(5)));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Ref(ObjRef(2)).to_string(), "@2");
        assert_eq!(Value::Str("x".into()).to_string(), "\"x\"");
        assert_eq!(Value::default(), Value::Null);
    }
}
