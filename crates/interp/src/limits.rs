//! Execution limits for the interpreter, and the shared [`StepBudget`]
//! that enforces them identically in every engine.

use crate::eval::ExecError;

/// Bounds on a single execution, protecting the oracle against divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecLimits {
    /// Maximum number of IR statements executed.
    pub max_steps: usize,
    /// Maximum call depth.
    pub max_call_depth: usize,
    /// Maximum number of heap objects allocated.
    pub max_heap_objects: usize,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits {
            max_steps: 200_000,
            max_call_depth: 256,
            max_heap_objects: 100_000,
        }
    }
}

impl ExecLimits {
    /// Tight limits suitable for the oracle's very small unit tests.
    pub fn for_unit_tests() -> ExecLimits {
        ExecLimits {
            max_steps: 20_000,
            max_call_depth: 64,
            max_heap_objects: 10_000,
        }
    }
}

/// The step / depth / heap accountant shared by the tree-walking
/// interpreter and the bytecode VM.
///
/// Both engines route every statement through [`StepBudget::tick`] and
/// every call through [`StepBudget::check_depth`] /
/// [`StepBudget::push_frame`] / [`StepBudget::pop_frame`], so the two
/// engines cannot drift in their accounting: a budget exhausts at the same
/// statement (and reports the same [`ExecError::LimitExceeded`] kind)
/// regardless of which engine is executing.
#[derive(Debug, Clone)]
pub struct StepBudget {
    limits: ExecLimits,
    steps: usize,
    depth: usize,
}

impl StepBudget {
    /// Creates a fresh budget over the given limits.
    pub fn new(limits: ExecLimits) -> StepBudget {
        StepBudget {
            limits,
            steps: 0,
            depth: 0,
        }
    }

    /// The limits this budget enforces.
    pub fn limits(&self) -> ExecLimits {
        self.limits
    }

    /// Number of statements charged so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Current call depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Charges one statement and checks the step and heap ceilings, in
    /// that order (`heap_len` is the current number of allocated objects).
    pub fn tick(&mut self, heap_len: usize) -> Result<(), ExecError> {
        self.steps += 1;
        if self.steps > self.limits.max_steps {
            return Err(ExecError::LimitExceeded("steps"));
        }
        if heap_len > self.limits.max_heap_objects {
            return Err(ExecError::LimitExceeded("heap"));
        }
        Ok(())
    }

    /// Checks the call-depth ceiling *before* a call is entered (native
    /// dispatch included, matching the tree-walker's historical order).
    pub fn check_depth(&self) -> Result<(), ExecError> {
        if self.depth >= self.limits.max_call_depth {
            return Err(ExecError::LimitExceeded("call depth"));
        }
        Ok(())
    }

    /// Records entry into a non-native method body.
    pub fn push_frame(&mut self) {
        self.depth += 1;
    }

    /// Records exit from a non-native method body (normal or unwinding).
    pub fn pop_frame(&mut self) {
        self.depth -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        let d = ExecLimits::default();
        assert!(d.max_steps > 0 && d.max_call_depth > 0 && d.max_heap_objects > 0);
        let u = ExecLimits::for_unit_tests();
        assert!(u.max_steps < d.max_steps);
    }

    #[test]
    fn budget_exhausts_after_max_steps() {
        let mut b = StepBudget::new(ExecLimits {
            max_steps: 3,
            max_call_depth: 2,
            max_heap_objects: 1,
        });
        assert!(b.tick(0).is_ok());
        assert!(b.tick(0).is_ok());
        assert!(b.tick(0).is_ok());
        assert_eq!(b.tick(0), Err(ExecError::LimitExceeded("steps")));
        assert_eq!(b.steps(), 4);
    }

    #[test]
    fn heap_ceiling_is_checked_after_steps() {
        let mut b = StepBudget::new(ExecLimits {
            max_steps: 10,
            max_call_depth: 2,
            max_heap_objects: 1,
        });
        assert!(b.tick(1).is_ok());
        assert_eq!(b.tick(2), Err(ExecError::LimitExceeded("heap")));
    }

    #[test]
    fn depth_tracks_frames() {
        let mut b = StepBudget::new(ExecLimits {
            max_steps: 10,
            max_call_depth: 1,
            max_heap_objects: 10,
        });
        assert!(b.check_depth().is_ok());
        b.push_frame();
        assert_eq!(b.depth(), 1);
        assert_eq!(b.check_depth(), Err(ExecError::LimitExceeded("call depth")));
        b.pop_frame();
        assert!(b.check_depth().is_ok());
        assert_eq!(b.limits().max_call_depth, 1);
    }
}
