//! Execution limits for the interpreter.

/// Bounds on a single execution, protecting the oracle against divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecLimits {
    /// Maximum number of IR statements executed.
    pub max_steps: usize,
    /// Maximum call depth.
    pub max_call_depth: usize,
    /// Maximum number of heap objects allocated.
    pub max_heap_objects: usize,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits {
            max_steps: 200_000,
            max_call_depth: 256,
            max_heap_objects: 100_000,
        }
    }
}

impl ExecLimits {
    /// Tight limits suitable for the oracle's very small unit tests.
    pub fn for_unit_tests() -> ExecLimits {
        ExecLimits {
            max_steps: 20_000,
            max_call_depth: 64,
            max_heap_objects: 10_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        let d = ExecLimits::default();
        assert!(d.max_steps > 0 && d.max_call_depth > 0 && d.max_heap_objects > 0);
        let u = ExecLimits::for_unit_tests();
        assert!(u.max_steps < d.max_steps);
    }
}
