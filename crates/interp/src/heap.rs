//! The concrete heap, backed by a pair of arenas.
//!
//! Objects are never allocated individually: an [`ObjRef`] is an index into
//! a descriptor table, instance fields live as `(FieldId, Value)` pairs in
//! one shared `Vec`, and array elements live in another.  Allocating an
//! object is a descriptor push; the common case of a freshly allocated
//! object writing its fields grows the tail of the field arena in place.
//! A field block that must grow while buried under later allocations is
//! relocated to the arena tail and its old slots abandoned (arena garbage
//! is reclaimed wholesale when the heap is dropped, which for oracle unit
//! tests is after a handful of statements).
//!
//! Invariants:
//! * a descriptor's field block `[fstart, fstart+flen)` never overlaps
//!   another *live* field block, and element blocks never overlap at all;
//! * within a field block, each `FieldId` appears at most once;
//! * element blocks are fixed-length: they never grow or relocate;
//! * every object owns a field block — arrays included, preserving the
//!   historical field-map semantics where field access on an array is
//!   legal (reads default to `null`);
//! * [`Heap::len`] counts descriptors (live objects), not arena slots —
//!   the `max_heap_objects` limit is unaffected by relocation garbage.

use crate::value::Value;
use atlas_ir::{ClassId, FieldId};
use std::fmt;

/// A reference to a heap object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjRef(pub usize);

impl fmt::Display for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Descriptor of one object: which arena blocks hold its payload.
///
/// Every object — arrays included, matching the historical field-map
/// semantics where even arrays accept field reads and writes — owns a
/// (possibly empty) block in the field arena; arrays additionally own a
/// fixed-length block in the element arena.
#[derive(Debug, Clone, Copy)]
struct ObjDesc {
    /// The allocated class; `None` marks an array.
    class: Option<ClassId>,
    /// Field block start in the field arena.
    fstart: usize,
    /// Number of populated fields.
    flen: usize,
    /// Element block start in the element arena (arrays only).
    estart: usize,
    /// Array length (arrays only).
    elen: usize,
}

/// The concrete heap.
#[derive(Debug, Clone, Default)]
pub struct Heap {
    objects: Vec<ObjDesc>,
    fields: Vec<(FieldId, Value)>,
    elems: Vec<Value>,
}

/// Sentinel class id marking an empty inline-cache entry.
const IC_EMPTY: u32 = u32::MAX;
/// Sentinel class id marking a megamorphic site: the cache saw too many
/// distinct layouts and permanently falls back to the linear scan.
const IC_MEGAMORPHIC: u32 = u32::MAX - 1;
/// Installs tolerated before a site goes megamorphic.
const IC_MAX_INSTALLS: u8 = 8;

/// One monomorphic inline-cache entry: the guess that objects of class
/// `class` keep the site's field at block offset `slot`.
///
/// The guess is *verified on every use* — class id match, slot in range,
/// and the slot's `FieldId` equal to the site's — so a stale entry (a
/// recycled cache from a previous execution, a same-class object whose
/// fields were written in a different order) is never wrong, only a
/// miss.  Field-block relocation preserves slot order (see
/// [`Heap::write_field`]), so a verified slot stays valid for the
/// object's lifetime.  After `IC_MAX_INSTALLS` re-installs the entry
/// pins itself megamorphic and the site scans unconditionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldCache {
    class: u32,
    slot: u32,
    installs: u8,
}

impl FieldCache {
    /// The empty entry (never matches; first use installs).
    pub const EMPTY: FieldCache = FieldCache {
        class: IC_EMPTY,
        slot: 0,
        installs: 0,
    };

    /// Whether the site has gone megamorphic.
    pub fn is_megamorphic(&self) -> bool {
        self.class == IC_MEGAMORPHIC
    }

    fn install(&mut self, class: u32, slot: u32) {
        if self.class == IC_MEGAMORPHIC {
            return;
        }
        if self.installs >= IC_MAX_INSTALLS {
            self.class = IC_MEGAMORPHIC;
            return;
        }
        self.installs += 1;
        self.class = class;
        self.slot = slot;
    }
}

impl Default for FieldCache {
    fn default() -> FieldCache {
        FieldCache::EMPTY
    }
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Allocates a new instance of `class` (no fields populated yet).
    pub fn alloc(&mut self, class: ClassId) -> ObjRef {
        let r = ObjRef(self.objects.len());
        self.objects.push(ObjDesc {
            class: Some(class),
            fstart: self.fields.len(),
            flen: 0,
            estart: 0,
            elen: 0,
        });
        r
    }

    /// Allocates a new array of length `len`, elements initialized to `null`.
    pub fn alloc_array(&mut self, len: usize) -> ObjRef {
        let r = ObjRef(self.objects.len());
        let estart = self.elems.len();
        self.elems.resize(estart + len, Value::Null);
        self.objects.push(ObjDesc {
            class: None,
            fstart: self.fields.len(),
            flen: 0,
            estart,
            elen: len,
        });
        r
    }

    /// The class of an instance object (`None` for arrays).
    pub fn class_of(&self, r: ObjRef) -> Option<ClassId> {
        self.objects[r.0].class
    }

    /// Whether the object is an array.
    pub fn is_array(&self, r: ObjRef) -> bool {
        self.objects[r.0].class.is_none()
    }

    /// Reads a field (absent fields read as `null`).
    pub fn read_field(&self, r: ObjRef, field: FieldId) -> Value {
        let d = self.objects[r.0];
        self.fields[d.fstart..d.fstart + d.flen]
            .iter()
            .find(|(f, _)| *f == field)
            .map(|(_, v)| v.clone())
            .unwrap_or(Value::Null)
    }

    /// Writes a field, creating it on first write.
    pub fn write_field(&mut self, r: ObjRef, field: FieldId, value: Value) {
        let d = self.objects[r.0];
        for slot in &mut self.fields[d.fstart..d.fstart + d.flen] {
            if slot.0 == field {
                slot.1 = value;
                return;
            }
        }
        if d.fstart + d.flen == self.fields.len() {
            // The block is the arena tail: grow in place.
            self.fields.push((field, value));
        } else {
            // Relocate the block to the tail, abandoning the old slots.
            let new_start = self.fields.len();
            for i in d.fstart..d.fstart + d.flen {
                let moved = std::mem::replace(&mut self.fields[i].1, Value::Null);
                let fid = self.fields[i].0;
                self.fields.push((fid, moved));
            }
            self.fields.push((field, value));
            self.objects[r.0].fstart = new_start;
        }
        self.objects[r.0].flen += 1;
    }

    /// [`Heap::read_field`] through a per-site inline cache.  Returns the
    /// value and whether the cached guess verified (the hit flag feeds
    /// the `ATLAS_VM_PROFILE` counters).  Observationally identical to
    /// the uncached read: a failed guess falls back to the scan.
    pub fn read_field_cached(
        &self,
        r: ObjRef,
        field: FieldId,
        cache: &mut FieldCache,
    ) -> (Value, bool) {
        let d = self.objects[r.0];
        if let Some(class) = d.class {
            if cache.class == class.index() {
                let slot = cache.slot as usize;
                if slot < d.flen && self.fields[d.fstart + slot].0 == field {
                    return (self.fields[d.fstart + slot].1.clone(), true);
                }
            }
            // Miss: scan, and re-install the verified position.
            let found = self.fields[d.fstart..d.fstart + d.flen]
                .iter()
                .position(|(f, _)| *f == field);
            if let Some(slot) = found {
                cache.install(class.index(), slot as u32);
                return (self.fields[d.fstart + slot].1.clone(), false);
            }
            return (Value::Null, false);
        }
        // Arrays have no class key: always the plain scan.
        (self.read_field(r, field), false)
    }

    /// [`Heap::write_field`] through a per-site inline cache.  Returns
    /// whether the cached guess verified.  A hit overwrites the slot in
    /// place; a miss takes the full create-or-grow path.
    pub fn write_field_cached(
        &mut self,
        r: ObjRef,
        field: FieldId,
        value: Value,
        cache: &mut FieldCache,
    ) -> bool {
        let d = self.objects[r.0];
        if let Some(class) = d.class {
            if cache.class == class.index() {
                let slot = cache.slot as usize;
                if slot < d.flen && self.fields[d.fstart + slot].0 == field {
                    self.fields[d.fstart + slot].1 = value;
                    return true;
                }
            }
            let found = self.fields[d.fstart..d.fstart + d.flen]
                .iter()
                .position(|(f, _)| *f == field);
            if let Some(slot) = found {
                cache.install(class.index(), slot as u32);
                self.fields[d.fstart + slot].1 = value;
                return false;
            }
            // First write of this field on this object: the new slot's
            // position is `flen` after the grow — install that, since
            // later objects of the class written in the same order will
            // verify against it.
            let slot = d.flen as u32;
            self.write_field(r, field, value);
            cache.install(class.index(), slot);
            return false;
        }
        self.write_field(r, field, value);
        false
    }

    /// Reads an array element, if `r` is an array and the index is in range.
    pub fn read_element(&self, r: ObjRef, index: i64) -> Option<Value> {
        let d = self.objects[r.0];
        if d.class.is_some() || index < 0 || index as usize >= d.elen {
            return None;
        }
        Some(self.elems[d.estart + index as usize].clone())
    }

    /// Writes an array element.  Returns `false` if `r` is not an array or
    /// the index is out of range.
    pub fn write_element(&mut self, r: ObjRef, index: i64, value: Value) -> bool {
        let d = self.objects[r.0];
        if d.class.is_some() || index < 0 || index as usize >= d.elen {
            return false;
        }
        self.elems[d.estart + index as usize] = value;
        true
    }

    /// The length of an array object, if `r` is an array.
    pub fn array_len(&self, r: ObjRef) -> Option<usize> {
        let d = self.objects[r.0];
        d.class.is_none().then_some(d.elen)
    }

    /// Removes every object, keeping the allocated arena capacity.  A
    /// long-running oracle clears one heap between unit tests instead of
    /// constructing a fresh one, so the arenas reach their high-water mark
    /// once and steady-state execution allocates nothing.
    pub fn clear(&mut self) {
        self.objects.clear();
        self.fields.clear();
        self.elems.clear();
    }

    /// The allocated capacity of the three arenas `(objects, fields,
    /// elems)` — the zero-allocation audit snapshots this before and
    /// after a round to prove steady-state execution never grows them.
    pub fn capacities(&self) -> (usize, usize, usize) {
        (
            self.objects.capacity(),
            self.fields.capacity(),
            self.elems.capacity(),
        )
    }

    /// Number of objects allocated so far.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_default_to_null() {
        let mut heap = Heap::new();
        assert!(heap.is_empty());
        let r = heap.alloc(ClassId::from_index(0));
        assert_eq!(heap.read_field(r, FieldId::from_index(3)), Value::Null);
        heap.write_field(r, FieldId::from_index(3), Value::Int(9));
        assert_eq!(heap.read_field(r, FieldId::from_index(3)), Value::Int(9));
        heap.write_field(r, FieldId::from_index(3), Value::Int(10));
        assert_eq!(heap.read_field(r, FieldId::from_index(3)), Value::Int(10));
        assert!(!heap.is_array(r));
        assert_eq!(heap.class_of(r), Some(ClassId::from_index(0)));
        assert_eq!(heap.len(), 1);
    }

    #[test]
    fn array_bounds() {
        let mut heap = Heap::new();
        let a = heap.alloc_array(2);
        assert!(heap.is_array(a));
        assert_eq!(heap.class_of(a), None);
        assert_eq!(heap.array_len(a), Some(2));
        assert_eq!(heap.read_element(a, 0), Some(Value::Null));
        assert!(heap.write_element(a, 1, Value::Int(5)));
        assert_eq!(heap.read_element(a, 1), Some(Value::Int(5)));
        assert_eq!(heap.read_element(a, 2), None);
        assert_eq!(heap.read_element(a, -1), None);
        assert!(!heap.write_element(a, 9, Value::Int(1)));
        // Non-array object rejects element access.
        let o = heap.alloc(ClassId::from_index(0));
        assert_eq!(heap.read_element(o, 0), None);
        assert!(!heap.write_element(o, 0, Value::Null));
        assert_eq!(heap.array_len(o), None);
    }

    #[test]
    fn buried_field_block_relocates_without_corruption() {
        let mut heap = Heap::new();
        let a = heap.alloc(ClassId::from_index(0));
        let f0 = FieldId::from_index(0);
        let f1 = FieldId::from_index(1);
        let f2 = FieldId::from_index(2);
        heap.write_field(a, f0, Value::Int(1));
        // Bury `a`'s block under another object's fields, then force `a`
        // to grow: its block must relocate, preserving existing fields.
        let b = heap.alloc(ClassId::from_index(1));
        heap.write_field(b, f0, Value::Int(100));
        heap.write_field(a, f1, Value::Int(2));
        heap.write_field(a, f2, Value::Int(3));
        assert_eq!(heap.read_field(a, f0), Value::Int(1));
        assert_eq!(heap.read_field(a, f1), Value::Int(2));
        assert_eq!(heap.read_field(a, f2), Value::Int(3));
        assert_eq!(heap.read_field(b, f0), Value::Int(100));
        // Updates after relocation land in the new block.
        heap.write_field(a, f0, Value::Int(7));
        assert_eq!(heap.read_field(a, f0), Value::Int(7));
        assert_eq!(heap.len(), 2);
    }

    #[test]
    fn arrays_accept_field_access_like_instances() {
        // The historical heap gave every object a field map, arrays
        // included; the arena heap must preserve that (regression: an
        // array's element block must never be misread as a field block).
        let mut heap = Heap::new();
        let o = heap.alloc(ClassId::from_index(0));
        heap.write_field(o, FieldId::from_index(0), Value::Int(1));
        let a = heap.alloc_array(3);
        let f = FieldId::from_index(7);
        assert_eq!(heap.read_field(a, f), Value::Null);
        heap.write_field(a, f, Value::Int(42));
        assert_eq!(heap.read_field(a, f), Value::Int(42));
        // Elements are untouched by field writes and vice versa.
        assert_eq!(heap.read_element(a, 0), Some(Value::Null));
        assert!(heap.write_element(a, 2, Value::Int(9)));
        assert_eq!(heap.read_element(a, 2), Some(Value::Int(9)));
        assert_eq!(heap.read_field(a, f), Value::Int(42));
        assert_eq!(heap.array_len(a), Some(3));
        assert_eq!(heap.read_field(o, FieldId::from_index(0)), Value::Int(1));
    }

    #[test]
    fn interleaved_arrays_keep_disjoint_blocks() {
        let mut heap = Heap::new();
        let a = heap.alloc_array(3);
        let b = heap.alloc_array(2);
        for i in 0..3 {
            assert!(heap.write_element(a, i, Value::Int(i)));
        }
        assert!(heap.write_element(b, 0, Value::Int(40)));
        assert!(heap.write_element(b, 1, Value::Int(41)));
        for i in 0..3 {
            assert_eq!(heap.read_element(a, i), Some(Value::Int(i)));
        }
        assert_eq!(heap.read_element(b, 0), Some(Value::Int(40)));
        assert_eq!(heap.read_element(b, 1), Some(Value::Int(41)));
    }
}
