//! The concrete heap: objects with field maps and arrays.

use crate::value::Value;
use atlas_ir::{ClassId, FieldId};
use std::collections::HashMap;
use std::fmt;

/// A reference to a heap object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjRef(pub usize);

impl fmt::Display for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A heap object: either a class instance with named fields, or an array.
#[derive(Debug, Clone)]
pub struct HeapObject {
    /// The allocated class (`None` for arrays).
    pub class: Option<ClassId>,
    /// Field values (absent fields read as `null`/default).
    pub fields: HashMap<FieldId, Value>,
    /// Array payload, if this object is an array.
    pub array: Option<Vec<Value>>,
}

impl HeapObject {
    fn instance(class: ClassId) -> HeapObject {
        HeapObject {
            class: Some(class),
            fields: HashMap::new(),
            array: None,
        }
    }

    fn array(len: usize) -> HeapObject {
        HeapObject {
            class: None,
            fields: HashMap::new(),
            array: Some(vec![Value::Null; len]),
        }
    }

    /// Whether the object is an array.
    pub fn is_array(&self) -> bool {
        self.array.is_some()
    }
}

/// The concrete heap.
#[derive(Debug, Clone, Default)]
pub struct Heap {
    objects: Vec<HeapObject>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Allocates a new instance of `class`.
    pub fn alloc(&mut self, class: ClassId) -> ObjRef {
        let r = ObjRef(self.objects.len());
        self.objects.push(HeapObject::instance(class));
        r
    }

    /// Allocates a new array of length `len`, elements initialized to `null`.
    pub fn alloc_array(&mut self, len: usize) -> ObjRef {
        let r = ObjRef(self.objects.len());
        self.objects.push(HeapObject::array(len));
        r
    }

    /// The object behind a reference.
    pub fn get(&self, r: ObjRef) -> &HeapObject {
        &self.objects[r.0]
    }

    /// Mutable access to the object behind a reference.
    pub fn get_mut(&mut self, r: ObjRef) -> &mut HeapObject {
        &mut self.objects[r.0]
    }

    /// Reads a field (absent fields read as `null`).
    pub fn read_field(&self, r: ObjRef, field: FieldId) -> Value {
        self.objects[r.0]
            .fields
            .get(&field)
            .cloned()
            .unwrap_or(Value::Null)
    }

    /// Writes a field.
    pub fn write_field(&mut self, r: ObjRef, field: FieldId, value: Value) {
        self.objects[r.0].fields.insert(field, value);
    }

    /// Reads an array element, if `r` is an array and the index is in range.
    pub fn read_element(&self, r: ObjRef, index: i64) -> Option<Value> {
        let arr = self.objects[r.0].array.as_ref()?;
        if index < 0 || index as usize >= arr.len() {
            return None;
        }
        Some(arr[index as usize].clone())
    }

    /// Writes an array element.  Returns `false` if `r` is not an array or
    /// the index is out of range.
    pub fn write_element(&mut self, r: ObjRef, index: i64, value: Value) -> bool {
        match self.objects[r.0].array.as_mut() {
            Some(arr) if index >= 0 && (index as usize) < arr.len() => {
                arr[index as usize] = value;
                true
            }
            _ => false,
        }
    }

    /// The length of an array object, if `r` is an array.
    pub fn array_len(&self, r: ObjRef) -> Option<usize> {
        self.objects[r.0].array.as_ref().map(|a| a.len())
    }

    /// Number of objects allocated so far.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_default_to_null() {
        let mut heap = Heap::new();
        assert!(heap.is_empty());
        let r = heap.alloc(ClassId::from_index(0));
        assert_eq!(heap.read_field(r, FieldId::from_index(3)), Value::Null);
        heap.write_field(r, FieldId::from_index(3), Value::Int(9));
        assert_eq!(heap.read_field(r, FieldId::from_index(3)), Value::Int(9));
        assert!(!heap.get(r).is_array());
        assert_eq!(heap.len(), 1);
    }

    #[test]
    fn array_bounds() {
        let mut heap = Heap::new();
        let a = heap.alloc_array(2);
        assert!(heap.get(a).is_array());
        assert_eq!(heap.array_len(a), Some(2));
        assert_eq!(heap.read_element(a, 0), Some(Value::Null));
        assert!(heap.write_element(a, 1, Value::Int(5)));
        assert_eq!(heap.read_element(a, 1), Some(Value::Int(5)));
        assert_eq!(heap.read_element(a, 2), None);
        assert_eq!(heap.read_element(a, -1), None);
        assert!(!heap.write_element(a, 9, Value::Int(1)));
        // Non-array object rejects element access.
        let o = heap.alloc(ClassId::from_index(0));
        assert_eq!(heap.read_element(o, 0), None);
        assert!(!heap.write_element(o, 0, Value::Null));
        assert_eq!(heap.array_len(o), None);
        // Mutable access to raw object works.
        heap.get_mut(o)
            .fields
            .insert(FieldId::from_index(1), Value::Bool(true));
        assert_eq!(
            heap.read_field(o, FieldId::from_index(1)),
            Value::Bool(true)
        );
    }
}
