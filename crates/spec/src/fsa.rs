//! Nondeterministic finite automata over the path-specification alphabet
//! `V_path`, as used by the language-inference phase (Section 5.3).
//!
//! The automaton starts life as the *prefix-tree acceptor* of the positive
//! examples found in phase one; the RPNI-style learner then repeatedly
//! [`Fsa::merge`]s pairs of states, using bounded enumeration of the newly
//! accepted words ([`Fsa::words_added_by`]) to query the oracle.

use crate::path_spec::PathSpec;
use atlas_ir::ParamSlot;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Id of an automaton state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

/// A nondeterministic finite automaton over `V_path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fsa {
    /// transitions[q] maps a symbol to the set of successor states.
    transitions: Vec<BTreeMap<ParamSlot, BTreeSet<StateId>>>,
    init: StateId,
    accepting: BTreeSet<StateId>,
}

impl Fsa {
    /// The automaton accepting the empty language.
    pub fn empty() -> Fsa {
        Fsa {
            transitions: vec![BTreeMap::new()],
            init: StateId(0),
            accepting: BTreeSet::new(),
        }
    }

    /// Builds the prefix-tree acceptor of the given words: the automaton
    /// whose transition graph is the prefix tree of the words, whose start
    /// state is the root, and whose accept states are the word endpoints.
    pub fn prefix_tree<W: AsRef<[ParamSlot]>>(words: &[W]) -> Fsa {
        let mut fsa = Fsa::empty();
        for word in words {
            let mut state = fsa.init;
            for &sym in word.as_ref() {
                let next = match fsa.transitions[state.0 as usize].get(&sym) {
                    Some(set) if !set.is_empty() => *set.iter().next().expect("non-empty"),
                    _ => {
                        let new_state = fsa.add_state();
                        fsa.add_transition(state, sym, new_state);
                        new_state
                    }
                };
                state = next;
            }
            fsa.accepting.insert(state);
        }
        fsa
    }

    /// Adds a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        let id = StateId(self.transitions.len() as u32);
        self.transitions.push(BTreeMap::new());
        id
    }

    /// Adds a transition `from --sym--> to`.
    pub fn add_transition(&mut self, from: StateId, sym: ParamSlot, to: StateId) {
        self.transitions[from.0 as usize]
            .entry(sym)
            .or_default()
            .insert(to);
    }

    /// Marks a state as accepting.
    pub fn set_accepting(&mut self, state: StateId, accepting: bool) {
        if accepting {
            self.accepting.insert(state);
        } else {
            self.accepting.remove(&state);
        }
    }

    /// The initial state.
    pub fn init(&self) -> StateId {
        self.init
    }

    /// Whether the state is accepting.
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.accepting.contains(&state)
    }

    /// Total number of allocated states (including unreachable ones left
    /// behind by merges).
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// All states, in id order.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.transitions.len() as u32).map(StateId)
    }

    /// Number of states reachable from the initial state.
    pub fn num_reachable_states(&self) -> usize {
        self.reachable().len()
    }

    /// The set of states reachable from the initial state.
    pub fn reachable(&self) -> BTreeSet<StateId> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        seen.insert(self.init);
        queue.push_back(self.init);
        while let Some(q) = queue.pop_front() {
            for targets in self.transitions[q.0 as usize].values() {
                for &t in targets {
                    if seen.insert(t) {
                        queue.push_back(t);
                    }
                }
            }
        }
        seen
    }

    /// All transitions `(from, symbol, to)`, in a deterministic order.
    pub fn transitions(&self) -> Vec<(StateId, ParamSlot, StateId)> {
        let mut out = Vec::new();
        for (from, map) in self.transitions.iter().enumerate() {
            for (&sym, targets) in map {
                for &to in targets {
                    out.push((StateId(from as u32), sym, to));
                }
            }
        }
        out
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions
            .iter()
            .map(|m| m.values().map(|s| s.len()).sum::<usize>())
            .sum()
    }

    /// The successor states of `state` on `sym`.
    pub fn successors(&self, state: StateId, sym: ParamSlot) -> BTreeSet<StateId> {
        self.transitions[state.0 as usize]
            .get(&sym)
            .cloned()
            .unwrap_or_default()
    }

    /// Outgoing transitions of a state.
    pub fn transitions_from(&self, state: StateId) -> Vec<(ParamSlot, StateId)> {
        self.transitions[state.0 as usize]
            .iter()
            .flat_map(|(&sym, targets)| targets.iter().map(move |&t| (sym, t)))
            .collect()
    }

    /// Incoming transitions of a state.
    pub fn transitions_into(&self, state: StateId) -> Vec<(StateId, ParamSlot)> {
        self.transitions()
            .into_iter()
            .filter(|&(_, _, to)| to == state)
            .map(|(from, sym, _)| (from, sym))
            .collect()
    }

    /// Whether the automaton accepts the word.
    pub fn accepts(&self, word: &[ParamSlot]) -> bool {
        let mut current: BTreeSet<StateId> = BTreeSet::new();
        current.insert(self.init);
        for sym in word {
            let mut next = BTreeSet::new();
            for &q in &current {
                if let Some(targets) = self.transitions[q.0 as usize].get(sym) {
                    next.extend(targets.iter().copied());
                }
            }
            if next.is_empty() {
                return false;
            }
            current = next;
        }
        current.iter().any(|q| self.accepting.contains(q))
    }

    /// The `Merge(M, q, p)` operation of Section 5.3: redirects all of `q`'s
    /// incoming and outgoing transitions to `p`, transfers `q`'s accepting
    /// status, and leaves `q` isolated (equivalent to removing it).
    ///
    /// # Panics
    /// Panics if `q` is the initial state or `q == p`.
    pub fn merge(&self, q: StateId, p: StateId) -> Fsa {
        assert_ne!(q, self.init, "cannot merge away the initial state");
        assert_ne!(q, p, "cannot merge a state with itself");
        let mut out = self.clone();
        // Outgoing transitions of q move to p.
        let q_out = std::mem::take(&mut out.transitions[q.0 as usize]);
        for (sym, targets) in q_out {
            for to in targets {
                let to = if to == q { p } else { to };
                out.transitions[p.0 as usize]
                    .entry(sym)
                    .or_default()
                    .insert(to);
            }
        }
        // Incoming transitions into q are redirected to p.
        for map in out.transitions.iter_mut() {
            for targets in map.values_mut() {
                if targets.remove(&q) {
                    targets.insert(p);
                }
            }
        }
        if out.accepting.remove(&q) {
            out.accepting.insert(p);
        }
        out
    }

    /// Enumerates accepted words of length at most `max_len`, stopping after
    /// `limit` words.  Enumeration order is breadth-first, so shorter words
    /// come first.
    pub fn enumerate_words(&self, max_len: usize, limit: usize) -> Vec<Vec<ParamSlot>> {
        let mut out = Vec::new();
        // Frontier of (state-set, word) pairs.
        let mut queue: VecDeque<(BTreeSet<StateId>, Vec<ParamSlot>)> = VecDeque::new();
        let mut init_set = BTreeSet::new();
        init_set.insert(self.init);
        queue.push_back((init_set, Vec::new()));
        while let Some((states, word)) = queue.pop_front() {
            if out.len() >= limit {
                break;
            }
            if !word.is_empty() && states.iter().any(|q| self.accepting.contains(q)) {
                out.push(word.clone());
            }
            if word.len() >= max_len {
                continue;
            }
            // Collect the union of outgoing symbols.
            let mut symbols: BTreeSet<ParamSlot> = BTreeSet::new();
            for &q in &states {
                symbols.extend(self.transitions[q.0 as usize].keys().copied());
            }
            for sym in symbols {
                let mut next = BTreeSet::new();
                for &q in &states {
                    if let Some(t) = self.transitions[q.0 as usize].get(&sym) {
                        next.extend(t.iter().copied());
                    }
                }
                if !next.is_empty() {
                    let mut w = word.clone();
                    w.push(sym);
                    queue.push_back((next, w));
                }
            }
        }
        out
    }

    /// The words (up to `max_len`, at most `limit`) accepted by `self` but
    /// not by `other` — the set `M_diff` queried against the oracle when
    /// deciding whether to accept a merge.
    pub fn words_added_by(&self, other: &Fsa, max_len: usize, limit: usize) -> Vec<Vec<ParamSlot>> {
        self.enumerate_words(max_len, limit * 4)
            .into_iter()
            .filter(|w| !other.accepts(w))
            .take(limit)
            .collect()
    }

    /// Enumerates the *valid path specifications* accepted by the automaton
    /// (up to `max_len` symbols, at most `limit`).
    pub fn accepted_specs(&self, max_len: usize, limit: usize) -> Vec<PathSpec> {
        self.enumerate_words(max_len, limit * 2)
            .into_iter()
            .filter_map(|w| PathSpec::new(w).ok())
            .take(limit)
            .collect()
    }

    /// The set of methods that appear in any transition symbol.
    pub fn mentioned_methods(&self) -> BTreeSet<atlas_ir::MethodId> {
        self.transitions()
            .into_iter()
            .map(|(_, sym, _)| sym.method)
            .collect()
    }
}

impl Default for Fsa {
    fn default() -> Self {
        Fsa::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_ir::MethodId;

    fn slot(m: u32, kind: u8) -> ParamSlot {
        let method = MethodId::from_index(m);
        match kind {
            0 => ParamSlot::receiver(method),
            1 => ParamSlot::param(method, 0),
            _ => ParamSlot::ret(method),
        }
    }

    /// The Box clone-chain example: ob this_set (this_clone r_clone)* this_get r_get.
    fn clone_chain_word(n_clones: usize) -> Vec<ParamSlot> {
        let mut w = vec![slot(0, 1), slot(0, 0)];
        for _ in 0..n_clones {
            w.push(slot(2, 0));
            w.push(slot(2, 2));
        }
        w.push(slot(1, 0));
        w.push(slot(1, 2));
        w
    }

    #[test]
    fn prefix_tree_accepts_exactly_its_words() {
        let words = vec![clone_chain_word(0), clone_chain_word(1)];
        let fsa = Fsa::prefix_tree(&words);
        assert!(fsa.accepts(&clone_chain_word(0)));
        assert!(fsa.accepts(&clone_chain_word(1)));
        assert!(!fsa.accepts(&clone_chain_word(2)));
        assert!(!fsa.accepts(&[]));
        // Prefix tree of a 4-word and a 6-word sharing a 2-symbol prefix:
        // 1 root + 2 shared + 2 + 4 = 9 states.
        assert_eq!(fsa.num_states(), 9);
        assert_eq!(fsa.num_reachable_states(), 9);
        // enumerate_words returns both, shortest first.
        let words = fsa.enumerate_words(10, 100);
        assert_eq!(words.len(), 2);
        assert_eq!(words[0].len(), 4);
    }

    #[test]
    fn merge_generalizes_to_a_loop() {
        // Single positive example with one clone, as in Section 5.3's worked
        // example; merging the post-clone state with the post-set state
        // yields the starred language.
        let word = clone_chain_word(1);
        let fsa = Fsa::prefix_tree(std::slice::from_ref(&word));
        // States along the chain: 0 -ob-> 1 -this_set-> 2 -this_clone-> 3
        // -r_clone-> 4 -this_get-> 5 -r_get-> 6.
        let merged = fsa.merge(StateId(4), StateId(2));
        assert!(merged.accepts(&clone_chain_word(0)));
        assert!(merged.accepts(&clone_chain_word(1)));
        assert!(merged.accepts(&clone_chain_word(5)));
        assert!(!merged.accepts(&clone_chain_word(1)[..4]));
        // The original did not accept the 0- and 2-clone variants.
        assert!(!fsa.accepts(&clone_chain_word(0)));
        // words_added_by reports the newly accepted members (bounded).
        let added = merged.words_added_by(&fsa, 8, 50);
        assert!(added.contains(&clone_chain_word(0)));
        assert!(added.contains(&clone_chain_word(2)[..8].to_vec()) || !added.is_empty());
        // Reachable states shrink after the merge.
        assert!(merged.num_reachable_states() < fsa.num_reachable_states());
    }

    #[test]
    fn accepted_specs_filters_invalid_words() {
        // A word ending in a non-return symbol is not a valid path spec.
        let bad = vec![slot(0, 1), slot(0, 0)];
        let good = clone_chain_word(0);
        let fsa = Fsa::prefix_tree(&[bad, good.clone()]);
        let specs = fsa.accepted_specs(10, 10);
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].symbols(), good.as_slice());
        assert_eq!(fsa.mentioned_methods().len(), 2);
    }

    #[test]
    fn manual_construction_and_queries() {
        let mut fsa = Fsa::empty();
        assert!(!fsa.accepts(&[]));
        let a = fsa.add_state();
        fsa.add_transition(fsa.init(), slot(0, 1), a);
        fsa.set_accepting(a, true);
        assert!(fsa.accepts(&[slot(0, 1)]));
        assert!(fsa.is_accepting(a));
        fsa.set_accepting(a, false);
        assert!(!fsa.accepts(&[slot(0, 1)]));
        fsa.set_accepting(a, true);
        assert_eq!(fsa.num_transitions(), 1);
        assert_eq!(fsa.transitions_from(fsa.init()).len(), 1);
        assert_eq!(fsa.transitions_into(a).len(), 1);
        assert_eq!(fsa.successors(fsa.init(), slot(0, 1)).len(), 1);
        assert!(fsa.successors(a, slot(0, 1)).is_empty());
        assert_eq!(Fsa::default(), Fsa::empty());
    }

    #[test]
    #[should_panic(expected = "initial state")]
    fn merging_init_panics() {
        let fsa = Fsa::prefix_tree(&[clone_chain_word(0)]);
        let _ = fsa.merge(StateId(0), StateId(1));
    }

    #[test]
    fn self_loop_via_merge_handles_q_to_q_edges() {
        // word a b where both symbols go through distinct states; merging the
        // middle state into init must rewrite q→q self-edges correctly.
        let w = vec![slot(0, 1), slot(0, 2)];
        let fsa = Fsa::prefix_tree(std::slice::from_ref(&w));
        let merged = fsa.merge(StateId(1), StateId(2));
        // Language must still contain something reachable; no panic and the
        // accepting state is preserved.
        assert!(merged.num_states() == fsa.num_states());
        assert!(merged.transitions().len() >= 2);
    }
}
