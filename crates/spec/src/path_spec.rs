//! Path specifications: syntax, well-formedness and semantics (Section 4).
//!
//! A path specification is a sequence of interface variables
//!
//! ```text
//! z₁ w₁ z₂ w₂ … zₖ wₖ ∈ V_path*
//! ```
//!
//! where `zᵢ, wᵢ` belong to the same library method `mᵢ`, `wᵢ` and `zᵢ₊₁` are
//! not both return values, and `wₖ` is a return value.  Its semantics is the
//! rule
//!
//! ```text
//! (⋀ᵢ wᵢ --Aᵢ--> zᵢ₊₁ ∈ G̃)  ⇒  (z₁ --A--> wₖ ∈ G̃)
//! ```
//!
//! with `Aᵢ ∈ {Transfer, Alias, Transfer-bar}` determined by which of the two
//! endpoints are parameters/returns.

use atlas_ir::{LibraryInterface, MethodId, ParamSlot};
use std::fmt;

/// The relation labelling an edge of a path-specification premise or
/// conclusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeRel {
    /// `Transfer`: the left variable is indirectly assigned to the right.
    Transfer,
    /// `Transfer-bar`: the right variable is indirectly assigned to the left.
    TransferBar,
    /// `Alias`: the two variables may point to the same object.
    Alias,
}

impl fmt::Display for EdgeRel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeRel::Transfer => write!(f, "Transfer"),
            EdgeRel::TransferBar => write!(f, "Transfer̄"),
            EdgeRel::Alias => write!(f, "Alias"),
        }
    }
}

/// Errors raised when constructing a malformed path specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathSpecError {
    /// The symbol sequence was empty or had odd length.
    BadLength(usize),
    /// Symbols at positions `2i` and `2i+1` belong to different methods.
    MixedMethods {
        /// The step index `i` where the methods differ.
        position: usize,
    },
    /// `wᵢ` and `zᵢ₊₁` are both return values.
    ConsecutiveReturns {
        /// The step index `i` of the first of the two returns.
        position: usize,
    },
    /// The last symbol is not a return value.
    LastNotReturn,
}

impl fmt::Display for PathSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathSpecError::BadLength(n) => {
                write!(
                    f,
                    "path specification must have positive even length, got {n}"
                )
            }
            PathSpecError::MixedMethods { position } => {
                write!(f, "symbols at step {position} belong to different methods")
            }
            PathSpecError::ConsecutiveReturns { position } => {
                write!(
                    f,
                    "exit symbol {position} and the following entry symbol are both returns"
                )
            }
            PathSpecError::LastNotReturn => write!(f, "the final symbol must be a return value"),
        }
    }
}

impl std::error::Error for PathSpecError {}

/// A single path specification.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathSpec {
    symbols: Vec<ParamSlot>,
}

impl PathSpec {
    /// Builds a path specification from a symbol sequence, validating the
    /// well-formedness constraints of Section 4.
    ///
    /// # Errors
    /// Returns a [`PathSpecError`] describing the violated constraint.
    pub fn new(symbols: Vec<ParamSlot>) -> Result<PathSpec, PathSpecError> {
        Self::check(&symbols)?;
        Ok(PathSpec { symbols })
    }

    /// Checks whether a symbol sequence forms a valid path specification.
    pub fn check(symbols: &[ParamSlot]) -> Result<(), PathSpecError> {
        if symbols.is_empty() || !symbols.len().is_multiple_of(2) {
            return Err(PathSpecError::BadLength(symbols.len()));
        }
        for (i, pair) in symbols.chunks(2).enumerate() {
            if pair[0].method != pair[1].method {
                return Err(PathSpecError::MixedMethods { position: i });
            }
        }
        for i in (1..symbols.len() - 1).step_by(2) {
            if symbols[i].is_return() && symbols[i + 1].is_return() {
                return Err(PathSpecError::ConsecutiveReturns { position: i / 2 });
            }
        }
        if !symbols.last().expect("non-empty").is_return() {
            return Err(PathSpecError::LastNotReturn);
        }
        Ok(())
    }

    /// The raw symbol sequence `z₁ w₁ … zₖ wₖ`.
    pub fn symbols(&self) -> &[ParamSlot] {
        &self.symbols
    }

    /// The number of steps `k` (method occurrences).
    pub fn num_steps(&self) -> usize {
        self.symbols.len() / 2
    }

    /// The `(zᵢ, wᵢ)` pairs, in order.
    pub fn steps(&self) -> impl Iterator<Item = (ParamSlot, ParamSlot)> + '_ {
        self.symbols.chunks(2).map(|c| (c[0], c[1]))
    }

    /// The method of each step.
    pub fn methods(&self) -> Vec<MethodId> {
        self.steps().map(|(z, _)| z.method).collect()
    }

    /// The entry symbol `z₁`.
    pub fn first(&self) -> ParamSlot {
        self.symbols[0]
    }

    /// The exit symbol `wₖ`.
    pub fn last(&self) -> ParamSlot {
        *self.symbols.last().expect("non-empty")
    }

    /// The relation `Aᵢ` of the external edge `wᵢ → zᵢ₊₁`.
    pub fn external_rel(w: ParamSlot, z_next: ParamSlot) -> EdgeRel {
        match (w.is_return(), z_next.is_return()) {
            (true, false) => EdgeRel::Transfer,
            (false, false) => EdgeRel::Alias,
            (false, true) => EdgeRel::TransferBar,
            (true, true) => EdgeRel::Alias, // ruled out by well-formedness
        }
    }

    /// The relation `A` of the conclusion `z₁ --A--> wₖ`.
    pub fn conclusion_rel(&self) -> EdgeRel {
        if self.first().is_return() {
            EdgeRel::Alias
        } else {
            EdgeRel::Transfer
        }
    }

    /// The premise edges `wᵢ --Aᵢ--> zᵢ₊₁` (empty for single-step specs).
    pub fn premise(&self) -> Vec<(ParamSlot, EdgeRel, ParamSlot)> {
        let mut out = Vec::new();
        for i in 0..self.num_steps().saturating_sub(1) {
            let w = self.symbols[2 * i + 1];
            let z_next = self.symbols[2 * i + 2];
            out.push((w, Self::external_rel(w, z_next), z_next));
        }
        out
    }

    /// The complete semantic rule of this specification.
    pub fn rule(&self) -> SpecRule {
        SpecRule {
            premise: self.premise(),
            conclusion: (self.first(), self.conclusion_rel(), self.last()),
        }
    }

    /// Formats the specification with human-readable slot names, e.g.
    /// `p0_set ⊣ this_set → this_get ⊣ r_get`.
    pub fn display(&self, interface: &LibraryInterface) -> String {
        let mut parts = Vec::new();
        for (i, (z, w)) in self.steps().enumerate() {
            let sep = if i == 0 { "" } else { " → " };
            parts.push(format!(
                "{sep}{} ⊣ {}",
                interface.slot_name(z),
                interface.slot_name(w)
            ));
        }
        parts.concat()
    }
}

/// The semantic rule `premise ⇒ conclusion` of a path specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecRule {
    /// The premise edges `wᵢ --Aᵢ--> zᵢ₊₁` that must already be in `G̃`.
    pub premise: Vec<(ParamSlot, EdgeRel, ParamSlot)>,
    /// The conclusion edge `z₁ --A--> wₖ` added to `G̃` when the premise holds.
    pub conclusion: (ParamSlot, EdgeRel, ParamSlot),
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use atlas_ir::builder::ProgramBuilder;
    use atlas_ir::{LibraryInterface, Program, Type};

    /// Box library with set/get/clone (the running example of the paper).
    pub(crate) fn box_program() -> Program {
        let mut pb = ProgramBuilder::new();
        pb.class("Object").build();
        let mut c = pb.class("Box");
        c.library(true);
        c.field("f", Type::object());
        let mut init = c.constructor();
        init.this();
        init.finish();
        let mut set = c.method("set");
        let this = set.this();
        let ob = set.param("ob", Type::object());
        set.store(this, "f", ob);
        set.finish();
        let mut get = c.method("get");
        get.returns(Type::object());
        let this = get.this();
        let r = get.local("r", Type::object());
        get.load(r, this, "f");
        get.ret(Some(r));
        get.finish();
        let mut clone = c.method("clone");
        clone.returns(Type::class("Box"));
        let this = clone.this();
        let b = clone.local("b", Type::class("Box"));
        let tmp = clone.local("tmp", Type::object());
        let box_class = clone.cref("Box");
        clone.new_object(b, box_class);
        clone.load(tmp, this, "f");
        clone.store(b, "f", tmp);
        clone.ret(Some(b));
        clone.finish();
        c.build();
        pb.build()
    }

    /// The specification `s_box = ob ⊣ this_set → this_get ⊣ r_get`.
    pub(crate) fn sbox(p: &Program) -> PathSpec {
        let set = p.method_qualified("Box.set").unwrap();
        let get = p.method_qualified("Box.get").unwrap();
        PathSpec::new(vec![
            ParamSlot::param(set, 0),
            ParamSlot::receiver(set),
            ParamSlot::receiver(get),
            ParamSlot::ret(get),
        ])
        .unwrap()
    }

    #[test]
    fn sbox_semantics_match_the_paper() {
        let p = box_program();
        let s = sbox(&p);
        assert_eq!(s.num_steps(), 2);
        let rule = s.rule();
        // Premise: this_set --Alias--> this_get.
        assert_eq!(rule.premise.len(), 1);
        assert_eq!(rule.premise[0].1, EdgeRel::Alias);
        // Conclusion: ob --Transfer--> r_get.
        assert_eq!(rule.conclusion.1, EdgeRel::Transfer);
        assert_eq!(s.conclusion_rel(), EdgeRel::Transfer);
        let iface = LibraryInterface::from_program(&p);
        let text = s.display(&iface);
        assert!(text.contains("this_set"), "{text}");
        assert!(text.contains("r_get"), "{text}");
        assert_eq!(s.methods().len(), 2);
    }

    #[test]
    fn clone_chain_spec_premise_relations() {
        // ob ⊣ this_set → this_clone ⊣ r_clone → this_get ⊣ r_get
        let p = box_program();
        let set = p.method_qualified("Box.set").unwrap();
        let get = p.method_qualified("Box.get").unwrap();
        let clone = p.method_qualified("Box.clone").unwrap();
        let s = PathSpec::new(vec![
            ParamSlot::param(set, 0),
            ParamSlot::receiver(set),
            ParamSlot::receiver(clone),
            ParamSlot::ret(clone),
            ParamSlot::receiver(get),
            ParamSlot::ret(get),
        ])
        .unwrap();
        let premise = s.premise();
        assert_eq!(premise.len(), 2);
        // this_set --Alias--> this_clone
        assert_eq!(premise[0].1, EdgeRel::Alias);
        // r_clone --Transfer--> this_get
        assert_eq!(premise[1].1, EdgeRel::Transfer);
        assert_eq!(s.first(), ParamSlot::param(set, 0));
        assert_eq!(s.last(), ParamSlot::ret(get));
    }

    #[test]
    fn alias_conclusion_when_entry_is_a_return() {
        // r_get ⊣ this_get → this_get ⊣ r_get : entering via a return value
        // yields an Alias conclusion.
        let p = box_program();
        let get = p.method_qualified("Box.get").unwrap();
        let s = PathSpec::new(vec![
            ParamSlot::ret(get),
            ParamSlot::receiver(get),
            ParamSlot::receiver(get),
            ParamSlot::ret(get),
        ])
        .unwrap();
        assert_eq!(s.conclusion_rel(), EdgeRel::Alias);
        // TransferBar arises when an exit parameter is followed by an entry
        // return.
        assert_eq!(
            PathSpec::external_rel(ParamSlot::receiver(get), ParamSlot::ret(get)),
            EdgeRel::TransferBar
        );
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let p = box_program();
        let set = p.method_qualified("Box.set").unwrap();
        let get = p.method_qualified("Box.get").unwrap();
        // Odd length.
        assert_eq!(
            PathSpec::new(vec![ParamSlot::receiver(set)]),
            Err(PathSpecError::BadLength(1))
        );
        // Empty.
        assert_eq!(PathSpec::new(vec![]), Err(PathSpecError::BadLength(0)));
        // Mixed methods within a step.
        assert_eq!(
            PathSpec::new(vec![ParamSlot::receiver(set), ParamSlot::ret(get)]),
            Err(PathSpecError::MixedMethods { position: 0 })
        );
        // Last symbol not a return.
        assert_eq!(
            PathSpec::new(vec![ParamSlot::param(set, 0), ParamSlot::receiver(set)]),
            Err(PathSpecError::LastNotReturn)
        );
        // Consecutive returns across steps.
        assert_eq!(
            PathSpec::new(vec![
                ParamSlot::receiver(get),
                ParamSlot::ret(get),
                ParamSlot::ret(get),
                ParamSlot::ret(get),
            ]),
            Err(PathSpecError::ConsecutiveReturns { position: 0 })
        );
        // Error display is informative.
        assert!(PathSpecError::LastNotReturn.to_string().contains("return"));
        assert!(PathSpecError::BadLength(3).to_string().contains('3'));
    }

    #[test]
    fn edge_rel_display() {
        assert_eq!(EdgeRel::Transfer.to_string(), "Transfer");
        assert_eq!(EdgeRel::Alias.to_string(), "Alias");
        assert!(EdgeRel::TransferBar.to_string().starts_with("Transfer"));
    }
}
