//! Conversion of regular sets of path specifications into *code-fragment
//! specifications* (Appendix A of the paper).
//!
//! Each automaton state `q` is assigned a fresh ghost field `f_q`.  For every
//! pair of consecutive transitions `p --z--> q --w--> r` whose symbols belong
//! to the same library method `m`, statements are added to the fragment body
//! of `m` that move the tracked object from its representation at state `p`
//! (the value of `z` itself if `p` is initial, otherwise the ghost field
//! `f_p` of the carrier bound to `z`) to its representation at state `r`
//! (returned directly if `r` is accepting, otherwise stored into the ghost
//! field `f_r` of the carrier bound to `w`).  Carriers bound to return-value
//! slots are freshly allocated ghost objects returned by the fragment —
//! exactly the `Box b = new Box(); b.f = f; return b;` shape of Figure 12.
//!
//! The resulting fragment bodies are used as body overrides by
//! `atlas_pointsto::ExtractionOptions::with_specs`, replacing the (possibly
//! unavailable) library implementation.

use crate::fsa::{Fsa, StateId};
use crate::path_spec::PathSpec;
use atlas_ir::{AllocSite, FieldId, MethodId, ParamSlot, Program, SlotKind, Stmt, Var};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt::Write as _;

/// Base index for the allocation sites of ghost carrier objects, chosen so
/// they can never collide with real allocation sites of the method.
const GHOST_ALLOC_BASE: u32 = 1_000_000;

/// A set of code-fragment specifications: replacement bodies for library
/// methods.
#[derive(Debug, Clone, Default)]
pub struct CodeFragments {
    bodies: BTreeMap<MethodId, Vec<Stmt>>,
}

impl CodeFragments {
    /// Builds code fragments from an explicit map of bodies (used for
    /// handwritten and ground-truth specifications).
    pub fn from_bodies(bodies: BTreeMap<MethodId, Vec<Stmt>>) -> CodeFragments {
        CodeFragments { bodies }
    }

    /// Builds code fragments for a finite set of path specifications by
    /// first constructing their prefix-tree acceptor.
    pub fn from_specs(program: &Program, specs: &[PathSpec]) -> CodeFragments {
        let words: Vec<Vec<ParamSlot>> = specs.iter().map(|s| s.symbols().to_vec()).collect();
        let fsa = Fsa::prefix_tree(&words);
        Self::from_fsa(program, &fsa)
    }

    /// Builds code fragments from a (possibly cyclic) automaton representing
    /// a regular set of path specifications.
    pub fn from_fsa(program: &Program, fsa: &Fsa) -> CodeFragments {
        let ghost_base = program.num_fields() as u32;
        let parity = state_parity(fsa);
        // Collect method-occurrence transition pairs p --z--> q --w--> r.
        type OccurrencePair = (StateId, ParamSlot, StateId, ParamSlot, StateId);
        let mut pairs_by_method: BTreeMap<MethodId, Vec<OccurrencePair>> = BTreeMap::new();
        for (p, z, q) in fsa.transitions() {
            // Only pairs whose first transition starts at an even-parity
            // state are method occurrences (z is an entry symbol).
            if !parity.get(&p).copied().unwrap_or(true) {
                continue;
            }
            for (w, r) in fsa.transitions_from(q) {
                if w.method != z.method {
                    continue;
                }
                pairs_by_method
                    .entry(z.method)
                    .or_default()
                    .push((p, z, q, w, r));
            }
        }

        let mut bodies = BTreeMap::new();
        for (method_id, pairs) in pairs_by_method {
            let body = build_fragment(program, fsa, method_id, &pairs, ghost_base);
            if !body.is_empty() {
                bodies.insert(method_id, body);
            }
        }
        CodeFragments { bodies }
    }

    /// The fragment bodies, keyed by method.
    pub fn bodies(&self) -> &BTreeMap<MethodId, Vec<Stmt>> {
        &self.bodies
    }

    /// The fragment body for one method.
    pub fn body(&self, method: MethodId) -> Option<&Vec<Stmt>> {
        self.bodies.get(&method)
    }

    /// Number of methods covered by a fragment.
    pub fn num_methods(&self) -> usize {
        self.bodies.len()
    }

    /// Total number of fragment statements.
    pub fn num_statements(&self) -> usize {
        self.bodies.values().map(|b| b.len()).sum()
    }

    /// Methods covered by the fragments.
    pub fn methods(&self) -> impl Iterator<Item = MethodId> + '_ {
        self.bodies.keys().copied()
    }

    /// Converts into the body-override map consumed by the points-to graph
    /// extractor.
    pub fn to_overrides(&self) -> HashMap<MethodId, Vec<Stmt>> {
        self.bodies.iter().map(|(&m, b)| (m, b.clone())).collect()
    }

    /// Merges another set of fragments into this one.  Bodies for the same
    /// method are concatenated.
    pub fn merge(&mut self, other: &CodeFragments) {
        for (&m, body) in &other.bodies {
            self.bodies
                .entry(m)
                .or_default()
                .extend(body.iter().cloned());
        }
    }

    /// Renders the fragments in a readable, Java-like form (ghost fields are
    /// shown as `$g<i>`).
    pub fn render(&self, program: &Program) -> String {
        let mut out = String::new();
        for (&method, body) in &self.bodies {
            let _ = writeln!(out, "// fragment for {}", program.qualified_name(method));
            for stmt in body {
                let _ = writeln!(out, "    {}", render_stmt(program, method, stmt));
            }
        }
        out
    }
}

/// Computes, for each reachable state, whether it sits at an even offset from
/// the initial state (i.e. expects an *entry* symbol next).  States reachable
/// at both parities are treated as even so that their outgoing entry symbols
/// still produce fragments.
fn state_parity(fsa: &Fsa) -> BTreeMap<StateId, bool> {
    let mut even: BTreeSet<StateId> = BTreeSet::new();
    let mut odd: BTreeSet<StateId> = BTreeSet::new();
    let mut queue = VecDeque::new();
    even.insert(fsa.init());
    queue.push_back((fsa.init(), true));
    while let Some((q, is_even)) = queue.pop_front() {
        for (_, to) in fsa.transitions_from(q) {
            let target_set = if is_even { &mut odd } else { &mut even };
            if target_set.insert(to) {
                queue.push_back((to, !is_even));
            }
        }
    }
    let mut out = BTreeMap::new();
    for q in odd {
        out.insert(q, false);
    }
    for q in even {
        out.insert(q, true); // even wins when both
    }
    out
}

fn slot_var(program: &Program, method: MethodId, slot: ParamSlot) -> Option<Var> {
    let m = program.method(method);
    match slot.kind {
        SlotKind::Receiver => m.this_var(),
        SlotKind::Param(i) => {
            if (i as usize) < m.num_params() {
                Some(m.param_var(i as usize))
            } else {
                None
            }
        }
        SlotKind::Return => None,
    }
}

fn build_fragment(
    program: &Program,
    fsa: &Fsa,
    method_id: MethodId,
    pairs: &[(StateId, ParamSlot, StateId, ParamSlot, StateId)],
    ghost_base: u32,
) -> Vec<Stmt> {
    let method = program.method(method_id);
    let mut next_var = method.num_vars() as u32;
    let fresh = |next_var: &mut u32| {
        let v = Var::from_index(*next_var);
        *next_var += 1;
        v
    };
    let ghost = |state: StateId| FieldId::from_index(ghost_base + state.0);

    // Does any pair need a freshly allocated carrier bound to the return
    // value?
    let needs_ret_alloc = pairs.iter().any(|&(_, z, _, w, r)| {
        z.kind == SlotKind::Return || (w.kind == SlotKind::Return && !fsa.is_accepting(r))
    });
    let mut stmts = Vec::new();
    let mut alloc_counter = 0u32;
    let ret_carrier = if needs_ret_alloc {
        let v = fresh(&mut next_var);
        stmts.push(Stmt::New {
            dst: v,
            class: method.class(),
            site: AllocSite {
                method: method_id,
                index: GHOST_ALLOC_BASE + alloc_counter,
            },
        });
        alloc_counter += 1;
        Some(v)
    } else {
        None
    };
    let _ = alloc_counter;

    let mut dedup: BTreeSet<(StateId, ParamSlot, ParamSlot, StateId)> = BTreeSet::new();
    for &(p, z, _q, w, r) in pairs {
        if !dedup.insert((p, z, w, r)) {
            continue;
        }
        // Entry: materialize the tracked object in a local variable (or use
        // the entry slot directly).
        let entry_obj = if p == fsa.init() {
            match slot_var(program, method_id, z) {
                Some(v) => v,
                None => match ret_carrier {
                    Some(v) => v,
                    None => continue,
                },
            }
        } else {
            let carrier = match slot_var(program, method_id, z) {
                Some(v) => v,
                None => match ret_carrier {
                    Some(v) => v,
                    None => continue,
                },
            };
            let t = fresh(&mut next_var);
            stmts.push(Stmt::Load {
                dst: t,
                obj: carrier,
                field: ghost(p),
            });
            t
        };
        // Exit.
        if fsa.is_accepting(r) && w.kind == SlotKind::Return {
            stmts.push(Stmt::Return {
                var: Some(entry_obj),
            });
        }
        if !fsa.transitions_from(r).is_empty() || !fsa.is_accepting(r) {
            let carrier = match slot_var(program, method_id, w) {
                Some(v) => v,
                None => match ret_carrier {
                    Some(v) => v,
                    None => continue,
                },
            };
            stmts.push(Stmt::Store {
                obj: carrier,
                field: ghost(r),
                src: entry_obj,
            });
        }
    }
    if let Some(rc) = ret_carrier {
        stmts.push(Stmt::Return { var: Some(rc) });
    }
    stmts
}

fn render_stmt(program: &Program, method: MethodId, stmt: &Stmt) -> String {
    let m = program.method(method);
    let var_name = |v: Var| -> String {
        if (v.index() as usize) < m.num_vars() {
            m.var_data(v).name.clone()
        } else {
            format!("t{}", v.index() as usize - m.num_vars())
        }
    };
    let field_name = |f: FieldId| -> String {
        if (f.index() as usize) < program.num_fields() {
            program.field(f).name().to_string()
        } else {
            format!("$g{}", f.index() as usize - program.num_fields())
        }
    };
    match stmt {
        Stmt::New { dst, class, .. } => {
            format!(
                "{} = new {}();",
                var_name(*dst),
                program.class(*class).name()
            )
        }
        Stmt::Load { dst, obj, field } => {
            format!(
                "{} = {}.{};",
                var_name(*dst),
                var_name(*obj),
                field_name(*field)
            )
        }
        Stmt::Store { obj, field, src } => {
            format!(
                "{}.{} = {};",
                var_name(*obj),
                field_name(*field),
                var_name(*src)
            )
        }
        Stmt::Assign { dst, src } => format!("{} = {};", var_name(*dst), var_name(*src)),
        Stmt::Return { var: Some(v) } => format!("return {};", var_name(*v)),
        Stmt::Return { var: None } => "return;".to_string(),
        other => format!("{other:?}"),
    }
}

/// A canonical, order-insensitive signature of a fragment body, used to
/// compare inferred fragments against handwritten/ground-truth ones
/// independently of ghost-field identity and temporary-variable names.
///
/// Every field (ghost or real) is abstracted to `F`, every non-parameter
/// local to `L`; receivers and declared parameters keep their roles.  The
/// signature is the sorted multiset of normalized statements.  This is the
/// statement-level counting used by the paper's evaluation ("count each
/// statement fractionally"); abstracting field identity makes the comparison
/// insensitive to how many automaton states an inferred flow was split over.
pub fn fragment_signature(program: &Program, method: MethodId, body: &[Stmt]) -> Vec<String> {
    let m = program.method(method);
    let norm_field = |_f: FieldId| -> String { "F".to_string() };
    let norm_var = |v: Var| -> String {
        if m.has_this() && v.index() == 0 {
            return "this".to_string();
        }
        let param_offset = usize::from(m.has_this());
        let idx = v.index() as usize;
        if idx >= param_offset && idx < param_offset + m.num_params() {
            return format!("p{}", idx - param_offset);
        }
        "L".to_string()
    };
    let mut sigs = Vec::new();
    for stmt in body {
        let sig = match stmt {
            Stmt::New { dst, .. } => format!("new {}", norm_var(*dst)),
            Stmt::Store { obj, field, src } => format!(
                "store {}.{} = {}",
                norm_var(*obj),
                norm_field(*field),
                norm_var(*src)
            ),
            Stmt::Load { dst, obj, field } => format!(
                "load {} = {}.{}",
                norm_var(*dst),
                norm_var(*obj),
                norm_field(*field)
            ),
            Stmt::Assign { dst, src } => {
                format!("assign {} = {}", norm_var(*dst), norm_var(*src))
            }
            Stmt::Return { var: Some(v) } => format!("return {}", norm_var(*v)),
            Stmt::Return { var: None } => "return".to_string(),
            other => format!("{other:?}"),
        };
        sigs.push(sig);
    }
    sigs.sort();
    // Identical statements produced by different automaton states collapse
    // to one occurrence: they have the same points-to effect.
    sigs.dedup();
    sigs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path_spec::tests::{box_program, sbox};

    #[test]
    fn sbox_fragment_matches_the_paper() {
        // The fragment for s_box: set stores its parameter into a ghost
        // field of the receiver, get loads it back and returns it.
        let p = box_program();
        let frags = CodeFragments::from_specs(&p, &[sbox(&p)]);
        assert_eq!(frags.num_methods(), 2);
        let set = p.method_qualified("Box.set").unwrap();
        let get = p.method_qualified("Box.get").unwrap();
        let set_body = frags.body(set).unwrap();
        assert_eq!(set_body.len(), 1);
        assert!(matches!(set_body[0], Stmt::Store { .. }));
        let get_body = frags.body(get).unwrap();
        assert_eq!(get_body.len(), 2);
        assert!(matches!(get_body[0], Stmt::Load { .. }));
        assert!(matches!(get_body[1], Stmt::Return { .. }));
        assert_eq!(frags.num_statements(), 3);
        let rendered = frags.render(&p);
        assert!(rendered.contains("Box.set"), "{rendered}");
        assert!(rendered.contains("$g"), "{rendered}");
        assert!(rendered.contains("return"), "{rendered}");
    }

    #[test]
    fn clone_loop_fragment_allocates_a_carrier() {
        // The starred spec ob ⊣ this_set (→ this_clone ⊣ r_clone)* → this_get ⊣ r_get
        // compiles clone into `b = new Box(); b.f = this.f; return b;`.
        let p = box_program();
        let set = p.method_qualified("Box.set").unwrap();
        let get = p.method_qualified("Box.get").unwrap();
        let clone = p.method_qualified("Box.clone").unwrap();
        let word = vec![
            ParamSlot::param(set, 0),
            ParamSlot::receiver(set),
            ParamSlot::receiver(clone),
            ParamSlot::ret(clone),
            ParamSlot::receiver(get),
            ParamSlot::ret(get),
        ];
        let fsa = Fsa::prefix_tree(&[word]);
        // Merge the post-r_clone state back into the post-this_set state to
        // form the loop (states: 0..6 along the chain).
        let looped = fsa.merge(StateId(4), StateId(2));
        let frags = CodeFragments::from_fsa(&p, &looped);
        assert_eq!(frags.num_methods(), 3);
        let clone_body = frags.body(clone).unwrap();
        // new carrier, load from ghost of state 2, store into carrier ghost
        // of state 2, return carrier.
        assert!(clone_body.iter().any(|s| matches!(s, Stmt::New { .. })));
        assert!(clone_body.iter().any(|s| matches!(s, Stmt::Load { .. })));
        assert!(clone_body.iter().any(|s| matches!(s, Stmt::Store { .. })));
        assert!(matches!(clone_body.last().unwrap(), Stmt::Return { .. }));
        // The ghost field loaded and the ghost field stored are the same
        // (self-loop through state 2).
        let loaded: Vec<u32> = clone_body
            .iter()
            .filter_map(|s| match s {
                Stmt::Load { field, .. } => Some(field.index()),
                _ => None,
            })
            .collect();
        let stored: Vec<u32> = clone_body
            .iter()
            .filter_map(|s| match s {
                Stmt::Store { field, .. } => Some(field.index()),
                _ => None,
            })
            .collect();
        assert_eq!(loaded, stored);
    }

    #[test]
    fn fragment_signatures_are_normalization_invariant() {
        let p = box_program();
        let set = p.method_qualified("Box.set").unwrap();
        let frags = CodeFragments::from_specs(&p, &[sbox(&p)]);
        let generated = fragment_signature(&p, set, frags.body(set).unwrap());
        // A handwritten equivalent using the *real* field f.
        let f = p.field_named(p.class_named("Box").unwrap(), "f").unwrap();
        let handwritten = vec![Stmt::Store {
            obj: Var::from_index(0),
            field: f,
            src: Var::from_index(1),
        }];
        let hw_sig = fragment_signature(&p, set, &handwritten);
        assert_eq!(generated, hw_sig);
        assert_eq!(generated, vec!["store this.F = p0".to_string()]);
    }

    #[test]
    fn merge_concatenates_bodies() {
        let p = box_program();
        let set = p.method_qualified("Box.set").unwrap();
        let mut a = CodeFragments::from_specs(&p, &[sbox(&p)]);
        let b = CodeFragments::from_specs(&p, &[sbox(&p)]);
        let before = a.body(set).unwrap().len();
        a.merge(&b);
        assert_eq!(a.body(set).unwrap().len(), before * 2);
        assert!(a.methods().count() >= 2);
        // from_bodies wraps an explicit map.
        let explicit = CodeFragments::from_bodies(a.bodies().clone());
        assert_eq!(explicit.num_statements(), a.num_statements());
        // to_overrides produces the extraction map.
        assert_eq!(explicit.to_overrides().len(), explicit.num_methods());
    }
}
