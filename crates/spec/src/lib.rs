//! # atlas-spec
//!
//! Path specifications — the central abstraction of the paper — together with
//! the machinery to represent (possibly infinite) *regular sets* of path
//! specifications as finite-state automata and to compile them into
//! code-fragment specifications that a points-to analysis can consume.
//!
//! * [`path_spec`] — the syntax and well-formedness constraints of a single
//!   path specification `z₁ ⊣ w₁ → z₂ ⊣ … ⊣ wₖ` (Section 4), and its
//!   semantics as a premise ⇒ conclusion rule over `Transfer`/`Alias` edges;
//! * [`fsa`] — nondeterministic finite automata over the alphabet `V_path`,
//!   prefix-tree acceptors, state merging, and bounded language enumeration
//!   (the ingredients of the RPNI-style learner in `atlas-learn`);
//! * [`codegen`] — conversion of a regular set of path specifications into
//!   equivalent code-fragment specifications with ghost fields (Appendix A),
//!   ready to be used as body overrides by `atlas-pointsto`.

#![warn(missing_docs)]

pub mod codegen;
pub mod fsa;
pub mod path_spec;

pub use codegen::{fragment_signature, CodeFragments};
pub use fsa::{Fsa, StateId};
pub use path_spec::{EdgeRel, PathSpec, PathSpecError, SpecRule};
