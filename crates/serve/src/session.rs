//! Per-session daemon state: one library under edit, a rolling warm
//! verdict cache, and the current spec artifact.
//!
//! `atlas-serve/2` makes sessions first-class: every open session owns
//! the full mutable state the /1 daemon kept globally — program,
//! provenance chain, warm verdict cache, specs document, fingerprint,
//! generation — plus a shard-store *namespace* of its own, so edits in
//! one session can never alias another session's persisted clusters.
//! The daemon serializes requests per session (the service scheduler
//! guarantees at most one in-flight request per session), so a
//! [`SessionState`] is locked for the duration of exactly one request
//! and never contended with itself.

use crate::config::ServeConfig;
use crate::proto::{EditRequest, ErrorCode, WireError};
use crate::shards::{HotShards, SharedShards};
use atlas_apps::{mutate_library, MutationConfig};
use atlas_core::{AtlasConfig, Engine, RunProvenance, StoreError, VerdictCache};
use atlas_ir::ClassId;
use atlas_ir::LibraryInterface;
use atlas_ir::Program;
use atlas_obs::Recorder;
use atlas_store::{hex64_string, Json};
use std::sync::{Arc, Mutex};

/// Lane stripe width per inference session *within* one serve session:
/// startup is stripe 1, edit `k` is stripe `k + 1`.  Lanes 1 and 2
/// below the first stripe are the request and shard-cache tracks.
pub(crate) const SESSION_LANE_STRIDE: u64 = 4096;

/// Lane stripe width per *serve session*: session ordinal `n` records
/// everything — request spans and engine stripes — on lanes
/// `n << 32 ..`, so traces from concurrently-running sessions occupy
/// disjoint lane ranges.  Ordinal 0 is the default session, whose lane
/// layout is byte-identical to the single-session /1 scheme.
pub(crate) const SESSION_ORDINAL_STRIDE: u64 = 1 << 32;

/// The observability lane of request spans within a session's stripe.
pub(crate) const REQUEST_LANE: u64 = 1;

/// Per-session counters reported by the `stats` op.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SessionStats {
    pub edits_ok: u64,
    pub edits_failed: u64,
    pub queries: u64,
}

/// The mutable state of one open session.  See the [module docs](self).
pub(crate) struct SessionState {
    /// The session's wire name (`"default"` for the /1-compat session).
    pub name: String,
    /// The shard-store namespace this session persists into.
    pub ns: usize,
    /// The session's lane stripe index: 0 for the default session, the
    /// open ordinal otherwise.
    pub ordinal: u64,
    /// The library content after every edit applied so far.
    pub program: Program,
    /// The previous run's closure identity; the diff basis of the next
    /// edit.
    pub provenance: RunProvenance,
    /// The rolling warm verdict cache: every verdict any edit in this
    /// session has proven, fed to the next edit's engine.
    pub warm: VerdictCache,
    /// The current `atlas-spec/1` artifact document.
    pub specs_doc: Json,
    /// The current library fingerprint.
    pub fingerprint: u64,
    /// Edits applied since the session opened.
    pub generation: u64,
    /// Edits since the last write-behind flush of this session.
    pub edits_since_flush: usize,
    pub stats: SessionStats,
}

impl SessionState {
    /// Applies one library edit and re-infers incrementally.  The result
    /// contains no timing and no generation counter, so the response to
    /// a given edit is deterministic wherever it lands in a stream of
    /// closure-disjoint edits — and identical whether the session runs
    /// alone or interleaved with others (namespaces never alias).
    ///
    /// `inner_threads` is this session's share of the global
    /// [`ThreadBudget`](atlas_core::ThreadBudget): the service pool runs
    /// `outer` sessions concurrently and hands each in-flight edit
    /// `inner` engine threads for its cluster fan-out.
    pub fn apply_edit(
        &mut self,
        edit: &EditRequest,
        config: &ServeConfig,
        clusters: &[Vec<ClassId>],
        inner_threads: usize,
        hot: &Arc<Mutex<HotShards>>,
        recorder: &Recorder,
    ) -> Result<Json, WireError> {
        let mutated = mutate_library(
            &self.program,
            &MutationConfig {
                kind: edit.kind,
                seed: edit.seed,
                target: edit.target.clone(),
            },
        )
        .map_err(|e| {
            self.stats.edits_failed += 1;
            WireError::new(ErrorCode::BadEdit, e.to_string())
        })?;
        let new_program = mutated.program;
        let new_interface = LibraryInterface::from_program(&new_program);
        let atlas_config = AtlasConfig {
            samples_per_cluster: config.samples,
            clusters: clusters.to_vec(),
            num_threads: inner_threads,
            ..AtlasConfig::default()
        };
        // Engine stripe `generation + 2` within this session's ordinal
        // stripe (startup was stripe 1): cluster tracks from different
        // edits — and different sessions — never interleave in the
        // exported trace.
        let lane_base =
            self.ordinal * SESSION_ORDINAL_STRIDE + (self.generation + 2) * SESSION_LANE_STRIDE;
        let engine = Engine::new(&new_program, &new_interface, atlas_config)
            .warm_start(self.warm.warm_clone())
            .with_recorder(recorder.with_lane_base(lane_base));
        let mut session = engine.incremental_session(&self.provenance);
        // The oracle work happens between `ShardStore` calls, so the hot
        // cache's lock is only held for splice/persist bookkeeping —
        // sessions run their clusters concurrently.
        let mut shards = SharedShards::new(Arc::clone(hot), self.ns);
        let outcome = session
            .run_with_shards(&mut shards, crate::daemon::EXTRACTION)
            .map_err(|e| {
                self.stats.edits_failed += 1;
                WireError::new(ErrorCode::Store, e.to_string())
            })?;
        let new_provenance = engine.run_provenance();
        let specs_doc = outcome
            .spec_artifact(&new_program)
            .encode(&new_program)
            .map_err(|e| {
                self.stats.edits_failed += 1;
                WireError::new(ErrorCode::Store, e.to_string())
            })?;
        let collected = session.into_cache();
        drop(engine);

        self.program = new_program;
        self.provenance = new_provenance;
        self.warm = collected;
        self.specs_doc = specs_doc;
        self.fingerprint = outcome.library;
        self.generation += 1;
        self.stats.edits_ok += 1;
        self.edits_since_flush += 1;

        let mut flushed = Json::Null;
        if config.flush_every == 0 || self.edits_since_flush >= config.flush_every {
            let written = self
                .flush(hot)
                .map_err(|e| WireError::new(ErrorCode::Store, e.to_string()))?;
            flushed = Json::Int(written as i64);
        }

        Ok(Json::obj()
            .set("description", mutated.outcome.description.as_str())
            .set("library_fingerprint", hex64_string(self.fingerprint))
            .set(
                "clusters",
                Json::obj()
                    .set("total", outcome.clusters.len())
                    .set("dirty", outcome.dirty_clusters)
                    .set("clean", outcome.clean_clusters)
                    .set("forced_dirty", outcome.forced_dirty),
            )
            .set(
                "executions",
                Json::obj()
                    .set("oracle", outcome.oracle_executions)
                    .set("spliced_verdicts", outcome.spliced_verdicts),
            )
            .set("flushed_shards", flushed))
    }

    /// Persists this session's dirty shards now and resets its
    /// write-behind clock.
    ///
    /// # Errors
    /// Returns the `atlas-store` error of the first failed write.
    pub fn flush(&mut self, hot: &Arc<Mutex<HotShards>>) -> Result<usize, StoreError> {
        let written = hot
            .lock()
            .expect("hot shard cache lock poisoned")
            .flush_namespace(self.ns)?;
        self.edits_since_flush = 0;
        Ok(written)
    }
}
