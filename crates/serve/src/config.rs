//! Service configuration: every `ATLAS_SERVE_*` knob parsed in one place.
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `ATLAS_SERVE_LIBRARY` | registry name of the library under service | `javalib` |
//! | `ATLAS_SAMPLES` | phase-one sampling budget per cluster | `2000` |
//! | `ATLAS_THREADS` | engine worker-thread budget (`0` = all cores) | `0` |
//! | `ATLAS_SERVE_STORE` | closure-sharded store root | `target/atlas-serve` |
//! | `ATLAS_SERVE_SHARDS` | hot-shard LRU budget (resident shards) | `64` |
//! | `ATLAS_SERVE_QUEUE` | request-queue capacity (backpressure bound) | `64` |
//! | `ATLAS_SERVE_FLUSH` | write-behind: flush after this many edits | `8` |
//! | `ATLAS_SERVE_MAX_FRAME` | largest accepted request frame, bytes | `262144` |
//! | `ATLAS_TRACE` | `1`/`true`: record span events for the Chrome-trace sink | off |
//!
//! The sampling/thread knobs deliberately reuse the fleet-wide names
//! (`ATLAS_SAMPLES`, `ATLAS_THREADS`), so a service and a batch run under
//! the same shell see the same budgets — a requirement for the
//! batch-equivalence invariant to be testable from the command line.

use std::path::PathBuf;

/// Default phase-one sampling budget (matches `atlas-bench`'s default).
const DEFAULT_SAMPLES: usize = 2000;

/// The full configuration of one resident service.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Registry name of the library under service.
    pub library: String,
    /// Phase-one sampling budget per class cluster.
    pub samples: usize,
    /// Engine worker-thread budget (`0` = one per core).
    pub threads: usize,
    /// Closure-sharded store root the service owns while resident.
    pub store: PathBuf,
    /// Hot-shard LRU budget: how many closure shards stay decoded in
    /// memory.  Dirty shards are pinned and never count against evictions.
    pub shard_budget: usize,
    /// Bounded request-queue capacity; producers block when it is full.
    pub queue_capacity: usize,
    /// Write-behind schedule: persist dirty shards after this many edits
    /// (and always on `flush`/`shutdown`).  `0` persists after every edit.
    pub flush_every: usize,
    /// Largest accepted request frame in bytes; longer lines are answered
    /// with an `oversized-frame` error and skipped.
    pub max_frame: usize,
    /// Seed for synthetic registry members (fixed: the service serves one
    /// deterministic library content).
    pub synth_seed: u64,
    /// Whether the daemon's recorder collects span events (`ATLAS_TRACE`).
    /// Metrics (counters, histograms) are always collected — they are what
    /// the `stats` op serves — tracing adds the per-span event stream for
    /// the Chrome-trace sink.  Either way recording never changes results.
    pub trace: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            library: "javalib".to_string(),
            samples: DEFAULT_SAMPLES,
            threads: 0,
            store: PathBuf::from("target/atlas-serve"),
            shard_budget: 64,
            queue_capacity: 64,
            flush_every: 8,
            max_frame: 256 * 1024,
            synth_seed: 0x5EED,
            trace: false,
        }
    }
}

impl ServeConfig {
    /// Reads the configuration from the environment (see the
    /// [module docs](self) for the knob table).
    pub fn from_env() -> ServeConfig {
        let defaults = ServeConfig::default();
        ServeConfig {
            library: env_string("ATLAS_SERVE_LIBRARY").unwrap_or(defaults.library),
            samples: env_parse("ATLAS_SAMPLES").unwrap_or(defaults.samples),
            threads: env_parse("ATLAS_THREADS").unwrap_or(defaults.threads),
            store: env_string("ATLAS_SERVE_STORE")
                .map(PathBuf::from)
                .unwrap_or(defaults.store),
            shard_budget: env_parse("ATLAS_SERVE_SHARDS").unwrap_or(defaults.shard_budget),
            queue_capacity: env_parse("ATLAS_SERVE_QUEUE").unwrap_or(defaults.queue_capacity),
            flush_every: env_parse("ATLAS_SERVE_FLUSH").unwrap_or(defaults.flush_every),
            max_frame: env_parse("ATLAS_SERVE_MAX_FRAME").unwrap_or(defaults.max_frame),
            synth_seed: defaults.synth_seed,
            trace: env_flag("ATLAS_TRACE"),
        }
    }

    /// A small configuration suitable for tests: a tiny library, a modest
    /// sampling budget, one engine thread, and the given store root.
    pub fn small(store: PathBuf) -> ServeConfig {
        ServeConfig {
            library: "javalib-lang".to_string(),
            samples: 250,
            threads: 1,
            store,
            ..ServeConfig::default()
        }
    }
}

fn env_string(name: &str) -> Option<String> {
    std::env::var(name).ok().filter(|s| !s.is_empty())
}

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok().and_then(|s| s.parse().ok())
}

/// A boolean knob: `1`, `true`, `yes`, `on` (case-insensitive) enable it.
fn env_flag(name: &str) -> bool {
    std::env::var(name)
        .map(|s| matches!(s.to_ascii_lowercase().as_str(), "1" | "true" | "yes" | "on"))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let config = ServeConfig::default();
        assert_eq!(config.library, "javalib");
        assert!(config.shard_budget > 0);
        assert!(config.queue_capacity > 0);
        assert!(config.max_frame >= 1024);
    }
}
