//! Service configuration: every `ATLAS_SERVE_*` knob parsed in one place.
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `ATLAS_SERVE_LIBRARY` | registry name of the library under service | `javalib` |
//! | `ATLAS_SAMPLES` | phase-one sampling budget per cluster | `2000` |
//! | `ATLAS_THREADS` | engine worker-thread budget (`0` = all cores) | `0` |
//! | `ATLAS_SERVE_WORKERS` | service worker-pool size (`0` = auto) | `0` |
//! | `ATLAS_SERVE_STORE` | closure-sharded store root | `target/atlas-serve` |
//! | `ATLAS_SERVE_SHARDS` | hot-shard LRU budget (resident shards) | `64` |
//! | `ATLAS_SERVE_QUEUE` | request-queue capacity (backpressure bound) | `64` |
//! | `ATLAS_SERVE_FLUSH` | write-behind: flush after this many edits | `8` |
//! | `ATLAS_SERVE_MAX_FRAME` | largest accepted request frame, bytes | `262144` |
//! | `ATLAS_SERVE_MAX_SESSIONS` | open-session cap (incl. the default) | `32` |
//! | `ATLAS_TRACE` | `1`/`true`: record span events for the Chrome-trace sink | off |
//!
//! The sampling/thread knobs deliberately reuse the fleet-wide names
//! (`ATLAS_SAMPLES`, `ATLAS_THREADS`), so a service and a batch run under
//! the same shell see the same budgets — a requirement for the
//! batch-equivalence invariant to be testable from the command line.
//! Parsing goes through [`atlas_core::env`] — the same helpers, and the
//! same fallback-on-malformed error style, as the bench harness.

use atlas_core::env::{env_flag, env_parse, env_path, env_string};
use std::path::PathBuf;

/// Default phase-one sampling budget (matches `atlas-bench`'s default).
const DEFAULT_SAMPLES: usize = 2000;

/// The full configuration of one resident service.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Registry name of the library under service.
    pub library: String,
    /// Phase-one sampling budget per class cluster.
    pub samples: usize,
    /// Engine worker-thread budget (`0` = one per core).  The service
    /// splits it `outer × inner`: pool workers times engine threads per
    /// in-flight edit ([`atlas_core::ThreadBudget::split_workers`]).
    pub threads: usize,
    /// Service worker-pool size; `0` picks a small default, and the
    /// thread budget always clamps it (a budget of 1 runs 1 worker).
    pub workers: usize,
    /// Closure-sharded store root the service owns while resident.
    pub store: PathBuf,
    /// Hot-shard LRU budget: how many closure shards stay decoded in
    /// memory — shared across all session namespaces.  Dirty shards are
    /// pinned and never count against evictions.
    pub shard_budget: usize,
    /// Bounded request-queue capacity; producers block when it is full.
    pub queue_capacity: usize,
    /// Write-behind schedule: persist dirty shards after this many edits
    /// (and always on `flush`/`shutdown`).  `0` persists after every edit.
    pub flush_every: usize,
    /// Largest accepted request frame in bytes; longer lines are answered
    /// with an `oversized-frame` error and skipped.
    pub max_frame: usize,
    /// Open-session cap, counting the default session; `open` past it is
    /// rejected with a `bad-request` error.
    pub max_sessions: usize,
    /// Seed for synthetic registry members (fixed: the service serves one
    /// deterministic library content).
    pub synth_seed: u64,
    /// Whether the daemon's recorder collects span events (`ATLAS_TRACE`).
    /// Metrics (counters, histograms) are always collected — they are what
    /// the `stats` op serves — tracing adds the per-span event stream for
    /// the Chrome-trace sink.  Either way recording never changes results.
    pub trace: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            library: "javalib".to_string(),
            samples: DEFAULT_SAMPLES,
            threads: 0,
            workers: 0,
            store: PathBuf::from("target/atlas-serve"),
            shard_budget: 64,
            queue_capacity: 64,
            flush_every: 8,
            max_frame: 256 * 1024,
            max_sessions: 32,
            synth_seed: 0x5EED,
            trace: false,
        }
    }
}

impl ServeConfig {
    /// Starts a builder chain from the defaults: the `with_*` methods
    /// below consume and return the config, so a bespoke configuration
    /// reads as one expression —
    ///
    /// ```
    /// use atlas_serve::ServeConfig;
    /// let config = ServeConfig::new()
    ///     .with_library("javalib-lang")
    ///     .with_samples(250)
    ///     .with_threads(4)
    ///     .with_workers(2)
    ///     .with_store("target/scratch".into());
    /// assert_eq!(config.workers, 2);
    /// ```
    pub fn new() -> ServeConfig {
        ServeConfig::default()
    }

    /// Sets the registry name of the library under service.
    pub fn with_library(mut self, library: impl Into<String>) -> ServeConfig {
        self.library = library.into();
        self
    }

    /// Sets the phase-one sampling budget per cluster.
    pub fn with_samples(mut self, samples: usize) -> ServeConfig {
        self.samples = samples;
        self
    }

    /// Sets the engine worker-thread budget (`0` = one per core).
    pub fn with_threads(mut self, threads: usize) -> ServeConfig {
        self.threads = threads;
        self
    }

    /// Sets the service worker-pool size (`0` = auto).
    pub fn with_workers(mut self, workers: usize) -> ServeConfig {
        self.workers = workers;
        self
    }

    /// Sets the closure-sharded store root.
    pub fn with_store(mut self, store: PathBuf) -> ServeConfig {
        self.store = store;
        self
    }

    /// Sets the hot-shard LRU budget.
    pub fn with_shard_budget(mut self, shard_budget: usize) -> ServeConfig {
        self.shard_budget = shard_budget;
        self
    }

    /// Sets the bounded request-queue capacity.
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> ServeConfig {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Sets the write-behind flush schedule.
    pub fn with_flush_every(mut self, flush_every: usize) -> ServeConfig {
        self.flush_every = flush_every;
        self
    }

    /// Sets the open-session cap.
    pub fn with_max_sessions(mut self, max_sessions: usize) -> ServeConfig {
        self.max_sessions = max_sessions;
        self
    }

    /// Enables or disables span tracing.
    pub fn with_trace(mut self, trace: bool) -> ServeConfig {
        self.trace = trace;
        self
    }

    /// Reads the configuration from the environment (see the
    /// [module docs](self) for the knob table).
    pub fn from_env() -> ServeConfig {
        let defaults = ServeConfig::default();
        ServeConfig {
            library: env_string("ATLAS_SERVE_LIBRARY").unwrap_or(defaults.library),
            samples: env_parse("ATLAS_SAMPLES").unwrap_or(defaults.samples),
            threads: env_parse("ATLAS_THREADS").unwrap_or(defaults.threads),
            workers: env_parse("ATLAS_SERVE_WORKERS").unwrap_or(defaults.workers),
            store: env_path("ATLAS_SERVE_STORE").unwrap_or(defaults.store),
            shard_budget: env_parse("ATLAS_SERVE_SHARDS").unwrap_or(defaults.shard_budget),
            queue_capacity: env_parse("ATLAS_SERVE_QUEUE").unwrap_or(defaults.queue_capacity),
            flush_every: env_parse("ATLAS_SERVE_FLUSH").unwrap_or(defaults.flush_every),
            max_frame: env_parse("ATLAS_SERVE_MAX_FRAME").unwrap_or(defaults.max_frame),
            max_sessions: env_parse("ATLAS_SERVE_MAX_SESSIONS").unwrap_or(defaults.max_sessions),
            synth_seed: defaults.synth_seed,
            trace: env_flag("ATLAS_TRACE"),
        }
    }

    /// A small configuration suitable for tests: a tiny library, a modest
    /// sampling budget, one engine thread (which also pins the service
    /// pool to a single worker), and the given store root.
    pub fn small(store: PathBuf) -> ServeConfig {
        ServeConfig::new()
            .with_library("javalib-lang")
            .with_samples(250)
            .with_threads(1)
            .with_store(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let config = ServeConfig::default();
        assert_eq!(config.library, "javalib");
        assert!(config.shard_budget > 0);
        assert!(config.queue_capacity > 0);
        assert!(config.max_frame >= 1024);
        assert!(config.max_sessions >= 2);
    }

    #[test]
    fn builder_chains_compose() {
        let config = ServeConfig::new()
            .with_library("javalib-lang")
            .with_workers(3)
            .with_max_sessions(5)
            .with_flush_every(0)
            .with_trace(true);
        assert_eq!(config.library, "javalib-lang");
        assert_eq!(config.workers, 3);
        assert_eq!(config.max_sessions, 5);
        assert_eq!(config.flush_every, 0);
        assert!(config.trace);
        // Untouched knobs keep their defaults.
        assert_eq!(config.samples, ServeConfig::default().samples);
    }
}
