//! The resident inference daemon.
//!
//! ```sh
//! # Speak atlas-serve/1 over stdin/stdout:
//! cargo run --release -p atlas-serve --bin serve
//! # ... or over a Unix socket:
//! cargo run --release -p atlas-serve --bin serve -- --socket /tmp/atlas.sock
//! ```
//!
//! Configuration comes from the `ATLAS_SERVE_*` environment knobs (see
//! `atlas_serve::config`), overridable by flags:
//!
//! * `--library NAME` — registry name of the library under service.
//! * `--samples N` / `--threads N` — budgets.
//! * `--workers N` — service worker-pool size (`0` = auto; the thread
//!   budget clamps it).
//! * `--store ROOT` — closure-sharded store root.
//! * `--shards N` — hot-shard LRU budget.
//! * `--queue N` — request-queue capacity (backpressure bound).
//! * `--flush-every N` — write-behind schedule (`0` = after every edit).
//! * `--max-sessions N` — open-session cap (`atlas-serve/2` `open`).
//! * `--socket PATH` — serve connections on a Unix socket instead of
//!   stdin/stdout (the socket file is replaced if present).
//!
//! Startup writes one human line to stderr, then the daemon answers
//! frames until EOF (stdio mode) or until a `shutdown` request (both
//! modes).  Dirty shards are flushed on shutdown; an orderly EOF also
//! flushes before exit.

use atlas_serve::{ServeConfig, Service};
use std::io::BufReader;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;

fn usage(message: &str) -> ! {
    eprintln!(
        "serve: {message}\nusage: serve [--library NAME] [--samples N] [--threads N] \
         [--workers N] [--store ROOT] [--shards N] [--queue N] [--flush-every N] \
         [--max-sessions N] [--socket PATH]"
    );
    std::process::exit(1);
}

fn main() {
    let mut config = ServeConfig::from_env();
    let mut socket: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--library" => {
                config.library = args
                    .next()
                    .unwrap_or_else(|| usage("--library needs a name"));
            }
            "--samples" => {
                config.samples = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--samples needs a number"));
            }
            "--threads" => {
                config.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a number"));
            }
            "--workers" => {
                config.workers = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--workers needs a number"));
            }
            "--max-sessions" => {
                config.max_sessions = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--max-sessions needs a number"));
            }
            "--store" => {
                config.store =
                    PathBuf::from(args.next().unwrap_or_else(|| usage("--store needs a path")));
            }
            "--shards" => {
                config.shard_budget = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--shards needs a number"));
            }
            "--queue" => {
                config.queue_capacity = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--queue needs a number"));
            }
            "--flush-every" => {
                config.flush_every = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--flush-every needs a number"));
            }
            "--socket" => {
                socket = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--socket needs a path")),
                ));
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }

    let max_frame = config.max_frame;
    eprintln!(
        "serve: {} ({} samples/cluster, threads={}, workers={}, store={}, shards={}, queue={}, \
         flush-every={}, max-sessions={})",
        config.library,
        config.samples,
        config.threads,
        config.workers,
        config.store.display(),
        config.shard_budget,
        config.queue_capacity,
        config.flush_every,
        config.max_sessions,
    );
    let mut service = match Service::spawn(config) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(1);
        }
    };

    match socket {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            if let Err(e) = service.serve_stream(stdin.lock(), stdout, max_frame) {
                eprintln!("serve: stream error: {e}");
            }
            // Orderly EOF without a shutdown request: flush via the
            // protocol so dirty shards survive.
            let handle = service.handle();
            let _ = handle.request_line("{\"op\":\"shutdown\"}");
            service.join();
        }
        Some(path) => {
            let _ = std::fs::remove_file(&path);
            let listener = match UnixListener::bind(&path) {
                Ok(listener) => listener,
                Err(e) => {
                    eprintln!("serve: cannot bind {}: {e}", path.display());
                    std::process::exit(1);
                }
            };
            listener
                .set_nonblocking(true)
                .expect("socket nonblocking mode");
            eprintln!("serve: listening on {}", path.display());
            std::thread::scope(|scope| loop {
                if service.is_shutting_down() {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream
                            .set_nonblocking(false)
                            .expect("connection blocking mode");
                        let writer = match stream.try_clone() {
                            Ok(writer) => writer,
                            Err(e) => {
                                eprintln!("serve: connection clone failed: {e}");
                                continue;
                            }
                        };
                        let service = &service;
                        scope.spawn(move || {
                            let reader = BufReader::new(stream);
                            if let Err(e) = service.serve_stream(reader, writer, max_frame) {
                                eprintln!("serve: connection error: {e}");
                            }
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(50));
                    }
                    Err(e) => {
                        eprintln!("serve: accept error: {e}");
                        break;
                    }
                }
            });
            let _ = std::fs::remove_file(&path);
            service.join();
        }
    }
}
