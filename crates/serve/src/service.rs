//! The service shell around the daemon: a bounded request queue, one
//! worker thread, and frame-stream plumbing.
//!
//! **Backpressure.**  Producers (connection readers, in-process handles)
//! push decoded requests into a bounded blocking queue; when the queue is full
//! the push *blocks*, which for a stream reader means the peer's writes
//! stop being consumed — flow control propagates to the client instead of
//! buffering unboundedly.
//!
//! **Batching.**  The worker drains the queue in batches (everything
//! queued at wake-up, bounded by the queue capacity) and serves the batch
//! in FIFO order from one warm daemon, so a burst of requests pays for
//! one wake-up, not one per request.  Responses preserve request order
//! per connection because the worker is single and FIFO.
//!
//! **Shutdown.**  A `shutdown` request flushes dirty shards, answers
//! `{"stopping": true}`, closes the queue, and fails everything still
//! queued (and everything pushed later) with a `shutting-down` error —
//! no request is silently dropped, and the worker thread exits.

use crate::config::ServeConfig;
use crate::daemon::{Daemon, ServeError};
use crate::proto::{
    decode_request, encode_response, read_frame, salvage_id, Envelope, ErrorCode, Frame, Request,
    Response, WireError,
};
use atlas_obs::{ArgValue, Recorder};
use atlas_store::Json;
use std::collections::VecDeque;
use std::io::{BufRead, Write};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// The observability lane of the worker's request spans: one row — the
/// worker is single and FIFO, so request spans never overlap.
const REQUEST_LANE: u64 = 1;

/// One queued unit of work: the decode outcome of a frame plus the reply
/// channel.  Malformed frames travel the queue too, so responses keep the
/// arrival order of their requests.
struct Job {
    /// The decoded request, or the structured decode error.
    envelope: Result<Envelope, WireError>,
    /// The frame's correlation id, when one could be extracted.
    id: Option<Json>,
    /// Where the response goes.
    reply: mpsc::Sender<Response>,
    /// When the job entered the queue — the start of its queue-wait.
    enqueued: Instant,
}

/// A blocking bounded MPSC queue: `push` blocks while full (the
/// backpressure bound), `pop_batch` blocks while empty, `close` wakes
/// everyone and fails further pushes.
struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

struct QueueState<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Blocks while the queue is full; returns the item back when the
    /// queue has been closed.
    fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < state.capacity {
                state.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).expect("queue lock poisoned");
        }
    }

    /// Blocks while the queue is empty and open; drains everything queued
    /// (up to `max`) once something arrives.  `None` means closed *and*
    /// drained — the worker's exit condition.
    fn pop_batch(&self, max: usize) -> Option<Vec<T>> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if !state.items.is_empty() {
                let take = state.items.len().min(max.max(1));
                let batch: Vec<T> = state.items.drain(..take).collect();
                self.not_full.notify_all();
                return Some(batch);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock poisoned");
        }
    }

    /// Closes the queue: further pushes fail, blocked parties wake.
    fn close(&self) {
        let mut state = self.state.lock().expect("queue lock poisoned");
        state.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock poisoned").closed
    }
}

/// Batch counters kept by the worker and injected into `stats` responses.
#[derive(Debug, Clone, Copy, Default)]
struct BatchStats {
    batches: u64,
    jobs: u64,
    max_batch: usize,
}

/// A running resident service: one daemon, one worker thread, one bounded
/// queue.  Clone [`ServeHandle`]s to talk to it from any thread; call
/// [`Service::serve_stream`] to speak the wire protocol over any
/// reader/writer pair (stdin/stdout, a Unix-socket connection, an
/// in-memory pipe in tests).
pub struct Service {
    queue: Arc<BoundedQueue<Job>>,
    worker: Option<JoinHandle<()>>,
    /// A clone of the daemon's recorder, kept on this side of the worker
    /// boundary so callers can export sinks after shutdown.
    recorder: Recorder,
}

/// An in-process client of a running [`Service`].
#[derive(Clone)]
pub struct ServeHandle {
    queue: Arc<BoundedQueue<Job>>,
}

fn shutting_down(id: Option<Json>) -> Response {
    Response::err(
        id,
        WireError::new(ErrorCode::ShuttingDown, "the service is shutting down"),
    )
}

impl Service {
    /// Builds the daemon (see [`Daemon::new`] for the warm-up semantics)
    /// and starts the worker thread.
    ///
    /// # Errors
    /// Returns [`ServeError`] on an unknown library name or a store
    /// failure during warm-up.
    pub fn spawn(config: ServeConfig) -> Result<Service, ServeError> {
        let mut daemon = Daemon::new(config)?;
        let recorder = daemon.recorder().clone();
        let worker_recorder = recorder.clone();
        let queue: Arc<BoundedQueue<Job>> =
            Arc::new(BoundedQueue::new(daemon.config().queue_capacity));
        let batch_max = daemon.config().queue_capacity;
        let worker_queue = Arc::clone(&queue);
        let worker = std::thread::spawn(move || {
            let recorder = worker_recorder;
            let mut batches = BatchStats::default();
            while let Some(batch) = worker_queue.pop_batch(batch_max) {
                batches.batches += 1;
                batches.jobs += batch.len() as u64;
                batches.max_batch = batches.max_batch.max(batch.len());
                let mut jobs = batch.into_iter();
                for job in jobs.by_ref() {
                    // Queue-wait: enqueue to the moment the worker picks
                    // the job up — the latency the bounded queue adds on
                    // top of service time.
                    recorder.record_duration("serve.queue_wait_ns", job.enqueued.elapsed());
                    let mut lane = recorder.lane(REQUEST_LANE);
                    let span = lane.begin();
                    let op: &'static str = match &job.envelope {
                        Ok(envelope) => envelope.request.op(),
                        Err(_) => "invalid",
                    };
                    let response = match &job.envelope {
                        Err(error) => {
                            recorder.count("serve.proto_errors", 1);
                            recorder.count(&format!("serve.errors.{}", error.code.as_str()), 1);
                            Response::err(job.id.clone(), error.clone())
                        }
                        Ok(envelope) => {
                            if matches!(envelope.request, Request::Shutdown) {
                                let response = match daemon.flush() {
                                    Ok(_) => daemon.handle(envelope),
                                    Err(e) => Response::err(
                                        envelope.id.clone(),
                                        WireError::new(ErrorCode::Store, e.to_string()),
                                    ),
                                };
                                lane.end(
                                    span,
                                    "serve",
                                    "request",
                                    vec![("op", ArgValue::from(op))],
                                );
                                let _ = job.reply.send(response);
                                worker_queue.close();
                                // Fail the rest of this batch, then drain
                                // the queue: nothing goes unanswered.
                                for job in jobs {
                                    let _ = job.reply.send(shutting_down(job.id));
                                }
                                while let Some(rest) = worker_queue.pop_batch(batch_max) {
                                    for job in rest {
                                        let _ = job.reply.send(shutting_down(job.id));
                                    }
                                }
                                return;
                            }
                            let mut response = daemon.handle(envelope);
                            if matches!(envelope.request, Request::Stats) {
                                if let Ok(result) = &mut response.outcome {
                                    *result = result.clone().set(
                                        "service",
                                        Json::obj()
                                            .set("batches", batches.batches as i64)
                                            .set("batched_jobs", batches.jobs as i64)
                                            .set("max_batch", batches.max_batch),
                                    );
                                }
                            }
                            response
                        }
                    };
                    lane.end(span, "serve", "request", vec![("op", ArgValue::from(op))]);
                    let _ = job.reply.send(response);
                }
            }
        });
        Ok(Service {
            queue,
            worker: Some(worker),
            recorder,
        })
    }

    /// The service's observability handle — a clone of the daemon's
    /// recorder, usable (e.g. for [`atlas_obs::chrome_trace`] or
    /// [`atlas_obs::metrics_snapshot`]) even after the worker has exited.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// A cloneable in-process handle to this service.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            queue: Arc::clone(&self.queue),
        }
    }

    /// Whether the service has begun shutting down.
    pub fn is_shutting_down(&self) -> bool {
        self.queue.is_closed()
    }

    /// Serves the wire protocol over a frame stream until EOF (or
    /// shutdown + EOF): the calling thread reads and decodes frames, a
    /// spawned thread writes responses in request order.  A full queue
    /// blocks the reader — backpressure reaches the peer as an unread
    /// stream.
    ///
    /// # Errors
    /// Propagates I/O errors of the underlying reader.
    pub fn serve_stream<R, W>(
        &self,
        mut reader: R,
        writer: W,
        max_frame: usize,
    ) -> std::io::Result<()>
    where
        R: BufRead,
        W: Write + Send + 'static,
    {
        let (tx, rx) = mpsc::channel::<Response>();
        let writer_thread = std::thread::spawn(move || {
            let mut writer = writer;
            for response in rx {
                if writeln!(writer, "{}", encode_response(&response)).is_err() {
                    break;
                }
                let _ = writer.flush();
            }
        });
        loop {
            let job = match read_frame(&mut reader, max_frame)? {
                Frame::Eof => break,
                Frame::Oversized => Job {
                    envelope: Err(WireError::new(
                        ErrorCode::OversizedFrame,
                        format!("frame longer than {max_frame} bytes"),
                    )),
                    id: None,
                    reply: tx.clone(),
                    enqueued: Instant::now(),
                },
                Frame::Line(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    match decode_request(&line) {
                        Ok(envelope) => Job {
                            id: envelope.id.clone(),
                            envelope: Ok(envelope),
                            reply: tx.clone(),
                            enqueued: Instant::now(),
                        },
                        Err(error) => Job {
                            id: salvage_id(&line),
                            envelope: Err(error),
                            reply: tx.clone(),
                            enqueued: Instant::now(),
                        },
                    }
                }
            };
            if let Err(job) = self.queue.push(job) {
                let _ = tx.send(shutting_down(job.id));
            }
        }
        drop(tx);
        let _ = writer_thread.join();
        Ok(())
    }

    /// Waits for the worker to exit (after a `shutdown` request).  Call
    /// once; later calls are no-ops.
    pub fn join(&mut self) {
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // A dropped service stops accepting work; the worker drains what
        // is queued (answering with errors past a shutdown, normally
        // otherwise) and exits.
        self.queue.close();
        self.join();
    }
}

impl ServeHandle {
    /// Sends one request and blocks for its response.  Shutdown shows up
    /// as a `shutting-down` error response, never a panic.
    pub fn request(&self, envelope: Envelope) -> Response {
        let (tx, rx) = mpsc::channel::<Response>();
        let id = envelope.id.clone();
        let job = Job {
            id: id.clone(),
            envelope: Ok(envelope),
            reply: tx,
            enqueued: Instant::now(),
        };
        if self.queue.push(job).is_err() {
            return shutting_down(id);
        }
        rx.recv().unwrap_or_else(|_| shutting_down(None))
    }

    /// Decodes one frame line and sends it like [`ServeHandle::request`];
    /// decode errors come back as structured error responses, exactly as
    /// they would over a stream.
    pub fn request_line(&self, line: &str) -> Response {
        match decode_request(line) {
            Ok(envelope) => self.request(envelope),
            Err(error) => {
                let id = salvage_id(line);
                let (tx, rx) = mpsc::channel::<Response>();
                let job = Job {
                    id: id.clone(),
                    envelope: Err(error),
                    reply: tx,
                    enqueued: Instant::now(),
                };
                if self.queue.push(job).is_err() {
                    return shutting_down(id);
                }
                rx.recv().unwrap_or_else(|_| shutting_down(None))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_queue_blocks_producers_and_drains_in_batches() {
        let queue: Arc<BoundedQueue<usize>> = Arc::new(BoundedQueue::new(2));
        queue.push(1).unwrap();
        queue.push(2).unwrap();
        // A third push must block until the consumer drains; prove it by
        // pushing from a thread and popping from here.
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push(3).is_ok())
        };
        // The producer may or may not have blocked yet; popping releases
        // it either way.  Three items were pushed in total; drain them.
        let mut popped = Vec::new();
        while popped.len() < 3 {
            popped.extend(queue.pop_batch(16).expect("open queue"));
        }
        assert!(producer.join().expect("producer"));
        popped.sort_unstable();
        assert_eq!(popped, vec![1, 2, 3]);
        queue.close();
        assert!(queue.pop_batch(16).is_none());
        assert_eq!(queue.push(9), Err(9));
    }
}
