//! The service shell around the daemon: a bounded session-aware queue,
//! a pool of worker threads, and frame-stream plumbing.
//!
//! **Backpressure.**  Producers (connection readers, in-process handles)
//! push decoded requests into a bounded blocking queue; when the queue is
//! full the push *blocks*, which for a stream reader means the peer's
//! writes stop being consumed — flow control propagates to the client
//! instead of buffering unboundedly.
//!
//! **Scheduling.**  Every job carries a *key* — the session it addresses
//! (the default session for /1 traffic and undecodable frames).  Workers
//! claim the oldest job whose key has nothing in flight, so requests
//! from different sessions run concurrently while each session's stream
//! stays strictly FIFO: a session never sees its own requests reordered,
//! and /1 clients (one session, and a budget-of-one config pins the pool
//! to one worker) keep the exact single-worker semantics.  Responses to
//! *different* sessions may interleave on a shared connection; clients
//! correlate by `id`.
//!
//! **Parallelism.**  The pool size is `outer` of the daemon's
//! [`ThreadBudget`](atlas_core::ThreadBudget) split; each in-flight edit
//! runs its engine with the `inner` share, so concurrent sessions divide
//! the machine instead of oversubscribing it.
//!
//! **Shutdown.**  A `shutdown` request runs *exclusively*: it waits for
//! every in-flight job to finish, and no job queued behind it starts
//! first.  It flushes all sessions, answers `{"stopping": true}`, and
//! puts the queue into draining: everything still queued (and everything
//! pushed later) fails with a `shutting-down` error — no request is
//! silently dropped — and the workers exit.

use crate::config::ServeConfig;
use crate::daemon::{Daemon, ServeError, DEFAULT_SESSION};
use crate::proto::{
    decode_request, encode_response, read_frame, salvage_id, salvage_session, Envelope, ErrorCode,
    Frame, Request, Response, WireError,
};
use crate::session::REQUEST_LANE;
use atlas_obs::{ArgValue, Recorder};
use atlas_store::Json;
use std::collections::VecDeque;
use std::io::{BufRead, Write};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// The scheduling key of `open` requests that do not claim a name: a
/// spelling no valid session name can collide with, so anonymous opens
/// serialize only with each other.
const ANON_OPEN_KEY: &str = "\u{1}open";

/// One queued unit of work: the decode outcome of a frame, its
/// scheduling key, and the reply channel.  Malformed frames travel the
/// queue too (keyed by whatever session they salvage), so responses keep
/// the per-session arrival order of their requests.
struct Job {
    /// The decoded request, or the structured decode error.
    envelope: Result<Envelope, WireError>,
    /// The frame's correlation id, when one could be extracted.
    id: Option<Json>,
    /// The session stream this job belongs to — at most one job per key
    /// is ever in flight.
    key: String,
    /// Shutdown runs exclusively: nothing in flight, nothing queued
    /// before it pending, nothing behind it started first.
    shutdown: bool,
    /// Where the response goes.
    reply: mpsc::Sender<Response>,
    /// When the job entered the queue — the start of its queue-wait.
    enqueued: Instant,
}

impl Job {
    fn new(
        envelope: Result<Envelope, WireError>,
        id: Option<Json>,
        salvaged_session: Option<String>,
        reply: mpsc::Sender<Response>,
    ) -> Job {
        let (key, shutdown) = match &envelope {
            Ok(env) => (
                env.session.clone().unwrap_or_else(|| match env.request {
                    Request::Open => ANON_OPEN_KEY.to_string(),
                    _ => DEFAULT_SESSION.to_string(),
                }),
                matches!(env.request, Request::Shutdown),
            ),
            Err(_) => (
                salvaged_session.unwrap_or_else(|| DEFAULT_SESSION.to_string()),
                false,
            ),
        };
        Job {
            envelope,
            id,
            key,
            shutdown,
            reply,
            enqueued: Instant::now(),
        }
    }
}

/// What a worker gets back from [`SessionQueue::claim`].
enum Claim {
    /// Serve this job, then call [`SessionQueue::complete`] with its key.
    Serve(Job),
    /// The queue is draining after a shutdown: answer `shutting-down`.
    Drain(Job),
    /// Closed and empty — the worker exits.
    Exit,
}

/// A blocking bounded MPMC queue with per-key mutual exclusion: `push`
/// blocks while full (the backpressure bound), `claim` hands out the
/// oldest job whose key is idle, `close` wakes everyone and fails
/// further pushes.
struct SessionQueue {
    state: Mutex<QueueState>,
    not_full: Condvar,
    not_empty: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    capacity: usize,
    /// Keys with a job in flight on some worker.
    busy: Vec<String>,
    in_flight: usize,
    closed: bool,
    /// Set by the shutdown worker: remaining jobs are failed, not served.
    draining: bool,
    served: u64,
    max_in_flight: usize,
}

impl SessionQueue {
    fn new(capacity: usize) -> SessionQueue {
        SessionQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                capacity: capacity.max(1),
                busy: Vec::new(),
                in_flight: 0,
                closed: false,
                draining: false,
                served: 0,
                max_in_flight: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Blocks while the queue is full; returns the job back when the
    /// queue has been closed.
    // The Err payload is the unconsumed job itself, handed back so the
    // producer can answer it with `shutting-down` — not an error type to
    // shrink.
    #[allow(clippy::result_large_err)]
    fn push(&self, job: Job) -> Result<(), Job> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if state.closed {
                return Err(job);
            }
            if state.jobs.len() < state.capacity {
                state.jobs.push_back(job);
                self.not_empty.notify_all();
                return Ok(());
            }
            state = self.not_full.wait(state).expect("queue lock poisoned");
        }
    }

    /// Blocks until there is something for this worker to do.  The claim
    /// scan walks arrival order and stops at the first job whose key is
    /// idle; it never looks past a queued shutdown, and claims the
    /// shutdown itself only from the front of the queue with nothing in
    /// flight — the exclusivity barrier.
    fn claim(&self) -> Claim {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if state.draining {
                return match state.jobs.pop_front() {
                    Some(job) => {
                        self.not_full.notify_all();
                        Claim::Drain(job)
                    }
                    None => Claim::Exit,
                };
            }
            let mut claim = None;
            for (i, job) in state.jobs.iter().enumerate() {
                if job.shutdown {
                    if i == 0 && state.in_flight == 0 {
                        claim = Some(0);
                    }
                    break;
                }
                if !state.busy.iter().any(|k| k == &job.key) {
                    claim = Some(i);
                    break;
                }
            }
            if let Some(i) = claim {
                let job = state.jobs.remove(i).expect("claimed index in bounds");
                state.busy.push(job.key.clone());
                state.in_flight += 1;
                state.served += 1;
                state.max_in_flight = state.max_in_flight.max(state.in_flight);
                self.not_full.notify_all();
                return Claim::Serve(job);
            }
            if state.closed && state.jobs.is_empty() {
                return Claim::Exit;
            }
            state = self.not_empty.wait(state).expect("queue lock poisoned");
        }
    }

    /// Releases a claimed key.  Call after the response has been sent,
    /// so a session's next job cannot start (and answer) before the
    /// previous response is on its way.
    fn complete(&self, key: &str) {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if let Some(pos) = state.busy.iter().position(|k| k == key) {
            state.busy.remove(pos);
        }
        state.in_flight -= 1;
        self.not_empty.notify_all();
    }

    /// Enters drain mode (shutdown accepted): further pushes fail and
    /// every queued job is answered with `shutting-down`.
    fn begin_drain(&self) {
        let mut state = self.state.lock().expect("queue lock poisoned");
        state.closed = true;
        state.draining = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Closes the queue: further pushes fail, blocked parties wake.
    /// Already-queued jobs are still served (the drop path).
    fn close(&self) {
        let mut state = self.state.lock().expect("queue lock poisoned");
        state.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock poisoned").closed
    }

    fn pool_stats(&self) -> (u64, usize) {
        let state = self.state.lock().expect("queue lock poisoned");
        (state.served, state.max_in_flight)
    }
}

/// A running resident service: one daemon, a worker pool, one bounded
/// session-aware queue.  Clone [`ServeHandle`]s to talk to it from any
/// thread; call [`Service::serve_stream`] to speak the wire protocol
/// over any reader/writer pair (stdin/stdout, a Unix-socket connection,
/// an in-memory pipe in tests).
pub struct Service {
    queue: Arc<SessionQueue>,
    workers: Vec<JoinHandle<()>>,
    /// A clone of the daemon's recorder, kept on this side of the worker
    /// boundary so callers can export sinks after shutdown.
    recorder: Recorder,
}

/// An in-process client of a running [`Service`].
#[derive(Clone)]
pub struct ServeHandle {
    queue: Arc<SessionQueue>,
}

fn shutting_down(id: Option<Json>) -> Response {
    Response::err(
        id,
        WireError::new(ErrorCode::ShuttingDown, "the service is shutting down"),
    )
}

fn worker_loop(queue: Arc<SessionQueue>, daemon: Arc<Daemon>, recorder: Recorder) {
    loop {
        match queue.claim() {
            Claim::Exit => return,
            Claim::Drain(job) => {
                let _ = job.reply.send(shutting_down(job.id));
            }
            Claim::Serve(job) => {
                // Queue-wait: enqueue to the moment a worker claims the
                // job — the latency the scheduler adds on top of service
                // time (including waits for the session's previous job).
                recorder.record_duration("serve.queue_wait_ns", job.enqueued.elapsed());
                let response = match &job.envelope {
                    Err(error) => {
                        recorder.count("serve.proto_errors", 1);
                        recorder.count(&format!("serve.errors.{}", error.code.as_str()), 1);
                        // Valid requests get their span inside the
                        // daemon, on their session's lane stripe; an
                        // undecodable frame has no session, so it lands
                        // on the base request lane.
                        let mut lane = recorder.lane(REQUEST_LANE);
                        let span = lane.begin();
                        let response = Response::err(job.id.clone(), error.clone());
                        lane.end(
                            span,
                            "serve",
                            "request",
                            vec![("op", ArgValue::from("invalid"))],
                        );
                        response
                    }
                    Ok(envelope) if matches!(envelope.request, Request::Shutdown) => {
                        // Exclusive by the claim rule: nothing in
                        // flight, so flushing every session races no
                        // edit.
                        let response = match daemon.flush() {
                            Ok(_) => daemon.handle(envelope),
                            Err(e) => Response::err(
                                envelope.id.clone(),
                                WireError::new(ErrorCode::Store, e.to_string()),
                            ),
                        };
                        queue.begin_drain();
                        response
                    }
                    Ok(envelope) => {
                        let mut response = daemon.handle(envelope);
                        if matches!(envelope.request, Request::Stats) {
                            if let Ok(result) = &mut response.outcome {
                                let (served, max_in_flight) = queue.pool_stats();
                                *result = result.clone().set(
                                    "service",
                                    Json::obj()
                                        .set("workers", daemon.workers())
                                        .set("served", served as i64)
                                        .set("max_in_flight", max_in_flight),
                                );
                            }
                        }
                        response
                    }
                };
                let _ = job.reply.send(response);
                queue.complete(&job.key);
            }
        }
    }
}

impl Service {
    /// Builds the daemon (see [`Daemon::new`] for the warm-up semantics)
    /// and starts the worker pool — `outer` of the thread-budget split,
    /// so a budget of one thread yields one /1-style FIFO worker.
    ///
    /// # Errors
    /// Returns [`ServeError`] on an unknown library name or a store
    /// failure during warm-up.
    pub fn spawn(config: ServeConfig) -> Result<Service, ServeError> {
        let daemon = Arc::new(Daemon::new(config)?);
        let recorder = daemon.recorder().clone();
        let queue = Arc::new(SessionQueue::new(daemon.config().queue_capacity));
        let workers = (0..daemon.workers())
            .map(|_| {
                let queue = Arc::clone(&queue);
                let daemon = Arc::clone(&daemon);
                let recorder = recorder.clone();
                std::thread::spawn(move || worker_loop(queue, daemon, recorder))
            })
            .collect();
        Ok(Service {
            queue,
            workers,
            recorder,
        })
    }

    /// The service's observability handle — a clone of the daemon's
    /// recorder, usable (e.g. for [`atlas_obs::chrome_trace`] or
    /// [`atlas_obs::metrics_snapshot`]) even after the workers have
    /// exited.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// A cloneable in-process handle to this service.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            queue: Arc::clone(&self.queue),
        }
    }

    /// Whether the service has begun shutting down.
    pub fn is_shutting_down(&self) -> bool {
        self.queue.is_closed()
    }

    /// Serves the wire protocol over a frame stream until EOF (or
    /// shutdown + EOF): the calling thread reads and decodes frames, a
    /// spawned thread writes responses as they complete.  Responses stay
    /// in request order *per session*; different sessions may interleave
    /// (correlate by `id`).  A full queue blocks the reader —
    /// backpressure reaches the peer as an unread stream.
    ///
    /// # Errors
    /// Propagates I/O errors of the underlying reader.
    pub fn serve_stream<R, W>(
        &self,
        mut reader: R,
        writer: W,
        max_frame: usize,
    ) -> std::io::Result<()>
    where
        R: BufRead,
        W: Write + Send + 'static,
    {
        let (tx, rx) = mpsc::channel::<Response>();
        let writer_thread = std::thread::spawn(move || {
            let mut writer = writer;
            for response in rx {
                if writeln!(writer, "{}", encode_response(&response)).is_err() {
                    break;
                }
                let _ = writer.flush();
            }
        });
        loop {
            let job = match read_frame(&mut reader, max_frame)? {
                Frame::Eof => break,
                Frame::Oversized => Job::new(
                    Err(WireError::new(
                        ErrorCode::OversizedFrame,
                        format!("frame longer than {max_frame} bytes"),
                    )),
                    None,
                    None,
                    tx.clone(),
                ),
                Frame::Line(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    match decode_request(&line) {
                        Ok(envelope) => {
                            let id = envelope.id.clone();
                            Job::new(Ok(envelope), id, None, tx.clone())
                        }
                        Err(error) => Job::new(
                            Err(error),
                            salvage_id(&line),
                            salvage_session(&line),
                            tx.clone(),
                        ),
                    }
                }
            };
            if let Err(job) = self.queue.push(job) {
                let _ = tx.send(shutting_down(job.id));
            }
        }
        drop(tx);
        let _ = writer_thread.join();
        Ok(())
    }

    /// Waits for the workers to exit (after a `shutdown` request).  Call
    /// once; later calls are no-ops.
    pub fn join(&mut self) {
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // A dropped service stops accepting work; the workers drain what
        // is queued (answering with errors past a shutdown, normally
        // otherwise) and exit.
        self.queue.close();
        self.join();
    }
}

impl ServeHandle {
    /// Sends one request and blocks for its response.  Shutdown shows up
    /// as a `shutting-down` error response, never a panic.
    pub fn request(&self, envelope: Envelope) -> Response {
        let (tx, rx) = mpsc::channel::<Response>();
        let id = envelope.id.clone();
        let job = Job::new(Ok(envelope), id.clone(), None, tx);
        if self.queue.push(job).is_err() {
            return shutting_down(id);
        }
        rx.recv().unwrap_or_else(|_| shutting_down(None))
    }

    /// Decodes one frame line and sends it like [`ServeHandle::request`];
    /// decode errors come back as structured error responses, exactly as
    /// they would over a stream.
    pub fn request_line(&self, line: &str) -> Response {
        match decode_request(line) {
            Ok(envelope) => self.request(envelope),
            Err(error) => {
                let id = salvage_id(line);
                let (tx, rx) = mpsc::channel::<Response>();
                let job = Job::new(Err(error), id.clone(), salvage_session(line), tx);
                if self.queue.push(job).is_err() {
                    return shutting_down(id);
                }
                rx.recv().unwrap_or_else(|_| shutting_down(None))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn job(key: &str, shutdown: bool) -> (Job, mpsc::Receiver<Response>) {
        let (tx, rx) = mpsc::channel();
        let request = if shutdown {
            Request::Shutdown
        } else {
            Request::Ping
        };
        let mut job = Job::new(Ok(Envelope::of(request)), None, None, tx);
        job.key = key.to_string();
        (job, rx)
    }

    #[test]
    fn claims_skip_busy_sessions_but_keep_them_fifo() {
        let queue = SessionQueue::new(8);
        let (a1, _r1) = job("a", false);
        let (a2, _r2) = job("a", false);
        let (b1, _r3) = job("b", false);
        queue.push(a1).unwrap_or_else(|_| panic!("open queue"));
        queue.push(a2).unwrap_or_else(|_| panic!("open queue"));
        queue.push(b1).unwrap_or_else(|_| panic!("open queue"));
        // First claim: the oldest job (session a).
        let first = match queue.claim() {
            Claim::Serve(job) => job,
            _ => panic!("expected a job"),
        };
        assert_eq!(first.key, "a");
        // Second claim skips a's second job (a is busy) and serves b.
        let second = match queue.claim() {
            Claim::Serve(job) => job,
            _ => panic!("expected a job"),
        };
        assert_eq!(second.key, "b");
        // Completing a releases its stream; the next claim is a's
        // second job, preserving per-session FIFO.
        queue.complete(&first.key);
        let third = match queue.claim() {
            Claim::Serve(job) => job,
            _ => panic!("expected a job"),
        };
        assert_eq!(third.key, "a");
    }

    #[test]
    fn shutdown_claims_are_exclusive_and_nothing_overtakes_them() {
        let queue = Arc::new(SessionQueue::new(8));
        let (a1, _r1) = job("a", false);
        queue.push(a1).unwrap_or_else(|_| panic!("open queue"));
        let in_flight = match queue.claim() {
            Claim::Serve(job) => job,
            _ => panic!("expected a job"),
        };
        let (stop, _r2) = job("stop", true);
        let (b1, _r3) = job("b", false);
        queue.push(stop).unwrap_or_else(|_| panic!("open queue"));
        queue.push(b1).unwrap_or_else(|_| panic!("open queue"));
        // A second worker must not claim b (queued behind the shutdown)
        // nor the shutdown itself (a is still in flight).
        let waiter = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || match queue.claim() {
                Claim::Serve(job) => job.key,
                _ => panic!("expected a job"),
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        assert!(!waiter.is_finished(), "shutdown barrier was overtaken");
        // Finishing the in-flight job unblocks exactly the shutdown.
        queue.complete(&in_flight.key);
        assert_eq!(waiter.join().expect("waiter"), "stop");
        // Draining fails the rest and then exits the workers.
        queue.begin_drain();
        assert!(matches!(queue.claim(), Claim::Drain(_)));
        assert!(matches!(queue.claim(), Claim::Exit));
        let (late, _r4) = job("c", false);
        assert!(queue.push(late).is_err());
    }
}
