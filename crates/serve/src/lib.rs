//! # atlas-serve
//!
//! The resident inference service: everything else in this workspace is a
//! batch binary that cold-loads a store, runs once, and exits; this crate
//! keeps an inference engine *resident*, with closure shards hot in
//! memory, and serves a continuous stream of library edits and
//! specification queries over a small newline-delimited JSON protocol
//! (`atlas-serve/1`, [`proto`]).
//!
//! The moving parts:
//!
//! * [`proto`] — the versioned wire protocol: request/response codec,
//!   compact rendering, bounded frame reading.  Malformed input maps to
//!   structured error responses, never panics.
//! * [`shards`] — [`HotShards`]: an LRU of decoded closure shards
//!   implementing `atlas_core::ShardStore`, with dirty-shard pinning and
//!   write-behind flushing (atomic renames via `atlas-store`).
//! * [`daemon`] — [`Daemon`]: the single-threaded service core.  Each
//!   edit runs `Engine::incremental_session` against the previous edit's
//!   provenance, warm-started from a rolling verdict cache, splicing
//!   clean clusters from the hot shards.
//! * [`service`] — [`Service`]: the bounded request queue (backpressure),
//!   the batching worker thread, stream plumbing, and the in-process
//!   [`ServeHandle`] used by tests and the bench harness.
//! * [`config`] — [`ServeConfig`]: the `ATLAS_SERVE_*` environment knobs.
//!
//! The contract the test suite pins down: the service is observationally
//! equivalent to the batch engine.  After any sequence of edits, a
//! `specs` query returns an artifact byte-identical to a cold batch run
//! over the equivalently edited program, whatever the interleaving of
//! queries, flushes, cache evictions, and restarts in between.

#![warn(missing_docs)]

pub mod config;
pub mod daemon;
pub mod proto;
pub mod service;
pub mod shards;

pub use config::ServeConfig;
pub use daemon::{Daemon, ServeError, EXTRACTION};
pub use proto::{
    decode_request, decode_response, encode_request, encode_response, parse_mutation_kind,
    read_frame, render_compact, salvage_id, EditRequest, Envelope, ErrorCode, Frame, Request,
    Response, WireError, WIRE_SCHEMA,
};
pub use service::{ServeHandle, Service};
pub use shards::{HotShards, ShardCacheStats};
