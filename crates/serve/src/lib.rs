//! # atlas-serve
//!
//! The resident inference service: everything else in this workspace is a
//! batch binary that cold-loads a store, runs once, and exits; this crate
//! keeps an inference engine *resident*, with closure shards hot in
//! memory, and serves a continuous stream of library edits and
//! specification queries over a small newline-delimited JSON protocol
//! (`atlas-serve/2`, with `atlas-serve/1` clients served unchanged —
//! [`proto`]).
//!
//! The moving parts:
//!
//! * [`proto`] — the versioned wire protocol: request/response codec,
//!   compact rendering, bounded frame reading.  `/2` adds first-class
//!   sessions (`open`/`close`, a `session` field on every scoped op);
//!   frames without a session address the default session and get
//!   byte-identical `/1` responses.  Malformed input maps to structured
//!   error responses, never panics.
//! * [`shards`] — [`HotShards`]: an LRU of decoded closure shards
//!   implementing `atlas_core::ShardStore`, with dirty-shard pinning,
//!   write-behind flushing (atomic renames via `atlas-store`), and one
//!   *namespace* per session sharing a single LRU budget.
//! * `session` — the per-session state: program, provenance chain,
//!   rolling warm verdict cache, current spec artifact, namespace.
//! * [`daemon`] — [`Daemon`]: the internally-locked service core.  Each
//!   edit runs `Engine::incremental_session` against its session's
//!   previous provenance, warm-started from the session's verdict cache,
//!   splicing clean clusters from the hot shards.  New sessions seed
//!   from the byte-captured post-startup store.
//! * [`service`] — [`Service`]: the bounded session-aware queue
//!   (backpressure), the worker pool (`outer` of the thread-budget
//!   split; each in-flight edit gets the `inner` share), stream
//!   plumbing, and the in-process [`ServeHandle`] used by tests and the
//!   bench harness.
//! * [`config`] — [`ServeConfig`]: the `ATLAS_SERVE_*` environment
//!   knobs, shared-parsed via [`atlas_core::env`], with a builder-style
//!   constructor for in-process use.
//!
//! The contract the test suite pins down: the service is observationally
//! equivalent to the batch engine, *per session*.  After any sequence of
//! edits, a session's `specs` query returns an artifact byte-identical
//! to a cold batch run over the equivalently edited program, whatever
//! the interleaving of other sessions' edits, queries, flushes, cache
//! evictions, and restarts in between.

#![warn(missing_docs)]

pub mod config;
pub mod daemon;
pub mod proto;
pub mod service;
mod session;
pub mod shards;

pub use config::ServeConfig;
pub use daemon::{Daemon, ServeError, DEFAULT_SESSION, EXTRACTION};
pub use proto::{
    decode_request, decode_response, encode_request, encode_response, parse_mutation_kind,
    read_frame, render_compact, salvage_id, salvage_session, EditRequest, Envelope, ErrorCode,
    Frame, Request, Response, WireError, WIRE_SCHEMA, WIRE_SCHEMA_V2,
};
pub use service::{ServeHandle, Service};
pub use shards::{HotShards, NamespaceShards, ShardCacheStats, SharedShards, ROOT_NAMESPACE};
