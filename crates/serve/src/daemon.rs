//! The resident daemon: a table of independent sessions over one shared
//! hot shard cache, plus the pristine base state new sessions seed from.
//!
//! `atlas-serve/2` makes the daemon multi-session.  Every request is
//! routed to a session — the one named by its `session` field, or the
//! reserved **default session** when the field is absent, which is how
//! unmodified `atlas-serve/1` clients keep working unchanged:
//!
//! * **Startup** builds the configured library and runs one incremental
//!   session against its own provenance in the store's *root namespace*.
//!   Over a warm store every cluster splices (zero executions); over a
//!   cold store every cluster is forced-dirty, runs, and seeds the store
//!   — so a restart is exactly a cache-warming, never a semantic event.
//!   The post-flush shard files are captured byte-for-byte as the
//!   `BaseState` seed set.
//! * **`open`** registers a new session: a fresh namespace under
//!   `<store>/sessions/<name>/` seeded with the captured base shard
//!   bytes, plus clones of the base program, provenance, warm cache and
//!   specs document.  A session opened at any point therefore behaves
//!   byte-identically to the same session on a freshly-started daemon —
//!   edits in other sessions (including the default one) can never leak
//!   into it.
//! * **Edits** are per-session state transitions (see the `session`
//!   module); different sessions' edits run
//!   concurrently on the service worker pool, each with its `inner`
//!   share of the global [`ThreadBudget`].
//! * **`close`** flushes the session's namespace, retires it from the
//!   hot cache, and forgets the session.  The default session cannot be
//!   closed.
//!
//! The daemon is internally locked (`handle` takes `&self`), with one
//! lock-order rule — session state, then session table, then hot cache —
//! so the service can call it from many workers at once.  The
//! observational-equivalence invariant of /1 still holds per session:
//! after any edit sequence, a session's `specs` artifact is
//! byte-identical to a cold batch `Engine` run over the same edited
//! program (`tests/serve_equivalence.rs`, `tests/serve_sessions.rs`).

use crate::config::ServeConfig;
use crate::proto::{
    Envelope, ErrorCode, Request, Response, WireError, WIRE_SCHEMA, WIRE_SCHEMA_V2,
};
use crate::session::{
    SessionState, SessionStats, REQUEST_LANE, SESSION_LANE_STRIDE, SESSION_ORDINAL_STRIDE,
};
use crate::shards::{HotShards, ROOT_NAMESPACE};
use atlas_apps::RegistryError;
use atlas_core::RunProvenance;
use atlas_core::{AtlasConfig, BudgetSplit, Engine, StoreError, ThreadBudget, VerdictCache};
use atlas_ir::{ClassId, LibraryInterface, Program};
use atlas_obs::{ArgValue, Recorder};
use atlas_store::{atomic_write, hex64_string, shard_entry, Json};
use std::fmt;
use std::sync::{Arc, Mutex};

/// The name of the session that requests without a `session` field — in
/// particular every `atlas-serve/1` request — are routed to.
pub const DEFAULT_SESSION: &str = "default";

/// Worker-pool size when `ServeConfig::workers` is 0 ("auto"): enough to
/// overlap a few sessions, still clamped by the thread budget (a budget
/// of 1 always yields a single /1-style FIFO worker).
const DEFAULT_WORKERS: usize = 4;

/// Spec-extraction bounds (max spec length, per-cluster spec limit).
/// These must match the bounds the store was seeded with — the bench
/// pipeline's `SPEC_MAX_LEN`/`SPEC_LIMIT` — or every splice would be
/// demoted to a forced re-run.
pub const EXTRACTION: (usize, usize) = (8, 64);

/// An error raised while constructing or persisting the daemon.
#[derive(Debug)]
pub enum ServeError {
    /// The configured library name is not in the registry.
    Registry(RegistryError),
    /// A store operation failed.
    Store(StoreError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Registry(e) => write!(f, "{e}"),
            ServeError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<RegistryError> for ServeError {
    fn from(e: RegistryError) -> ServeError {
        ServeError::Registry(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> ServeError {
        ServeError::Store(e)
    }
}

/// The pristine post-startup state every new session is cloned from.
struct BaseState {
    program: Program,
    provenance: RunProvenance,
    warm: VerdictCache,
    specs_doc: Json,
    fingerprint: u64,
    /// The raw shard *file bytes* captured after the startup flush, one
    /// `(closure, cache file, specs file)` triple per cluster.  Seeding
    /// a namespace from bytes (not from live state) guarantees a fresh
    /// session starts from exactly what a fresh daemon would read, no
    /// matter what the default session has done since startup.
    seeds: Vec<(u64, Option<String>, Option<String>)>,
}

/// The open sessions, by wire name.  A `Vec` keeps `stats` output in
/// open order; session counts stay far too small for map lookups to
/// matter.
struct SessionTable {
    sessions: Vec<(String, Arc<Mutex<SessionState>>)>,
    /// Sessions opened since startup (the ordinal source; the default
    /// session is ordinal 0 and not counted).
    opened: u64,
    /// Sessions closed since startup.
    closed: u64,
}

fn valid_session_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

fn store_error(e: StoreError) -> WireError {
    WireError::new(ErrorCode::Store, e.to_string())
}

/// The resident inference service state.  See the [module docs](self).
pub struct Daemon {
    config: ServeConfig,
    /// The configured clusters; ids stay valid across edits because the
    /// mutation primitives are append-only.
    clusters: Vec<Vec<ClassId>>,
    /// The resolved global thread budget.
    budget_total: usize,
    /// How the budget divides: `outer` pool workers × `inner` engine
    /// threads per in-flight edit.
    split: BudgetSplit,
    base: BaseState,
    /// The hot shard cache over the store root and every session
    /// namespace — one shared LRU budget across all of them.
    hot: Arc<Mutex<HotShards>>,
    sessions: Mutex<SessionTable>,
    /// The observability session: always at least the metrics level (the
    /// `stats` op serves its snapshot), tracing when the config asks.
    recorder: Recorder,
}

impl Daemon {
    /// Builds the configured library and warms up: one incremental
    /// session against the daemon's own provenance, in the root
    /// namespace.  A warm store splices every cluster without executing
    /// anything; a cold store runs the full pipeline once and seeds it.
    /// Either way the store is flushed — and its shard bytes captured as
    /// the session seed set — before the daemon accepts requests.
    ///
    /// # Errors
    /// Returns [`ServeError`] on an unknown library name or a store
    /// failure.
    pub fn new(config: ServeConfig) -> Result<Daemon, ServeError> {
        let lib = atlas_apps::build_library(&config.library, config.synth_seed)?;
        let interface = LibraryInterface::from_program(&lib.program);
        let budget = ThreadBudget::resolve(config.threads);
        let requested = if config.workers == 0 {
            DEFAULT_WORKERS
        } else {
            config.workers
        };
        let split = budget.split_workers(requested);
        let recorder = if config.trace {
            Recorder::tracing()
        } else {
            Recorder::metrics()
        };
        // The resolved split, visible in every `atlas-metrics/1`
        // snapshot (and therefore in `stats` responses and bench
        // reports) without a round-trip to `hello`.
        recorder.count("serve.budget.total", budget.total() as u64);
        recorder.count("serve.budget.outer_workers", split.outer as u64);
        recorder.count("serve.budget.inner_threads", split.inner as u64);
        let mut hot =
            HotShards::new(&config.store, config.shard_budget).with_recorder(recorder.clone());
        let atlas_config = AtlasConfig {
            samples_per_cluster: config.samples,
            clusters: lib.clusters.clone(),
            // Startup has the machine to itself: no concurrent edits
            // yet, so the whole budget goes inner.
            num_threads: budget.total(),
            ..AtlasConfig::default()
        };
        let engine = Engine::new(&lib.program, &interface, atlas_config)
            .with_recorder(recorder.with_lane_base(SESSION_LANE_STRIDE));
        let provenance = engine.run_provenance();
        let mut session = engine.incremental_session(&provenance);
        let outcome = session.run_with_shards(&mut hot, EXTRACTION)?;
        let specs_doc = outcome
            .spec_artifact(&lib.program)
            .encode(&lib.program)
            .map_err(|e| StoreError::schema(&config.store, e))?;
        let warm = session.into_cache();
        let fingerprint = outcome.library;
        drop(engine);
        hot.flush()?;
        // Capture the post-startup shard bytes: the seed set of every
        // session opened later.  A missing file (nothing learned for a
        // cluster) seeds as "absent", which is exactly what a fresh
        // daemon would see.
        let seeds = provenance
            .clusters
            .iter()
            .map(|cluster| {
                let entry = shard_entry(&config.store, cluster.closure);
                (
                    cluster.closure,
                    std::fs::read_to_string(&entry.cache).ok(),
                    std::fs::read_to_string(&entry.specs).ok(),
                )
            })
            .collect();
        let base = BaseState {
            program: lib.program.clone(),
            provenance: provenance.clone(),
            warm: warm.warm_clone(),
            specs_doc: specs_doc.clone(),
            fingerprint,
            seeds,
        };
        let default_session = SessionState {
            name: DEFAULT_SESSION.to_string(),
            ns: ROOT_NAMESPACE,
            ordinal: 0,
            program: lib.program,
            provenance,
            warm,
            specs_doc,
            fingerprint,
            generation: 0,
            edits_since_flush: 0,
            stats: SessionStats::default(),
        };
        Ok(Daemon {
            clusters: lib.clusters,
            budget_total: budget.total(),
            split,
            base,
            hot: Arc::new(Mutex::new(hot)),
            sessions: Mutex::new(SessionTable {
                sessions: vec![(
                    DEFAULT_SESSION.to_string(),
                    Arc::new(Mutex::new(default_session)),
                )],
                opened: 0,
                closed: 0,
            }),
            recorder,
            config,
        })
    }

    /// The daemon's observability handle — clone it to export the Chrome
    /// trace or a metrics snapshot after the daemon is gone.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The default session's edit count since startup.
    pub fn generation(&self) -> u64 {
        self.with_default(|s| s.generation)
    }

    /// The default session's current library fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.with_default(|s| s.fingerprint)
    }

    /// The configuration the daemon was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The resolved service-pool size (`outer` of the budget split).
    pub fn workers(&self) -> usize {
        self.split.outer
    }

    /// Engine threads each in-flight edit uses (`inner` of the split).
    pub fn inner_threads(&self) -> usize {
        self.split.inner
    }

    fn with_default<T>(&self, f: impl FnOnce(&SessionState) -> T) -> T {
        let state = self
            .lookup(DEFAULT_SESSION)
            .expect("the default session is never closed");
        let session = state.lock().expect("session state lock poisoned");
        f(&session)
    }

    fn lookup(&self, name: &str) -> Option<Arc<Mutex<SessionState>>> {
        let table = self.sessions.lock().expect("session table lock poisoned");
        table
            .sessions
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, state)| Arc::clone(state))
    }

    /// Serves one request.  Never panics: every failure mode maps to a
    /// structured error response.  Responses echo the session they were
    /// served by iff the request addressed one explicitly (or opened
    /// one), which is also what selects the `atlas-serve/2` frame stamp
    /// — plain /1 traffic gets byte-identical /1 responses.
    pub fn handle(&self, envelope: &Envelope) -> Response {
        let id = envelope.id.clone();
        self.recorder.count("serve.requests", 1);
        let (result, echo) = match &envelope.request {
            Request::Open | Request::Close | Request::Shutdown => {
                // Control ops record on the base request lane; they are
                // not part of any session's stripe.
                let mut lane = self.recorder.lane(REQUEST_LANE);
                let span = lane.begin();
                let out = match &envelope.request {
                    Request::Open => match self.open(envelope.session.as_deref()) {
                        Ok((name, body)) => (Ok(body), Some(name)),
                        Err(error) => (Err(error), envelope.session.clone()),
                    },
                    Request::Close => (
                        self.close(envelope.session.as_deref()),
                        envelope.session.clone(),
                    ),
                    _ => (
                        Ok(Json::obj().set("stopping", true)),
                        envelope.session.clone(),
                    ),
                };
                lane.end(
                    span,
                    "serve",
                    "request",
                    vec![("op", ArgValue::from(envelope.request.op()))],
                );
                out
            }
            _ => (self.on_session(envelope), envelope.session.clone()),
        };
        let mut response = match result {
            Ok(result) => Response::ok(id, result),
            Err(error) => {
                // One counter per protocol error class, so a daemon that
                // is rejecting traffic is diagnosable from `stats` alone.
                self.recorder
                    .count(&format!("serve.errors.{}", error.code.as_str()), 1);
                Response::err(id, error)
            }
        };
        response.session = echo;
        response
    }

    /// Serves a session-scoped op inside the addressed session's lock.
    /// The request span lands on the session's lane stripe, so ordinal 0
    /// (the default session) reproduces the /1 trace layout exactly.
    fn on_session(&self, envelope: &Envelope) -> Result<Json, WireError> {
        let name = envelope.session.as_deref().unwrap_or(DEFAULT_SESSION);
        let state = self.lookup(name).ok_or_else(|| {
            WireError::new(
                ErrorCode::UnknownSession,
                format!("no open session named '{name}'"),
            )
        })?;
        let mut session = state.lock().expect("session state lock poisoned");
        let mut lane = self
            .recorder
            .with_lane_base(session.ordinal * SESSION_ORDINAL_STRIDE)
            .lane(REQUEST_LANE);
        let span = lane.begin();
        let result = match &envelope.request {
            Request::Hello => Ok(self.hello(&session)),
            Request::Ping => Ok(Json::obj()
                .set("pong", true)
                .set("generation", session.generation as i64)),
            Request::Edit(edit) => session.apply_edit(
                edit,
                &self.config,
                &self.clusters,
                self.split.inner,
                &self.hot,
                &self.recorder,
            ),
            Request::Specs => {
                session.stats.queries += 1;
                Ok(Json::obj()
                    .set("library_fingerprint", hex64_string(session.fingerprint))
                    .set("artifact", session.specs_doc.clone()))
            }
            Request::Fingerprint => {
                session.stats.queries += 1;
                Ok(Json::obj().set("library_fingerprint", hex64_string(session.fingerprint)))
            }
            Request::Stats => Ok(self.stats_json(&session)),
            Request::Flush => session
                .flush(&self.hot)
                .map(|written| Json::obj().set("flushed_shards", written))
                .map_err(store_error),
            // Routed in `handle`; unreachable here, but never panic.
            Request::Open | Request::Close | Request::Shutdown => Err(WireError::new(
                ErrorCode::BadRequest,
                "not a session-scoped op",
            )),
        };
        lane.end(
            span,
            "serve",
            "request",
            vec![("op", ArgValue::from(envelope.request.op()))],
        );
        result
    }

    /// Opens a session: validates or generates the name, registers a
    /// namespace, seeds it with the base shard bytes, and clones the
    /// base state.  Holds the table lock throughout so a generated name
    /// is never raced and a session is only visible once fully seeded.
    fn open(&self, requested: Option<&str>) -> Result<(String, Json), WireError> {
        let mut table = self.sessions.lock().expect("session table lock poisoned");
        if table.sessions.len() >= self.config.max_sessions {
            return Err(WireError::new(
                ErrorCode::BadRequest,
                format!("session limit reached ({} open)", table.sessions.len()),
            ));
        }
        let name = match requested {
            Some(name) => {
                if !valid_session_name(name) {
                    return Err(WireError::new(
                        ErrorCode::BadRequest,
                        "session names are 1-64 chars of [A-Za-z0-9_-]",
                    ));
                }
                if table.sessions.iter().any(|(n, _)| n == name) {
                    return Err(WireError::new(
                        ErrorCode::BadRequest,
                        format!("session '{name}' is already open"),
                    ));
                }
                name.to_string()
            }
            None => {
                // Generated names never collide with open sessions; skip
                // over client-claimed spellings.
                let mut k = table.opened + 1;
                loop {
                    let candidate = format!("s{k}");
                    if !table.sessions.iter().any(|(n, _)| n == &candidate) {
                        break candidate;
                    }
                    k += 1;
                }
            }
        };
        table.opened += 1;
        let ordinal = table.opened;
        let dir = self.config.store.join("sessions").join(&name);
        let ns = {
            let mut hot = self.hot.lock().expect("hot shard cache lock poisoned");
            hot.add_namespace(dir.clone())
        };
        for (closure, cache, specs) in &self.base.seeds {
            let entry = shard_entry(&dir, *closure);
            if let Some(text) = cache {
                atomic_write(&entry.cache, text).map_err(store_error)?;
            }
            if let Some(text) = specs {
                atomic_write(&entry.specs, text).map_err(store_error)?;
            }
        }
        let state = SessionState {
            name: name.clone(),
            ns,
            ordinal,
            program: self.base.program.clone(),
            provenance: self.base.provenance.clone(),
            warm: self.base.warm.warm_clone(),
            specs_doc: self.base.specs_doc.clone(),
            fingerprint: self.base.fingerprint,
            generation: 0,
            edits_since_flush: 0,
            stats: SessionStats::default(),
        };
        table
            .sessions
            .push((name.clone(), Arc::new(Mutex::new(state))));
        let body = Json::obj()
            .set("session", name.as_str())
            .set("library_fingerprint", hex64_string(self.base.fingerprint))
            .set("generation", 0_i64)
            .set("seeded_shards", self.base.seeds.len());
        Ok((name, body))
    }

    /// Closes a session: flushes its namespace, drops it from the hot
    /// cache, and forgets it.  The default session cannot be closed.
    fn close(&self, requested: Option<&str>) -> Result<Json, WireError> {
        let name = requested
            .ok_or_else(|| WireError::new(ErrorCode::BadRequest, "'close' requires a 'session'"))?;
        if name == DEFAULT_SESSION {
            return Err(WireError::new(
                ErrorCode::BadRequest,
                "the default session cannot be closed",
            ));
        }
        let state = self.lookup(name).ok_or_else(|| {
            WireError::new(
                ErrorCode::UnknownSession,
                format!("no open session named '{name}'"),
            )
        })?;
        // The scheduler serializes per session, so nothing is in flight
        // for this session while close holds its lock.
        let mut session = state.lock().expect("session state lock poisoned");
        let written = session.flush(&self.hot).map_err(store_error)?;
        let ns = session.ns;
        drop(session);
        {
            let mut table = self.sessions.lock().expect("session table lock poisoned");
            if let Some(pos) = table.sessions.iter().position(|(n, _)| n == name) {
                table.sessions.remove(pos);
                table.closed += 1;
            }
        }
        self.hot
            .lock()
            .expect("hot shard cache lock poisoned")
            .retire_namespace(ns);
        Ok(Json::obj()
            .set("closed", name)
            .set("flushed_shards", written))
    }

    fn hello(&self, session: &SessionState) -> Json {
        Json::obj()
            .set("server", WIRE_SCHEMA)
            .set(
                "protocols",
                vec![Json::str(WIRE_SCHEMA), Json::str(WIRE_SCHEMA_V2)],
            )
            .set("default_session", DEFAULT_SESSION)
            .set("session", session.name.as_str())
            .set("library", self.config.library.as_str())
            .set("library_fingerprint", hex64_string(session.fingerprint))
            .set("generation", session.generation as i64)
            .set("clusters", self.clusters.len())
            .set("threads", self.budget_total)
            .set("workers", self.split.outer)
            .set("inner_threads", self.split.inner)
            .set("max_sessions", self.config.max_sessions)
            .set("shard_budget", self.config.shard_budget)
            .set("queue_capacity", self.config.queue_capacity)
            .set("flush_every", self.config.flush_every)
    }

    /// Persists every session's dirty shards now and resets all
    /// write-behind clocks.
    ///
    /// # Errors
    /// Returns the `atlas-store` error of the first failed write.
    pub fn flush(&self) -> Result<usize, StoreError> {
        let states: Vec<Arc<Mutex<SessionState>>> = {
            let table = self.sessions.lock().expect("session table lock poisoned");
            table
                .sessions
                .iter()
                .map(|(_, state)| Arc::clone(state))
                .collect()
        };
        for state in &states {
            state
                .lock()
                .expect("session state lock poisoned")
                .edits_since_flush = 0;
        }
        self.hot
            .lock()
            .expect("hot shard cache lock poisoned")
            .flush()
    }

    fn stats_json(&self, session: &SessionState) -> Json {
        let (open, opened, closed) = {
            let table = self.sessions.lock().expect("session table lock poisoned");
            (table.sessions.len(), table.opened, table.closed)
        };
        let (shards, resident, dirty) = {
            let hot = self.hot.lock().expect("hot shard cache lock poisoned");
            (hot.stats(), hot.resident(), hot.dirty())
        };
        Json::obj()
            .set("session", session.name.as_str())
            .set("generation", session.generation as i64)
            .set("edits_ok", session.stats.edits_ok as i64)
            .set("edits_failed", session.stats.edits_failed as i64)
            .set("queries", session.stats.queries as i64)
            .set("warm_verdicts", session.warm.len())
            .set(
                "sessions",
                Json::obj()
                    .set("open", open)
                    .set("opened", opened as i64)
                    .set("closed", closed as i64),
            )
            .set(
                "budget",
                Json::obj()
                    .set("total", self.budget_total)
                    .set("outer_workers", self.split.outer)
                    .set("inner_threads", self.split.inner),
            )
            .set(
                "shards",
                Json::obj()
                    .set("resident", resident)
                    .set("dirty", dirty)
                    .set("budget", self.config.shard_budget)
                    .set("hits", shards.hits)
                    .set("misses", shards.misses)
                    .set("evictions", shards.evictions)
                    .set("pin_overflows", shards.pin_overflows)
                    .set("flushes", shards.flushes)
                    .set("flushed_shards", shards.flushed_shards),
            )
            // The live `atlas-metrics/1` snapshot: every counter and
            // histogram the observability spine has collected since
            // startup, so a resident daemon is inspectable over the wire
            // without restarting it under different flags.
            .set("metrics", atlas_obs::metrics_snapshot(&self.recorder))
    }
}
