//! The resident daemon state: one library under service, a rolling warm
//! verdict cache, a hot shard cache, and the current spec artifact.
//!
//! A [`Daemon`] is single-threaded by construction (the service wraps it
//! in one worker); every request is a pure state transition:
//!
//! * **Startup** builds the configured library and runs one incremental
//!   session against its own provenance.  Over a warm store every cluster
//!   splices (zero executions); over a cold store every cluster is
//!   forced-dirty, runs, and seeds the store — so a restart is exactly a
//!   cache-warming, never a semantic event.
//! * **Edits** mutate the library (`atlas_apps::mutate_library`), open an
//!   `Engine::incremental_session` against the previous edit's provenance
//!   warm-started from the rolling verdict cache, and run it against the
//!   hot shard cache.  Only clusters whose dependency closure contains
//!   the edit re-run; the rest splice from memory.
//! * **Queries** (`specs`, `fingerprint`) are answered from the cached
//!   artifact of the last edit — no inference, no disk.
//!
//! The observational-equivalence invariant: after any edit sequence, the
//! `specs` artifact is byte-identical to a cold batch `Engine` run over
//! the same edited program, because splicing goes through the same
//! [`ShardStore`](atlas_core::ShardStore) code path the batch pipeline
//! uses and warm verdict caches never change results (the determinism
//! guarantee of `atlas-learn`).  `tests/serve_equivalence.rs` pins this.

use crate::config::ServeConfig;
use crate::proto::{EditRequest, Envelope, ErrorCode, Request, Response, WireError, WIRE_SCHEMA};
use crate::shards::HotShards;
use atlas_apps::{mutate_library, MutationConfig, RegistryError};
use atlas_core::{AtlasConfig, Engine, RunProvenance, StoreError, ThreadBudget, VerdictCache};
use atlas_ir::{ClassId, LibraryInterface, Program};
use atlas_obs::Recorder;
use atlas_store::{hex64_string, Json};
use std::fmt;

/// Lane stripe width per inference session: session `n` (startup is
/// session 1, edit `k` is session `k + 1`) records its engine events on
/// lanes `n * SESSION_LANE_STRIDE ..`.  Lanes 1 and 2 below the first
/// stripe are the service-request and shard-cache tracks.
const SESSION_LANE_STRIDE: u64 = 4096;

/// Spec-extraction bounds (max spec length, per-cluster spec limit).
/// These must match the bounds the store was seeded with — the bench
/// pipeline's `SPEC_MAX_LEN`/`SPEC_LIMIT` — or every splice would be
/// demoted to a forced re-run.
pub const EXTRACTION: (usize, usize) = (8, 64);

/// An error raised while constructing or persisting the daemon.
#[derive(Debug)]
pub enum ServeError {
    /// The configured library name is not in the registry.
    Registry(RegistryError),
    /// A store operation failed.
    Store(StoreError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Registry(e) => write!(f, "{e}"),
            ServeError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<RegistryError> for ServeError {
    fn from(e: RegistryError) -> ServeError {
        ServeError::Registry(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> ServeError {
        ServeError::Store(e)
    }
}

/// Service-level counters reported by the `stats` op.
#[derive(Debug, Clone, Copy, Default)]
struct DaemonStats {
    edits_ok: u64,
    edits_failed: u64,
    queries: u64,
}

/// The resident inference service state.  See the [module docs](self).
pub struct Daemon {
    config: ServeConfig,
    /// The library content after every edit applied so far.
    program: Program,
    /// The configured clusters; ids stay valid across edits because the
    /// mutation primitives are append-only.
    clusters: Vec<Vec<ClassId>>,
    /// Worker threads per incremental session — one shared budget
    /// resolved at startup, not per edit.
    threads: usize,
    /// The previous run's closure identity; the diff basis of the next
    /// edit.
    provenance: RunProvenance,
    /// The rolling warm verdict cache: every verdict any edit has proven,
    /// fed to the next edit's engine.
    warm: VerdictCache,
    /// The hot shard cache over the store root.
    hot: HotShards,
    /// The current `atlas-spec/1` artifact document, served to `specs`
    /// queries without re-encoding.
    specs_doc: Json,
    /// The current library fingerprint.
    fingerprint: u64,
    /// Edits applied since startup.
    generation: u64,
    /// Edits since the last write-behind flush.
    edits_since_flush: usize,
    stats: DaemonStats,
    /// The observability session: always at least the metrics level (the
    /// `stats` op serves its snapshot), tracing when the config asks.
    recorder: Recorder,
}

impl Daemon {
    /// Builds the configured library and warms up: one incremental
    /// session against the daemon's own provenance.  A warm store splices
    /// every cluster without executing anything; a cold store runs the
    /// full pipeline once and seeds it.  Either way the store is flushed
    /// before the daemon accepts requests.
    ///
    /// # Errors
    /// Returns [`ServeError`] on an unknown library name or a store
    /// failure.
    pub fn new(config: ServeConfig) -> Result<Daemon, ServeError> {
        let lib = atlas_apps::build_library(&config.library, config.synth_seed)?;
        let interface = LibraryInterface::from_program(&lib.program);
        let threads = ThreadBudget::resolve(config.threads).total();
        let recorder = if config.trace {
            Recorder::tracing()
        } else {
            Recorder::metrics()
        };
        let mut hot =
            HotShards::new(&config.store, config.shard_budget).with_recorder(recorder.clone());
        let atlas_config = AtlasConfig {
            samples_per_cluster: config.samples,
            clusters: lib.clusters.clone(),
            num_threads: threads,
            ..AtlasConfig::default()
        };
        let engine = Engine::new(&lib.program, &interface, atlas_config)
            .with_recorder(recorder.with_lane_base(SESSION_LANE_STRIDE));
        let provenance = engine.run_provenance();
        let mut session = engine.incremental_session(&provenance);
        let outcome = session.run_with_shards(&mut hot, EXTRACTION)?;
        let specs_doc = outcome
            .spec_artifact(&lib.program)
            .encode(&lib.program)
            .map_err(|e| StoreError::schema(&config.store, e))?;
        let warm = session.into_cache();
        let fingerprint = outcome.library;
        drop(engine);
        hot.flush()?;
        Ok(Daemon {
            clusters: lib.clusters,
            program: lib.program,
            threads,
            provenance,
            warm,
            hot,
            specs_doc,
            fingerprint,
            generation: 0,
            edits_since_flush: 0,
            stats: DaemonStats::default(),
            recorder,
            config,
        })
    }

    /// The daemon's observability handle — clone it to export the Chrome
    /// trace or a metrics snapshot after the daemon is gone.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Edits applied since startup.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The current library fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The configuration the daemon was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Serves one request.  Never panics: every failure mode maps to a
    /// structured error response.
    pub fn handle(&mut self, envelope: &Envelope) -> Response {
        let id = envelope.id.clone();
        self.recorder.count("serve.requests", 1);
        let result = match &envelope.request {
            Request::Hello => Ok(self.hello()),
            Request::Ping => Ok(Json::obj()
                .set("pong", true)
                .set("generation", self.generation as i64)),
            Request::Edit(edit) => self.apply_edit(edit),
            Request::Specs => {
                self.stats.queries += 1;
                Ok(Json::obj()
                    .set("library_fingerprint", hex64_string(self.fingerprint))
                    .set("artifact", self.specs_doc.clone()))
            }
            Request::Fingerprint => {
                self.stats.queries += 1;
                Ok(Json::obj().set("library_fingerprint", hex64_string(self.fingerprint)))
            }
            Request::Stats => Ok(self.stats_json()),
            Request::Flush => self
                .flush()
                .map(|written| Json::obj().set("flushed_shards", written))
                .map_err(|e| WireError::new(ErrorCode::Store, e.to_string())),
            Request::Shutdown => Ok(Json::obj().set("stopping", true)),
        };
        match result {
            Ok(result) => Response::ok(id, result),
            Err(error) => {
                // One counter per protocol error class, so a daemon that
                // is rejecting traffic is diagnosable from `stats` alone.
                self.recorder
                    .count(&format!("serve.errors.{}", error.code.as_str()), 1);
                Response::err(id, error)
            }
        }
    }

    fn hello(&self) -> Json {
        Json::obj()
            .set("server", WIRE_SCHEMA)
            .set("library", self.config.library.as_str())
            .set("library_fingerprint", hex64_string(self.fingerprint))
            .set("generation", self.generation as i64)
            .set("clusters", self.clusters.len())
            .set("threads", self.threads)
            .set("shard_budget", self.config.shard_budget)
            .set("queue_capacity", self.config.queue_capacity)
            .set("flush_every", self.config.flush_every)
    }

    /// Applies one library edit and re-infers incrementally.  The result
    /// contains no timing and no generation counter, so the response to a
    /// given edit is deterministic wherever it lands in a stream of
    /// closure-disjoint edits.
    fn apply_edit(&mut self, edit: &EditRequest) -> Result<Json, WireError> {
        let mutated = mutate_library(
            &self.program,
            &MutationConfig {
                kind: edit.kind,
                seed: edit.seed,
                target: edit.target.clone(),
            },
        )
        .map_err(|e| {
            self.stats.edits_failed += 1;
            WireError::new(ErrorCode::BadEdit, e.to_string())
        })?;
        let new_program = mutated.program;
        let new_interface = LibraryInterface::from_program(&new_program);
        let atlas_config = AtlasConfig {
            samples_per_cluster: self.config.samples,
            clusters: self.clusters.clone(),
            num_threads: self.threads,
            ..AtlasConfig::default()
        };
        // Session `generation + 2` (startup was session 1): each edit's
        // engine records on its own lane stripe, so cluster tracks from
        // different edits never interleave in the exported trace.
        let engine = Engine::new(&new_program, &new_interface, atlas_config)
            .warm_start(self.warm.warm_clone())
            .with_recorder(
                self.recorder
                    .with_lane_base((self.generation + 2) * SESSION_LANE_STRIDE),
            );
        let mut session = engine.incremental_session(&self.provenance);
        let outcome = session
            .run_with_shards(&mut self.hot, EXTRACTION)
            .map_err(|e| {
                self.stats.edits_failed += 1;
                WireError::new(ErrorCode::Store, e.to_string())
            })?;
        let new_provenance = engine.run_provenance();
        let specs_doc = outcome
            .spec_artifact(&new_program)
            .encode(&new_program)
            .map_err(|e| {
                self.stats.edits_failed += 1;
                WireError::new(ErrorCode::Store, e.to_string())
            })?;
        let collected = session.into_cache();
        drop(engine);

        self.program = new_program;
        self.provenance = new_provenance;
        self.warm = collected;
        self.specs_doc = specs_doc;
        self.fingerprint = outcome.library;
        self.generation += 1;
        self.stats.edits_ok += 1;
        self.edits_since_flush += 1;

        let mut flushed = Json::Null;
        if self.config.flush_every == 0 || self.edits_since_flush >= self.config.flush_every {
            let written = self
                .flush()
                .map_err(|e| WireError::new(ErrorCode::Store, e.to_string()))?;
            flushed = Json::Int(written as i64);
        }

        Ok(Json::obj()
            .set("description", mutated.outcome.description.as_str())
            .set("library_fingerprint", hex64_string(self.fingerprint))
            .set(
                "clusters",
                Json::obj()
                    .set("total", outcome.clusters.len())
                    .set("dirty", outcome.dirty_clusters)
                    .set("clean", outcome.clean_clusters)
                    .set("forced_dirty", outcome.forced_dirty),
            )
            .set(
                "executions",
                Json::obj()
                    .set("oracle", outcome.oracle_executions)
                    .set("spliced_verdicts", outcome.spliced_verdicts),
            )
            .set("flushed_shards", flushed))
    }

    /// Persists dirty shards now and resets the write-behind clock.
    ///
    /// # Errors
    /// Returns the `atlas-store` error of the first failed write.
    pub fn flush(&mut self) -> Result<usize, StoreError> {
        let written = self.hot.flush()?;
        self.edits_since_flush = 0;
        Ok(written)
    }

    fn stats_json(&self) -> Json {
        let shards = self.hot.stats();
        Json::obj()
            .set("generation", self.generation as i64)
            .set("edits_ok", self.stats.edits_ok as i64)
            .set("edits_failed", self.stats.edits_failed as i64)
            .set("queries", self.stats.queries as i64)
            .set("warm_verdicts", self.warm.len())
            .set(
                "shards",
                Json::obj()
                    .set("resident", self.hot.resident())
                    .set("dirty", self.hot.dirty())
                    .set("budget", self.config.shard_budget)
                    .set("hits", shards.hits)
                    .set("misses", shards.misses)
                    .set("evictions", shards.evictions)
                    .set("pin_overflows", shards.pin_overflows)
                    .set("flushes", shards.flushes)
                    .set("flushed_shards", shards.flushed_shards),
            )
            // The live `atlas-metrics/1` snapshot: every counter and
            // histogram the observability spine has collected since
            // startup, so a resident daemon is inspectable over the wire
            // without restarting it under different flags.
            .set("metrics", atlas_obs::metrics_snapshot(&self.recorder))
    }
}
