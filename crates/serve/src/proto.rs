//! The `atlas-serve/2` wire protocol (and its `/1` subset):
//! newline-delimited JSON frames.
//!
//! Every request is one line holding one JSON object; every response is
//! one line holding one JSON object stamped with the schema it speaks.
//! Both directions round-trip through [`Json`] — the codec adds a
//! *compact* (single-line) renderer, because the store's pretty printer
//! spans lines and a frame must not.
//!
//! | Request (`op`) | Fields | Result payload |
//! |---|---|---|
//! | `hello` | `session?` | server identity, protocols, library, generation, budgets |
//! | `ping` | `session?` | `{"pong": true, "generation": n}` |
//! | `open` | `session?` (requested name) | `{"session": name, "generation": 0, ...}` |
//! | `close` | `session` | `{"closed": name, "flushed_shards": n}` |
//! | `edit` | `kind`, `target?`, `seed?`, `session?` | dirty/clean counts, executions, fingerprint |
//! | `specs` | `session?` | the current `atlas-spec/1` artifact, inline |
//! | `fingerprint` | `session?` | the current library fingerprint |
//! | `stats` | `session?` | session, shard-cache, and service counters |
//! | `flush` | `session?` | `{"flushed_shards": n}` |
//! | `shutdown` | — | `{"stopping": true}`, then the stream ends |
//!
//! **Sessions and negotiation.**  `atlas-serve/2` adds the `open`/`close`
//! ops and an optional `"session"` string on every session-scoped
//! request; each open session owns an independent store namespace,
//! provenance chain, and warm verdict cache.  A frame *without* a
//! `"session"` field addresses the daemon's **default session** — which
//! is exactly the `atlas-serve/1` protocol, so a /1 client needs no
//! changes: its requests land on the default session and its responses
//! are stamped `atlas-serve/1`.  Responses to frames that named a
//! session echo the session and are stamped `atlas-serve/2`.  `hello`
//! advertises both protocol ids and the default-session name, which is
//! the whole negotiation: a client that wants sessions sends `open`, one
//! that does not keeps speaking /1.
//!
//! Any request may carry an `"id"` (any JSON value); the response echoes
//! it verbatim, so concurrent clients can correlate.  Errors are
//! structured — `{"ok": false, "error": {"code", "message"}}` — and the
//! codes are a closed set ([`ErrorCode`]).  Malformed JSON, unknown ops,
//! oversized frames, and requests naming unknown (or already-closed)
//! sessions all produce error *responses*, never a dropped connection:
//! the daemon must stay line-synchronized and alive no matter what bytes
//! arrive.

use atlas_ir::MutationKind;
use atlas_store::Json;
use std::fmt::Write as _;
use std::io::BufRead;

/// The `/1` protocol identifier: stamped on responses to frames that did
/// not name a session (the backward-compatible default-session subset).
pub const WIRE_SCHEMA: &str = "atlas-serve/1";

/// The `/2` protocol identifier: stamped on responses to frames that
/// named a session (including `open`/`close`).
pub const WIRE_SCHEMA_V2: &str = "atlas-serve/2";

/// The closed set of structured error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame was not valid JSON.
    BadJson,
    /// The frame exceeded the configured maximum length.
    OversizedFrame,
    /// The frame was valid JSON but not a valid request (not an object,
    /// missing or unknown `op`, ill-typed field).
    BadRequest,
    /// The edit could not be applied (unknown or ineligible target).
    BadEdit,
    /// A store operation failed while serving the request.
    Store,
    /// The request named a session that is not open (never opened, or
    /// already closed).
    UnknownSession,
    /// The service is shutting down; the request was not served.
    ShuttingDown,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad-json",
            ErrorCode::OversizedFrame => "oversized-frame",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::BadEdit => "bad-edit",
            ErrorCode::Store => "store",
            ErrorCode::UnknownSession => "unknown-session",
            ErrorCode::ShuttingDown => "shutting-down",
        }
    }

    /// Parses the wire spelling back (the client half of the codec).
    pub fn parse(text: &str) -> Option<ErrorCode> {
        match text {
            "bad-json" => Some(ErrorCode::BadJson),
            "oversized-frame" => Some(ErrorCode::OversizedFrame),
            "bad-request" => Some(ErrorCode::BadRequest),
            "bad-edit" => Some(ErrorCode::BadEdit),
            "store" => Some(ErrorCode::Store),
            "unknown-session" => Some(ErrorCode::UnknownSession),
            "shutting-down" => Some(ErrorCode::ShuttingDown),
            _ => None,
        }
    }
}

/// A structured protocol error: a closed code plus a human message.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// The error class.
    pub code: ErrorCode,
    /// A human-readable description (never parsed by clients).
    pub message: String,
}

impl WireError {
    /// A new error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for WireError {}

/// One library edit, as carried on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditRequest {
    /// The mutation kind (`rename-local` | `body-edit` | `add-method` |
    /// `signature-change`).
    pub kind: MutationKind,
    /// Explicit `Class.method` target (or a class name for add-method);
    /// `None` picks deterministically by seed.
    pub target: Option<String>,
    /// Mutation seed (target selection + generated names).
    pub seed: u64,
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Identify the server.
    Hello,
    /// Liveness check.
    Ping,
    /// Open a new session (`atlas-serve/2`): the envelope's `session`
    /// field, when present, is the *requested* name; the response carries
    /// the assigned one.
    Open,
    /// Close the session named by the envelope (`atlas-serve/2`): flush
    /// its namespace, then forget it.
    Close,
    /// Apply one library edit and re-infer incrementally.
    Edit(EditRequest),
    /// The current specification artifact, inline.
    Specs,
    /// The current library fingerprint.
    Fingerprint,
    /// Service counters (session, shard cache, worker pool).
    Stats,
    /// Persist the session's dirty shards now.
    Flush,
    /// Flush and stop serving.
    Shutdown,
}

/// A request frame: the operation, the optional correlation id, and the
/// optional session name (`atlas-serve/2`; absent = the default session).
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Echoed verbatim in the response (any JSON value).
    pub id: Option<Json>,
    /// The session the request addresses: `None` is the `/1` spelling of
    /// the default session.  For [`Request::Open`] this is the requested
    /// name of the *new* session.
    pub session: Option<String>,
    /// The operation.
    pub request: Request,
}

impl Request {
    /// The wire spelling of the operation (`"op"` in the frame).
    pub fn op(&self) -> &'static str {
        match self {
            Request::Hello => "hello",
            Request::Ping => "ping",
            Request::Open => "open",
            Request::Close => "close",
            Request::Edit(_) => "edit",
            Request::Specs => "specs",
            Request::Fingerprint => "fingerprint",
            Request::Stats => "stats",
            Request::Flush => "flush",
            Request::Shutdown => "shutdown",
        }
    }
}

impl Envelope {
    /// An id-less envelope on the default session.
    pub fn of(request: Request) -> Envelope {
        Envelope {
            id: None,
            session: None,
            request,
        }
    }

    /// An envelope with a correlation id, on the default session.
    pub fn with_id(id: impl Into<Json>, request: Request) -> Envelope {
        Envelope {
            id: Some(id.into()),
            session: None,
            request,
        }
    }

    /// The same envelope addressed to a named session (the `/2` spelling).
    pub fn in_session(mut self, session: impl Into<String>) -> Envelope {
        self.session = Some(session.into());
        self
    }
}

/// A response frame: the echoed id, the echoed session (when the request
/// named one), plus either a result payload or a structured error.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's correlation id, echoed verbatim.
    pub id: Option<Json>,
    /// The session echo: `Some` makes this an `atlas-serve/2` frame,
    /// `None` an `atlas-serve/1` frame — the negotiation is per-frame.
    pub session: Option<String>,
    /// The result payload, or the error.
    pub outcome: Result<Json, WireError>,
}

impl Response {
    /// A success response (an `/1` frame until a session is attached).
    pub fn ok(id: Option<Json>, result: Json) -> Response {
        Response {
            id,
            session: None,
            outcome: Ok(result),
        }
    }

    /// An error response (an `/1` frame until a session is attached).
    pub fn err(id: Option<Json>, error: WireError) -> Response {
        Response {
            id,
            session: None,
            outcome: Err(error),
        }
    }

    /// The same response stamped with a session echo — which also stamps
    /// the frame `atlas-serve/2`.
    pub fn in_session(mut self, session: impl Into<String>) -> Response {
        self.session = Some(session.into());
        self
    }
}

/// Parses a mutation-kind name as spelled by `MutationKind`'s `Display`.
pub fn parse_mutation_kind(raw: &str) -> Option<MutationKind> {
    match raw {
        "rename-local" => Some(MutationKind::RenameLocal),
        "body-edit" => Some(MutationKind::BodyEdit),
        "add-method" => Some(MutationKind::AddMethod),
        "signature-change" => Some(MutationKind::SignatureChange),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Compact rendering
// ---------------------------------------------------------------------------

/// Serializes a value as *single-line* JSON: same escaping and number
/// conventions as the store's pretty printer (so `Json::parse` of the
/// output yields an equal value), but with no newlines or indentation —
/// the frame invariant of the protocol.
pub fn render_compact(json: &Json) -> String {
    let mut out = String::new();
    write_compact(json, &mut out);
    out
}

fn write_compact(json: &Json, out: &mut String) {
    match json {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Json::Float(f) => {
            if f.is_finite() {
                let start = out.len();
                let _ = write!(out, "{f}");
                if !out[start..].contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => write_escaped_compact(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Json::Obj(entries) => {
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped_compact(out, key);
                out.push(':');
                write_compact(value, out);
            }
            out.push('}');
        }
    }
}

fn write_escaped_compact(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Request codec
// ---------------------------------------------------------------------------

/// Encodes a request envelope as one frame (no trailing newline).
pub fn encode_request(envelope: &Envelope) -> String {
    let mut doc = Json::obj();
    if let Some(id) = &envelope.id {
        doc = doc.set("id", id.clone());
    }
    if let Some(session) = &envelope.session {
        doc = doc.set("session", session.as_str());
    }
    doc = match &envelope.request {
        Request::Hello => doc.set("op", "hello"),
        Request::Ping => doc.set("op", "ping"),
        Request::Open => doc.set("op", "open"),
        Request::Close => doc.set("op", "close"),
        Request::Edit(edit) => {
            let mut doc = doc
                .set("op", "edit")
                .set("kind", edit.kind.to_string())
                .set("seed", edit.seed as i64);
            if let Some(target) = &edit.target {
                doc = doc.set("target", target.as_str());
            }
            doc
        }
        Request::Specs => doc.set("op", "specs"),
        Request::Fingerprint => doc.set("op", "fingerprint"),
        Request::Stats => doc.set("op", "stats"),
        Request::Flush => doc.set("op", "flush"),
        Request::Shutdown => doc.set("op", "shutdown"),
    };
    render_compact(&doc)
}

/// Decodes one request frame.
///
/// # Errors
/// Returns a [`WireError`] (`bad-json` or `bad-request`) describing what
/// is wrong with the frame; the error still deserves a response, so the
/// caller pairs it with the frame's `id` when one could be extracted.
pub fn decode_request(line: &str) -> Result<Envelope, WireError> {
    let doc = Json::parse(line)
        .map_err(|e| WireError::new(ErrorCode::BadJson, format!("invalid JSON: {e}")))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(WireError::new(
            ErrorCode::BadRequest,
            "a request frame must be a JSON object",
        ));
    }
    let id = doc.get("id").cloned();
    let session = match doc.get("session") {
        None | Some(Json::Null) => None,
        Some(value) => Some(
            value
                .as_str()
                .ok_or_else(|| WireError::new(ErrorCode::BadRequest, "'session' must be a string"))?
                .to_string(),
        ),
    };
    let Some(op) = doc.get("op").and_then(Json::as_str) else {
        return Err(WireError::new(
            ErrorCode::BadRequest,
            "missing string field 'op'",
        ));
    };
    let request = match op {
        "hello" => Request::Hello,
        "ping" => Request::Ping,
        "open" => Request::Open,
        "close" => Request::Close,
        "edit" => {
            let kind = match doc.get("kind") {
                None => MutationKind::BodyEdit,
                Some(value) => {
                    let name = value.as_str().ok_or_else(|| {
                        WireError::new(ErrorCode::BadRequest, "'kind' must be a string")
                    })?;
                    parse_mutation_kind(name).ok_or_else(|| {
                        WireError::new(
                            ErrorCode::BadRequest,
                            format!("unknown mutation kind '{name}'"),
                        )
                    })?
                }
            };
            let target = match doc.get("target") {
                None | Some(Json::Null) => None,
                Some(value) => Some(
                    value
                        .as_str()
                        .ok_or_else(|| {
                            WireError::new(ErrorCode::BadRequest, "'target' must be a string")
                        })?
                        .to_string(),
                ),
            };
            let seed = match doc.get("seed") {
                None => 0,
                Some(value) => value.as_int().filter(|s| *s >= 0).ok_or_else(|| {
                    WireError::new(
                        ErrorCode::BadRequest,
                        "'seed' must be a non-negative integer",
                    )
                })? as u64,
            };
            Request::Edit(EditRequest { kind, target, seed })
        }
        "specs" => Request::Specs,
        "fingerprint" => Request::Fingerprint,
        "stats" => Request::Stats,
        "flush" => Request::Flush,
        "shutdown" => Request::Shutdown,
        other => {
            return Err(WireError::new(
                ErrorCode::BadRequest,
                format!("unknown op '{other}'"),
            ))
        }
    };
    Ok(Envelope {
        id,
        session,
        request,
    })
}

/// Best-effort id extraction from a frame that failed to decode as a
/// request: a malformed *request* can still carry a well-formed `id`, and
/// echoing it keeps concurrent clients correlated even through errors.
pub fn salvage_id(line: &str) -> Option<Json> {
    Json::parse(line)
        .ok()
        .and_then(|doc| doc.get("id").cloned())
}

/// Best-effort session extraction from a frame that failed to decode: a
/// malformed request with a well-formed `"session"` string still belongs
/// to that session's serialized stream, so its error response keeps the
/// stream's ordering guarantee.
pub fn salvage_session(line: &str) -> Option<String> {
    Json::parse(line).ok().and_then(|doc| {
        doc.get("session")
            .and_then(Json::as_str)
            .map(str::to_string)
    })
}

// ---------------------------------------------------------------------------
// Response codec
// ---------------------------------------------------------------------------

/// Encodes a response as one frame (no trailing newline).  The schema
/// stamp is the per-frame negotiation: a response carrying a session echo
/// is `atlas-serve/2`, one without is `atlas-serve/1` — so an unmodified
/// /1 client (which never names sessions) only ever sees /1 frames.
pub fn encode_response(response: &Response) -> String {
    let schema = if response.session.is_some() {
        WIRE_SCHEMA_V2
    } else {
        WIRE_SCHEMA
    };
    let mut doc = Json::obj().set("schema", schema);
    if let Some(id) = &response.id {
        doc = doc.set("id", id.clone());
    }
    if let Some(session) = &response.session {
        doc = doc.set("session", session.as_str());
    }
    doc = match &response.outcome {
        Ok(result) => doc.set("ok", true).set("result", result.clone()),
        Err(error) => doc.set("ok", false).set(
            "error",
            Json::obj()
                .set("code", error.code.as_str())
                .set("message", error.message.as_str()),
        ),
    };
    render_compact(&doc)
}

/// Decodes one response frame (the client half of the codec).
///
/// # Errors
/// Returns a [`WireError`] with code `bad-json` when the frame is not
/// valid JSON, and `bad-request` when it is JSON but not a well-formed
/// `atlas-serve/1` or `atlas-serve/2` response.
pub fn decode_response(line: &str) -> Result<Response, WireError> {
    let doc = Json::parse(line)
        .map_err(|e| WireError::new(ErrorCode::BadJson, format!("invalid JSON: {e}")))?;
    let schema = doc.get("schema").and_then(Json::as_str);
    if schema != Some(WIRE_SCHEMA) && schema != Some(WIRE_SCHEMA_V2) {
        return Err(WireError::new(
            ErrorCode::BadRequest,
            format!("not an {WIRE_SCHEMA} or {WIRE_SCHEMA_V2} response"),
        ));
    }
    let id = doc.get("id").cloned();
    let session = doc
        .get("session")
        .and_then(Json::as_str)
        .map(str::to_string);
    let stamp = |mut response: Response| {
        response.session = session.clone();
        response
    };
    match doc.get("ok").and_then(Json::as_bool) {
        Some(true) => {
            let result = doc.get("result").cloned().ok_or_else(|| {
                WireError::new(ErrorCode::BadRequest, "ok response without 'result'")
            })?;
            Ok(stamp(Response::ok(id, result)))
        }
        Some(false) => {
            let error = doc.get("error").ok_or_else(|| {
                WireError::new(ErrorCode::BadRequest, "error response without 'error'")
            })?;
            let code = error
                .get("code")
                .and_then(Json::as_str)
                .and_then(ErrorCode::parse)
                .ok_or_else(|| {
                    WireError::new(ErrorCode::BadRequest, "error response without a known code")
                })?;
            let message = error
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string();
            Ok(stamp(Response::err(id, WireError { code, message })))
        }
        None => Err(WireError::new(
            ErrorCode::BadRequest,
            "response without a boolean 'ok'",
        )),
    }
}

// ---------------------------------------------------------------------------
// Frame reader
// ---------------------------------------------------------------------------

/// One read attempt from a frame stream.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete line (without the trailing newline).  Blank lines are
    /// reported too; callers skip them.
    Line(String),
    /// The line exceeded the maximum frame length.  The remainder of the
    /// line has been consumed and discarded, so the stream is still
    /// line-synchronized.
    Oversized,
    /// End of stream.
    Eof,
}

/// Reads one newline-delimited frame, enforcing the frame-length bound
/// with bounded memory: an overlong line is drained in fixed-size chunks
/// and reported as [`Frame::Oversized`] instead of being buffered whole.
///
/// # Errors
/// Propagates the underlying I/O error.
pub fn read_frame<R: BufRead>(reader: &mut R, max_frame: usize) -> std::io::Result<Frame> {
    let mut buf: Vec<u8> = Vec::new();
    let n = std::io::Read::take(&mut *reader, max_frame as u64 + 1).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(Frame::Eof);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    } else if buf.len() > max_frame {
        // Drain the rest of the line in bounded chunks to stay
        // line-synchronized without buffering a hostile frame.
        let mut scratch: Vec<u8> = Vec::new();
        loop {
            scratch.clear();
            let n = std::io::Read::take(&mut *reader, 64 * 1024).read_until(b'\n', &mut scratch)?;
            if n == 0 || scratch.last() == Some(&b'\n') {
                break;
            }
        }
        return Ok(Frame::Oversized);
    }
    match String::from_utf8(buf) {
        Ok(line) => Ok(Frame::Line(line)),
        // Non-UTF-8 bytes cannot be valid JSON anyway; surface them as a
        // line that will fail `decode_request` with `bad-json`.
        Err(e) => Ok(Frame::Line(
            String::from_utf8_lossy(e.as_bytes()).into_owned(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering_is_single_line_and_reparses() {
        let doc = Json::obj()
            .set("s", "line\nbreak \"quoted\" \u{0001}")
            .set("n", -3i64)
            .set("f", 2.0)
            .set("arr", vec![Json::Null, Json::Bool(true), Json::obj()])
            .set("empty", Vec::<Json>::new());
        let line = render_compact(&doc);
        assert!(!line.contains('\n'), "{line:?}");
        assert_eq!(Json::parse(&line).expect("reparse"), doc);
    }

    #[test]
    fn frames_read_back_with_crlf_blank_and_oversize_handling() {
        let text = b"{\"op\":\"ping\"}\r\n\nlong-line-over-the-limit\nnext\n";
        let mut reader = std::io::BufReader::new(&text[..]);
        assert_eq!(
            read_frame(&mut reader, 16).unwrap(),
            Frame::Line("{\"op\":\"ping\"}".to_string())
        );
        assert_eq!(
            read_frame(&mut reader, 16).unwrap(),
            Frame::Line(String::new())
        );
        assert_eq!(read_frame(&mut reader, 16).unwrap(), Frame::Oversized);
        assert_eq!(
            read_frame(&mut reader, 16).unwrap(),
            Frame::Line("next".to_string())
        );
        assert_eq!(read_frame(&mut reader, 16).unwrap(), Frame::Eof);
    }

    #[test]
    fn request_codec_round_trips_the_edit_variant() {
        let envelope = Envelope::with_id(
            7i64,
            Request::Edit(EditRequest {
                kind: MutationKind::SignatureChange,
                target: Some("TreeMap.put".to_string()),
                seed: 42,
            }),
        );
        let line = encode_request(&envelope);
        assert_eq!(decode_request(&line).expect("round trip"), envelope);
    }

    #[test]
    fn v2_frames_round_trip_sessions_and_stamp_schemas() {
        let open = Envelope::with_id(1i64, Request::Open).in_session("workbench");
        assert_eq!(decode_request(&encode_request(&open)).expect("open"), open);
        let close = Envelope::of(Request::Close).in_session("workbench");
        assert_eq!(
            decode_request(&encode_request(&close)).expect("close"),
            close
        );

        // The schema stamp is per-frame: no session echo means /1, a
        // session echo means /2 — and both decode.
        let v1 = Response::ok(Some(Json::Int(1)), Json::obj().set("pong", true));
        assert!(encode_response(&v1).contains(WIRE_SCHEMA));
        assert_eq!(decode_response(&encode_response(&v1)).expect("v1"), v1);
        let v2 = v1.clone().in_session("workbench");
        let line = encode_response(&v2);
        assert!(line.contains(WIRE_SCHEMA_V2));
        assert_eq!(decode_response(&line).expect("v2"), v2);

        // An ill-typed session field is a structured error, and the
        // session of a malformed frame is still salvageable.
        let err = decode_request("{\"op\":\"edit\",\"session\":7}").expect_err("bad session");
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert_eq!(
            salvage_session("{\"op\":\"conquer\",\"session\":\"s\"}"),
            Some("s".to_string())
        );
        assert_eq!(salvage_session("{"), None);
    }

    #[test]
    fn malformed_requests_yield_structured_errors() {
        let cases: &[(&str, ErrorCode)] = &[
            ("{", ErrorCode::BadJson),
            ("[1,2]", ErrorCode::BadRequest),
            ("{\"id\":1}", ErrorCode::BadRequest),
            ("{\"op\":\"conquer\"}", ErrorCode::BadRequest),
            ("{\"op\":\"edit\",\"kind\":\"warp\"}", ErrorCode::BadRequest),
            ("{\"op\":\"edit\",\"seed\":-1}", ErrorCode::BadRequest),
            ("{\"op\":\"edit\",\"target\":7}", ErrorCode::BadRequest),
        ];
        for (line, code) in cases {
            let err = decode_request(line).expect_err(line);
            assert_eq!(err.code, *code, "{line}: {err}");
        }
        assert_eq!(salvage_id("{\"id\":9}"), Some(Json::Int(9)));
        assert_eq!(salvage_id("{"), None);
    }
}
