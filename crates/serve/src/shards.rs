//! The hot shard cache: an LRU of decoded closure shards with dirty-shard
//! pinning, write-behind persistence, and per-session namespaces sharing
//! one budget.
//!
//! [`HotShards`] implements `atlas_core::ShardStore` (for its root
//! namespace; session namespaces go through [`NamespaceShards`] /
//! [`SharedShards`]), so an incremental session splices from and persists
//! to *memory*; disk is only touched on a cache miss (shard load) and on
//! [`HotShards::flush`] (write-behind).  The invariants:
//!
//! * **Transparency.**  Because the daemon is the store root's sole owner
//!   while resident, the in-memory merge performed by
//!   [`ShardStore::persist_cluster`] equals the read-merge-write
//!   `DiskShards` would have performed — a flush at any point leaves the
//!   root byte-identical to what an all-disk run would have written.
//! * **Pinning.**  A *dirty* shard (persisted to but not yet flushed) is
//!   never evicted — eviction would lose verdicts and specs.  When every
//!   resident shard is dirty the cache overflows its budget instead
//!   (counted in [`ShardCacheStats::pin_overflows`]) until the next
//!   flush unpins them.
//! * **Determinism.**  Eviction only ever drops *clean* shards, whose
//!   bytes are on disk; a re-load decodes the same artifact, so cache
//!   pressure can change timings and I/O counts but never results.
//! * **Namespace isolation.**  Entries are keyed by `(namespace,
//!   closure)` and each namespace fronts its own directory, so two
//!   sessions never read each other's shards — but they compete for the
//!   *same* LRU budget: a hot session can evict a cold session's clean
//!   shards (shared-budget fairness is recency, not reservation), which
//!   by the determinism invariant never changes either session's results.
//!
//! Spec artifacts are cached as raw JSON documents, not decoded
//! [`SpecArtifact`]s: decoding resolves method symbols against a specific
//! program, and the daemon's program changes on every edit.  Decoding per
//! splice (cheap) keeps the cache program-independent.

use atlas_core::{CacheArtifact, CacheProvenance, ShardStore, SpecArtifact, StoreError};
use atlas_learn::VerdictCache;
use atlas_obs::{ArgValue, Recorder};
use atlas_store::{atomic_write, load_cache, load_document, save_cache, shard_entry, Json};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The observability lane all hot-shard events drain to (the daemon's
/// "shards" track; lane 1 is the service request track).
const SHARDS_LANE: u64 = 2;

/// The root namespace: the store root itself, owned by the default
/// session.  Always registered, never retired.
pub const ROOT_NAMESPACE: usize = 0;

/// Counters of the hot shard cache (shared across all namespaces).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCacheStats {
    /// Shard lookups answered from memory.
    pub hits: usize,
    /// Shard lookups that went to disk.
    pub misses: usize,
    /// Clean shards dropped to stay within the budget.
    pub evictions: usize,
    /// Times the budget could not be enforced because every resident
    /// shard was dirty (pinned).
    pub pin_overflows: usize,
    /// Flush passes performed.
    pub flushes: usize,
    /// Dirty shards written across all flush passes.
    pub flushed_shards: usize,
}

/// One resident closure shard.
struct HotEntry {
    /// The namespace the shard belongs to (an index into the registry).
    ns: usize,
    closure: u64,
    /// The shard's spec document (`atlas-spec/1`), raw.  `None` when the
    /// shard has no specs on disk yet.
    specs: Option<Json>,
    /// The shard's decoded verdict cache.  `None` when the shard has no
    /// cache file on disk yet.
    cache: Option<CacheArtifact>,
    /// Whether the entry holds changes the disk does not.
    dirty: bool,
}

/// One registered namespace: a directory the cache fronts.
struct Namespace {
    dir: PathBuf,
    /// Retired namespaces (closed sessions) keep their slot — entry `ns`
    /// indices stay stable — but hold no entries and accept no new ones.
    retired: bool,
}

/// An LRU cache of closure shards over a store root and its session
/// namespaces.  See the [module docs](self) for the invariants.
pub struct HotShards {
    /// Namespace registry; index 0 is always the store root.
    namespaces: Vec<Namespace>,
    budget: usize,
    /// LRU order: least-recently used first, most-recently used last.
    entries: Vec<HotEntry>,
    stats: ShardCacheStats,
    /// Observability handle; mirrors [`ShardCacheStats`] into the shared
    /// `shards.*` counter vocabulary and emits load/evict/flush events.
    recorder: Recorder,
}

impl HotShards {
    /// A hot cache over `root` keeping at most `budget` shards resident
    /// across all namespaces (a zero budget is promoted to one — the
    /// cache always holds the shard it is actively serving).
    pub fn new(root: &Path, budget: usize) -> HotShards {
        HotShards {
            namespaces: vec![Namespace {
                dir: root.to_path_buf(),
                retired: false,
            }],
            budget: budget.max(1),
            entries: Vec::new(),
            stats: ShardCacheStats::default(),
            recorder: Recorder::off(),
        }
    }

    /// Attaches an observability recorder (see `atlas-obs`): every
    /// counter in [`ShardCacheStats`] is mirrored as a `shards.*` metric,
    /// and shard loads / evictions / flushes emit trace events.
    pub fn with_recorder(mut self, recorder: Recorder) -> HotShards {
        self.recorder = recorder;
        self
    }

    /// The store root this cache fronts (the root namespace's directory).
    pub fn root(&self) -> &Path {
        &self.namespaces[ROOT_NAMESPACE].dir
    }

    /// Registers a new namespace over `dir` and returns its stable id.
    /// The directory is owned by one session; the returned id is what the
    /// session passes to [`NamespaceShards`] / [`SharedShards`].
    pub fn add_namespace(&mut self, dir: PathBuf) -> usize {
        self.namespaces.push(Namespace {
            dir,
            retired: false,
        });
        self.namespaces.len() - 1
    }

    /// Retires a namespace (a closed session): its resident entries are
    /// dropped — flush first, or dirty shards are lost — and its id stays
    /// allocated so other namespaces' ids never shift.  The root
    /// namespace cannot be retired.
    pub fn retire_namespace(&mut self, ns: usize) {
        if ns == ROOT_NAMESPACE || ns >= self.namespaces.len() {
            return;
        }
        self.namespaces[ns].retired = true;
        self.entries.retain(|e| e.ns != ns);
    }

    /// The cache counters so far.
    pub fn stats(&self) -> ShardCacheStats {
        self.stats
    }

    /// Shards currently resident (across all namespaces).
    pub fn resident(&self) -> usize {
        self.entries.len()
    }

    /// Resident shards holding unflushed changes.
    pub fn dirty(&self) -> usize {
        self.entries.iter().filter(|e| e.dirty).count()
    }

    /// Makes the shard for `(ns, closure)` resident (loading both files
    /// from the namespace directory on a miss) and returns its index —
    /// always the *last* slot, because residency is an LRU touch.
    fn ensure(&mut self, ns: usize, closure: u64) -> Result<usize, StoreError> {
        if let Some(i) = self
            .entries
            .iter()
            .position(|e| e.ns == ns && e.closure == closure)
        {
            self.stats.hits += 1;
            self.recorder.count("shards.hits", 1);
            let entry = self.entries.remove(i);
            self.entries.push(entry);
            return Ok(self.entries.len() - 1);
        }
        self.stats.misses += 1;
        self.recorder.count("shards.misses", 1);
        let mut lane = self.recorder.lane(SHARDS_LANE);
        let load_start = lane.begin();
        let paths = shard_entry(&self.namespaces[ns].dir, closure);
        let specs = if paths.specs.exists() {
            Some(load_document(&paths.specs)?)
        } else {
            None
        };
        let cache = if paths.cache.exists() {
            Some(load_cache(&paths.cache)?)
        } else {
            None
        };
        self.entries.push(HotEntry {
            ns,
            closure,
            specs,
            cache,
            dirty: false,
        });
        lane.end(
            load_start,
            "shards",
            "load",
            vec![("closure", ArgValue::Hex(closure))],
        );
        drop(lane);
        self.enforce_budget(Some((ns, closure)));
        Ok(self.entries.len() - 1)
    }

    /// Evicts least-recently-used *clean* shards until the budget holds,
    /// never touching the shard named by `protect` (the one currently
    /// being served).  Dirty shards are pinned; when pins alone exceed
    /// the budget the cache overflows and the overflow is counted.
    fn enforce_budget(&mut self, protect: Option<(usize, u64)>) {
        while self.entries.len() > self.budget {
            match self
                .entries
                .iter()
                .position(|e| !e.dirty && Some((e.ns, e.closure)) != protect)
            {
                Some(i) => {
                    let evicted = self.entries.remove(i);
                    self.stats.evictions += 1;
                    self.recorder.count("shards.evictions", 1);
                    self.recorder.lane(SHARDS_LANE).instant(
                        "shards",
                        "evict",
                        vec![("closure", ArgValue::Hex(evicted.closure))],
                    );
                }
                None => {
                    self.stats.pin_overflows += 1;
                    self.recorder.count("shards.pin_overflows", 1);
                    self.recorder.lane(SHARDS_LANE).instant(
                        "shards",
                        "pin-overflow",
                        vec![("resident", ArgValue::from(self.entries.len()))],
                    );
                    return;
                }
            }
        }
    }

    /// Writes every dirty shard back to disk — cache via the store's
    /// atomic `save_cache`, specs via `atomic_write` of the cached
    /// document — in `(namespace, closure)` order (deterministic file
    /// history), then unpins them and re-enforces the budget.  Returns
    /// how many shards were written.
    ///
    /// # Errors
    /// Returns the `atlas-store` error of the first failed write; the
    /// failed shard and its successors stay dirty (and pinned), so no
    /// data is lost and a later flush can retry.
    pub fn flush(&mut self) -> Result<usize, StoreError> {
        self.flush_filter(None)
    }

    /// [`HotShards::flush`], restricted to one namespace — the session
    /// half of the `flush` op.
    pub fn flush_namespace(&mut self, ns: usize) -> Result<usize, StoreError> {
        self.flush_filter(Some(ns))
    }

    fn flush_filter(&mut self, only: Option<usize>) -> Result<usize, StoreError> {
        self.stats.flushes += 1;
        self.recorder.count("shards.flushes", 1);
        let mut lane = self.recorder.lane(SHARDS_LANE);
        let flush_start = lane.begin();
        let mut dirty: Vec<usize> = (0..self.entries.len())
            .filter(|&i| self.entries[i].dirty && only.is_none_or(|ns| self.entries[i].ns == ns))
            .collect();
        dirty.sort_by_key(|&i| (self.entries[i].ns, self.entries[i].closure));
        let mut written = 0usize;
        for i in dirty {
            let entry = &self.entries[i];
            let paths = shard_entry(&self.namespaces[entry.ns].dir, entry.closure);
            if let Some(cache) = &entry.cache {
                save_cache(&paths.cache, cache)?;
            }
            if let Some(specs) = &entry.specs {
                atomic_write(&paths.specs, &specs.render())?;
            }
            self.entries[i].dirty = false;
            written += 1;
            self.stats.flushed_shards += 1;
        }
        self.recorder.count("shards.flushed_shards", written as u64);
        lane.end(
            flush_start,
            "shards",
            "flush",
            vec![("written", ArgValue::from(written))],
        );
        drop(lane);
        self.enforce_budget(None);
        Ok(written)
    }

    fn load_specs_in(
        &mut self,
        ns: usize,
        closure: u64,
        program: &atlas_ir::Program,
    ) -> Result<Option<SpecArtifact>, StoreError> {
        let i = self.ensure(ns, closure)?;
        let Some(doc) = &self.entries[i].specs else {
            return Ok(None);
        };
        let paths = shard_entry(&self.namespaces[ns].dir, closure);
        SpecArtifact::decode(doc, program)
            .map(Some)
            .map_err(|e| StoreError::schema(&paths.specs, e))
    }

    fn count_verdicts_in(
        &mut self,
        ns: usize,
        closure: u64,
        context: u64,
    ) -> Result<usize, StoreError> {
        let i = self.ensure(ns, closure)?;
        Ok(self.entries[i]
            .cache
            .as_ref()
            .map(|cache| {
                cache
                    .shards
                    .iter()
                    .filter(|s| s.provenance.context == context)
                    .map(|s| s.entries.len())
                    .sum()
            })
            .unwrap_or(0))
    }

    fn persist_cluster_in(
        &mut self,
        ns: usize,
        closure: u64,
        fresh: &VerdictCache,
        provenance: CacheProvenance,
        specs: &SpecArtifact,
        program: &atlas_ir::Program,
    ) -> Result<usize, StoreError> {
        let i = self.ensure(ns, closure)?;
        let paths = shard_entry(&self.namespaces[ns].dir, closure);
        let session = CacheArtifact::from_cache(fresh, provenance);
        let mut resident = self.entries[i].cache.take().unwrap_or_default();
        let before = resident.num_entries();
        resident.merge(&session);
        let new_entries = resident.num_entries() - before;
        let doc = specs
            .encode(program)
            .map_err(|e| StoreError::schema(&paths.specs, e))?;
        let entry = &mut self.entries[i];
        entry.cache = Some(resident);
        entry.specs = Some(doc);
        entry.dirty = true;
        Ok(new_entries)
    }
}

/// The root-namespace view: [`HotShards`] itself keeps implementing
/// `ShardStore` over the store root, so single-session callers (and the
/// pre-session test suite) need no adapter.
impl ShardStore for HotShards {
    fn load_specs(
        &mut self,
        closure: u64,
        program: &atlas_ir::Program,
    ) -> Result<Option<SpecArtifact>, StoreError> {
        self.load_specs_in(ROOT_NAMESPACE, closure, program)
    }

    fn count_verdicts(&mut self, closure: u64, context: u64) -> Result<usize, StoreError> {
        self.count_verdicts_in(ROOT_NAMESPACE, closure, context)
    }

    fn persist_cluster(
        &mut self,
        closure: u64,
        fresh: &VerdictCache,
        provenance: CacheProvenance,
        specs: &SpecArtifact,
        program: &atlas_ir::Program,
    ) -> Result<usize, StoreError> {
        self.persist_cluster_in(ROOT_NAMESPACE, closure, fresh, provenance, specs, program)
    }
}

/// A `ShardStore` view of one namespace of an exclusively borrowed
/// [`HotShards`] — the single-threaded counterpart of [`SharedShards`].
pub struct NamespaceShards<'a> {
    hot: &'a mut HotShards,
    ns: usize,
}

impl<'a> NamespaceShards<'a> {
    /// A view of `hot` restricted to namespace `ns`.
    pub fn new(hot: &'a mut HotShards, ns: usize) -> NamespaceShards<'a> {
        NamespaceShards { hot, ns }
    }
}

impl ShardStore for NamespaceShards<'_> {
    fn load_specs(
        &mut self,
        closure: u64,
        program: &atlas_ir::Program,
    ) -> Result<Option<SpecArtifact>, StoreError> {
        self.hot.load_specs_in(self.ns, closure, program)
    }

    fn count_verdicts(&mut self, closure: u64, context: u64) -> Result<usize, StoreError> {
        self.hot.count_verdicts_in(self.ns, closure, context)
    }

    fn persist_cluster(
        &mut self,
        closure: u64,
        fresh: &VerdictCache,
        provenance: CacheProvenance,
        specs: &SpecArtifact,
        program: &atlas_ir::Program,
    ) -> Result<usize, StoreError> {
        self.hot
            .persist_cluster_in(self.ns, closure, fresh, provenance, specs, program)
    }
}

/// A `ShardStore` view of one namespace of a *shared* [`HotShards`],
/// locking per call — the concurrency seam of the worker pool.  Sessions
/// never share a namespace, so concurrent edits only contend on the LRU
/// structure itself, never on a shard's content; the lock is held for
/// splice/persist bookkeeping, not for oracle execution, which happens
/// between `ShardStore` calls.  Cross-session eviction between two calls
/// is harmless: every call re-ensures residency, and eviction only drops
/// clean shards whose bytes are on disk (the determinism invariant).
pub struct SharedShards {
    hot: Arc<Mutex<HotShards>>,
    ns: usize,
}

impl SharedShards {
    /// A locking view of `hot` restricted to namespace `ns`.
    pub fn new(hot: Arc<Mutex<HotShards>>, ns: usize) -> SharedShards {
        SharedShards { hot, ns }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HotShards> {
        self.hot.lock().expect("hot shard cache lock poisoned")
    }
}

impl ShardStore for SharedShards {
    fn load_specs(
        &mut self,
        closure: u64,
        program: &atlas_ir::Program,
    ) -> Result<Option<SpecArtifact>, StoreError> {
        let ns = self.ns;
        self.lock().load_specs_in(ns, closure, program)
    }

    fn count_verdicts(&mut self, closure: u64, context: u64) -> Result<usize, StoreError> {
        let ns = self.ns;
        self.lock().count_verdicts_in(ns, closure, context)
    }

    fn persist_cluster(
        &mut self,
        closure: u64,
        fresh: &VerdictCache,
        provenance: CacheProvenance,
        specs: &SpecArtifact,
        program: &atlas_ir::Program,
    ) -> Result<usize, StoreError> {
        let ns = self.ns;
        self.lock()
            .persist_cluster_in(ns, closure, fresh, provenance, specs, program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("atlas-hot-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn missing_shards_resolve_to_empty_without_touching_disk_layout() {
        let root = scratch("missing");
        let mut hot = HotShards::new(&root, 2);
        assert_eq!(hot.count_verdicts(7, 1).unwrap(), 0);
        assert_eq!(hot.resident(), 1);
        assert_eq!(hot.stats().misses, 1);
        // The second lookup is a hit.
        assert_eq!(hot.count_verdicts(7, 1).unwrap(), 0);
        assert_eq!(hot.stats().hits, 1);
        assert!(!root.exists(), "reads must not create the store root");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn clean_shards_evict_in_lru_order() {
        let root = scratch("lru");
        let mut hot = HotShards::new(&root, 2);
        hot.count_verdicts(1, 0).unwrap();
        hot.count_verdicts(2, 0).unwrap();
        hot.count_verdicts(1, 0).unwrap(); // touch 1: now 2 is the LRU
        hot.count_verdicts(3, 0).unwrap(); // evicts 2
        assert_eq!(hot.resident(), 2);
        assert_eq!(hot.stats().evictions, 1);
        hot.count_verdicts(1, 0).unwrap(); // still resident: a hit
        assert_eq!(hot.stats().hits, 2);
        hot.count_verdicts(2, 0).unwrap(); // was evicted: a miss again
        assert_eq!(hot.stats().misses, 4);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn namespaces_do_not_alias_and_share_the_budget() {
        let root = scratch("ns");
        let mut hot = HotShards::new(&root, 2);
        let ns = hot.add_namespace(root.join("sessions").join("a"));
        // The same closure id in two namespaces is two distinct entries.
        hot.count_verdicts(7, 0).unwrap();
        hot.count_verdicts_in(ns, 7, 0).unwrap();
        assert_eq!(hot.resident(), 2);
        assert_eq!(hot.stats().misses, 2);
        // A third shard — in either namespace — evicts across namespaces:
        // the budget is shared, the oldest clean shard goes first.
        hot.count_verdicts_in(ns, 8, 0).unwrap();
        assert_eq!(hot.resident(), 2);
        assert_eq!(hot.stats().evictions, 1);
        hot.count_verdicts(7, 0).unwrap(); // the root shard was evicted
        assert_eq!(hot.stats().misses, 4);
        // Retiring the namespace drops its entries, not the root's.
        hot.retire_namespace(ns);
        assert_eq!(hot.resident(), 1);
        let _ = std::fs::remove_dir_all(&root);
    }
}
