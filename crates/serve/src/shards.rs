//! The hot shard cache: an LRU of decoded closure shards with dirty-shard
//! pinning and write-behind persistence.
//!
//! [`HotShards`] implements `atlas_core::ShardStore`, so an incremental
//! session splices from and persists to *memory*; disk is only touched on
//! a cache miss (shard load) and on [`HotShards::flush`] (write-behind).
//! The invariants:
//!
//! * **Transparency.**  Because the daemon is the store root's sole owner
//!   while resident, the in-memory merge performed by
//!   [`ShardStore::persist_cluster`] equals the read-merge-write
//!   `DiskShards` would have performed — a flush at any point leaves the
//!   root byte-identical to what an all-disk run would have written.
//! * **Pinning.**  A *dirty* shard (persisted to but not yet flushed) is
//!   never evicted — eviction would lose verdicts and specs.  When every
//!   resident shard is dirty the cache overflows its budget instead
//!   (counted in [`ShardCacheStats::pin_overflows`]) until the next
//!   flush unpins them.
//! * **Determinism.**  Eviction only ever drops *clean* shards, whose
//!   bytes are on disk; a re-load decodes the same artifact, so cache
//!   pressure can change timings and I/O counts but never results.
//!
//! Spec artifacts are cached as raw JSON documents, not decoded
//! [`SpecArtifact`]s: decoding resolves method symbols against a specific
//! program, and the daemon's program changes on every edit.  Decoding per
//! splice (cheap) keeps the cache program-independent.

use atlas_core::{CacheArtifact, CacheProvenance, ShardStore, SpecArtifact, StoreError};
use atlas_learn::VerdictCache;
use atlas_obs::{ArgValue, Recorder};
use atlas_store::{atomic_write, load_cache, load_document, save_cache, shard_entry, Json};
use std::path::{Path, PathBuf};

/// The observability lane all hot-shard events drain to (the daemon's
/// "shards" track; lane 1 is the service request track).
const SHARDS_LANE: u64 = 2;

/// Counters of the hot shard cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCacheStats {
    /// Shard lookups answered from memory.
    pub hits: usize,
    /// Shard lookups that went to disk.
    pub misses: usize,
    /// Clean shards dropped to stay within the budget.
    pub evictions: usize,
    /// Times the budget could not be enforced because every resident
    /// shard was dirty (pinned).
    pub pin_overflows: usize,
    /// Flush passes performed.
    pub flushes: usize,
    /// Dirty shards written across all flush passes.
    pub flushed_shards: usize,
}

/// One resident closure shard.
struct HotEntry {
    closure: u64,
    /// The shard's spec document (`atlas-spec/1`), raw.  `None` when the
    /// shard has no specs on disk yet.
    specs: Option<Json>,
    /// The shard's decoded verdict cache.  `None` when the shard has no
    /// cache file on disk yet.
    cache: Option<CacheArtifact>,
    /// Whether the entry holds changes the disk does not.
    dirty: bool,
}

/// An LRU cache of closure shards over a store root.  See the
/// [module docs](self) for the invariants.
pub struct HotShards {
    root: PathBuf,
    budget: usize,
    /// LRU order: least-recently used first, most-recently used last.
    entries: Vec<HotEntry>,
    stats: ShardCacheStats,
    /// Observability handle; mirrors [`ShardCacheStats`] into the shared
    /// `shards.*` counter vocabulary and emits load/evict/flush events.
    recorder: Recorder,
}

impl HotShards {
    /// A hot cache over `root` keeping at most `budget` shards resident
    /// (a zero budget is promoted to one — the cache always holds the
    /// shard it is actively serving).
    pub fn new(root: &Path, budget: usize) -> HotShards {
        HotShards {
            root: root.to_path_buf(),
            budget: budget.max(1),
            entries: Vec::new(),
            stats: ShardCacheStats::default(),
            recorder: Recorder::off(),
        }
    }

    /// Attaches an observability recorder (see `atlas-obs`): every
    /// counter in [`ShardCacheStats`] is mirrored as a `shards.*` metric,
    /// and shard loads / evictions / flushes emit trace events.
    pub fn with_recorder(mut self, recorder: Recorder) -> HotShards {
        self.recorder = recorder;
        self
    }

    /// The store root this cache fronts.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The cache counters so far.
    pub fn stats(&self) -> ShardCacheStats {
        self.stats
    }

    /// Shards currently resident.
    pub fn resident(&self) -> usize {
        self.entries.len()
    }

    /// Resident shards holding unflushed changes.
    pub fn dirty(&self) -> usize {
        self.entries.iter().filter(|e| e.dirty).count()
    }

    /// Makes the shard for `closure` resident (loading both files from
    /// disk on a miss) and returns its index — always the *last* slot,
    /// because residency is an LRU touch.
    fn ensure(&mut self, closure: u64) -> Result<usize, StoreError> {
        if let Some(i) = self.entries.iter().position(|e| e.closure == closure) {
            self.stats.hits += 1;
            self.recorder.count("shards.hits", 1);
            let entry = self.entries.remove(i);
            self.entries.push(entry);
            return Ok(self.entries.len() - 1);
        }
        self.stats.misses += 1;
        self.recorder.count("shards.misses", 1);
        let mut lane = self.recorder.lane(SHARDS_LANE);
        let load_start = lane.begin();
        let paths = shard_entry(&self.root, closure);
        let specs = if paths.specs.exists() {
            Some(load_document(&paths.specs)?)
        } else {
            None
        };
        let cache = if paths.cache.exists() {
            Some(load_cache(&paths.cache)?)
        } else {
            None
        };
        self.entries.push(HotEntry {
            closure,
            specs,
            cache,
            dirty: false,
        });
        lane.end(
            load_start,
            "shards",
            "load",
            vec![("closure", ArgValue::Hex(closure))],
        );
        drop(lane);
        self.enforce_budget(Some(closure));
        Ok(self.entries.len() - 1)
    }

    /// Evicts least-recently-used *clean* shards until the budget holds,
    /// never touching the shard named by `protect` (the one currently
    /// being served).  Dirty shards are pinned; when pins alone exceed
    /// the budget the cache overflows and the overflow is counted.
    fn enforce_budget(&mut self, protect: Option<u64>) {
        while self.entries.len() > self.budget {
            match self
                .entries
                .iter()
                .position(|e| !e.dirty && Some(e.closure) != protect)
            {
                Some(i) => {
                    let evicted = self.entries.remove(i);
                    self.stats.evictions += 1;
                    self.recorder.count("shards.evictions", 1);
                    self.recorder.lane(SHARDS_LANE).instant(
                        "shards",
                        "evict",
                        vec![("closure", ArgValue::Hex(evicted.closure))],
                    );
                }
                None => {
                    self.stats.pin_overflows += 1;
                    self.recorder.count("shards.pin_overflows", 1);
                    self.recorder.lane(SHARDS_LANE).instant(
                        "shards",
                        "pin-overflow",
                        vec![("resident", ArgValue::from(self.entries.len()))],
                    );
                    return;
                }
            }
        }
    }

    /// Writes every dirty shard back to disk — cache via the store's
    /// atomic `save_cache`, specs via `atomic_write` of the cached
    /// document — in closure order (deterministic file history), then
    /// unpins them and re-enforces the budget.  Returns how many shards
    /// were written.
    ///
    /// # Errors
    /// Returns the `atlas-store` error of the first failed write; the
    /// failed shard and its successors stay dirty (and pinned), so no
    /// data is lost and a later flush can retry.
    pub fn flush(&mut self) -> Result<usize, StoreError> {
        self.stats.flushes += 1;
        self.recorder.count("shards.flushes", 1);
        let mut lane = self.recorder.lane(SHARDS_LANE);
        let flush_start = lane.begin();
        let mut dirty: Vec<usize> = (0..self.entries.len())
            .filter(|&i| self.entries[i].dirty)
            .collect();
        dirty.sort_by_key(|&i| self.entries[i].closure);
        let mut written = 0usize;
        for i in dirty {
            let entry = &self.entries[i];
            let paths = shard_entry(&self.root, entry.closure);
            if let Some(cache) = &entry.cache {
                save_cache(&paths.cache, cache)?;
            }
            if let Some(specs) = &entry.specs {
                atomic_write(&paths.specs, &specs.render())?;
            }
            self.entries[i].dirty = false;
            written += 1;
            self.stats.flushed_shards += 1;
        }
        self.recorder.count("shards.flushed_shards", written as u64);
        lane.end(
            flush_start,
            "shards",
            "flush",
            vec![("written", ArgValue::from(written))],
        );
        drop(lane);
        self.enforce_budget(None);
        Ok(written)
    }
}

impl ShardStore for HotShards {
    fn load_specs(
        &mut self,
        closure: u64,
        program: &atlas_ir::Program,
    ) -> Result<Option<SpecArtifact>, StoreError> {
        let i = self.ensure(closure)?;
        let Some(doc) = &self.entries[i].specs else {
            return Ok(None);
        };
        let paths = shard_entry(&self.root, closure);
        SpecArtifact::decode(doc, program)
            .map(Some)
            .map_err(|e| StoreError::schema(&paths.specs, e))
    }

    fn count_verdicts(&mut self, closure: u64, context: u64) -> Result<usize, StoreError> {
        let i = self.ensure(closure)?;
        Ok(self.entries[i]
            .cache
            .as_ref()
            .map(|cache| {
                cache
                    .shards
                    .iter()
                    .filter(|s| s.provenance.context == context)
                    .map(|s| s.entries.len())
                    .sum()
            })
            .unwrap_or(0))
    }

    fn persist_cluster(
        &mut self,
        closure: u64,
        fresh: &VerdictCache,
        provenance: CacheProvenance,
        specs: &SpecArtifact,
        program: &atlas_ir::Program,
    ) -> Result<usize, StoreError> {
        let i = self.ensure(closure)?;
        let paths = shard_entry(&self.root, closure);
        let session = CacheArtifact::from_cache(fresh, provenance);
        let mut resident = self.entries[i].cache.take().unwrap_or_default();
        let before = resident.num_entries();
        resident.merge(&session);
        let new_entries = resident.num_entries() - before;
        let doc = specs
            .encode(program)
            .map_err(|e| StoreError::schema(&paths.specs, e))?;
        let entry = &mut self.entries[i];
        entry.cache = Some(resident);
        entry.specs = Some(doc);
        entry.dirty = true;
        Ok(new_entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("atlas-hot-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn missing_shards_resolve_to_empty_without_touching_disk_layout() {
        let root = scratch("missing");
        let mut hot = HotShards::new(&root, 2);
        assert_eq!(hot.count_verdicts(7, 1).unwrap(), 0);
        assert_eq!(hot.resident(), 1);
        assert_eq!(hot.stats().misses, 1);
        // The second lookup is a hit.
        assert_eq!(hot.count_verdicts(7, 1).unwrap(), 0);
        assert_eq!(hot.stats().hits, 1);
        assert!(!root.exists(), "reads must not create the store root");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn clean_shards_evict_in_lru_order() {
        let root = scratch("lru");
        let mut hot = HotShards::new(&root, 2);
        hot.count_verdicts(1, 0).unwrap();
        hot.count_verdicts(2, 0).unwrap();
        hot.count_verdicts(1, 0).unwrap(); // touch 1: now 2 is the LRU
        hot.count_verdicts(3, 0).unwrap(); // evicts 2
        assert_eq!(hot.resident(), 2);
        assert_eq!(hot.stats().evictions, 1);
        hot.count_verdicts(1, 0).unwrap(); // still resident: a hit
        assert_eq!(hot.stats().hits, 2);
        hot.count_verdicts(2, 0).unwrap(); // was evicted: a miss again
        assert_eq!(hot.stats().misses, 4);
        let _ = std::fs::remove_dir_all(&root);
    }
}
