//! Wire-protocol fuzzing: every request/response variant survives an
//! encode → decode round trip, and no input — malformed, truncated, or
//! oversized — makes the codec panic or the daemon wedge.
//!
//! The strategies here draw raw entropy (`u64` words) and derive JSON
//! values, envelopes, and hostile byte streams from it with small
//! deterministic generators, matching the vendored proptest's
//! seed-per-case model.

use atlas_serve::{
    decode_request, decode_response, encode_request, encode_response, read_frame, salvage_id,
    EditRequest, Envelope, ErrorCode, Frame, Request, Response, ServeConfig, Service, WireError,
};
use atlas_store::Json;
use proptest::prelude::*;
use std::io::Write;

/// A tiny splitmix64 so generators can fan one entropy word out into many.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Characters the string generator draws from: ASCII, escapes, quotes,
/// multi-byte, and control characters — everything the escaper must handle.
const CHARSET: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '\n', '\r', '\t', '\u{1}', '{', '}', '[', ']', ':', ',', 'é',
    '日', '🛰', '\u{7f}',
];

fn gen_string(state: &mut u64, max_len: usize) -> String {
    let len = (mix(state) as usize) % (max_len + 1);
    (0..len)
        .map(|_| CHARSET[(mix(state) as usize) % CHARSET.len()])
        .collect()
}

/// An arbitrary JSON value of bounded depth.  Object keys are made unique
/// by index — the strict parser rejects duplicate keys, which would break
/// the round trip for reasons that are the *parser's* contract, not the
/// codec's.
fn gen_json(state: &mut u64, depth: usize) -> Json {
    let pick = (mix(state) as usize) % if depth == 0 { 5 } else { 7 };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(mix(state) & 1 == 0),
        2 => Json::Int(mix(state) as i64),
        3 => Json::Float((mix(state) as i64 % 1_000_000) as f64 / 8.0),
        4 => Json::Str(gen_string(state, 12)),
        5 => {
            let n = (mix(state) as usize) % 4;
            Json::Arr((0..n).map(|_| gen_json(state, depth - 1)).collect())
        }
        _ => {
            let n = (mix(state) as usize) % 4;
            let mut obj = Json::obj();
            for i in 0..n {
                obj = obj.set(
                    format!("k{i}-{}", gen_string(state, 4)).as_str(),
                    gen_json(state, depth - 1),
                );
            }
            obj
        }
    }
}

fn gen_request(state: &mut u64) -> Request {
    match (mix(state) as usize) % 10 {
        0 => Request::Hello,
        1 => Request::Ping,
        2 => Request::Specs,
        3 => Request::Fingerprint,
        4 => Request::Stats,
        5 => Request::Flush,
        6 => Request::Shutdown,
        7 => Request::Open,
        8 => Request::Close,
        _ => Request::Edit(EditRequest {
            kind: [
                atlas_ir::MutationKind::RenameLocal,
                atlas_ir::MutationKind::BodyEdit,
                atlas_ir::MutationKind::AddMethod,
                atlas_ir::MutationKind::SignatureChange,
            ][(mix(state) as usize) % 4],
            // The wire carries seeds as JSON integers, so the codec's
            // domain is the non-negative i64 range.
            seed: mix(state) % (i64::MAX as u64 + 1),
            target: if mix(state) & 1 == 0 {
                None
            } else {
                Some(gen_string(state, 16))
            },
        }),
    }
}

fn gen_envelope(state: &mut u64) -> Envelope {
    Envelope {
        id: if mix(state) & 1 == 0 {
            None
        } else {
            Some(gen_json(state, 1))
        },
        // Roughly half the envelopes are /2 frames addressing a session;
        // the name is an arbitrary string — the *codec* carries any
        // spelling, only `open` validates names.
        session: if mix(state) & 1 == 0 {
            None
        } else {
            Some(gen_string(state, 8))
        },
        request: gen_request(state),
    }
}

const ALL_CODES: &[ErrorCode] = &[
    ErrorCode::BadJson,
    ErrorCode::OversizedFrame,
    ErrorCode::BadRequest,
    ErrorCode::BadEdit,
    ErrorCode::Store,
    ErrorCode::ShuttingDown,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every request envelope round-trips through one single-line frame.
    #[test]
    fn request_envelopes_round_trip(entropy in any::<u64>()) {
        let mut state = entropy;
        let envelope = gen_envelope(&mut state);
        let frame = encode_request(&envelope);
        prop_assert!(!frame.contains('\n'), "frames must be single lines");
        let decoded = decode_request(&frame);
        prop_assert_eq!(decoded, Ok(envelope));
    }

    /// Every response — ok with an arbitrary payload, or err with every
    /// error code and a hostile message — round-trips likewise.
    #[test]
    fn responses_round_trip(entropy in any::<u64>()) {
        let mut state = entropy;
        let id = if mix(&mut state) & 1 == 0 {
            None
        } else {
            Some(gen_json(&mut state, 1))
        };
        let response = if mix(&mut state) & 1 == 0 {
            Response::ok(id, gen_json(&mut state, 2))
        } else {
            Response::err(
                id,
                WireError::new(
                    ALL_CODES[(mix(&mut state) as usize) % ALL_CODES.len()],
                    gen_string(&mut state, 24),
                ),
            )
        };
        let frame = encode_response(&response);
        prop_assert!(!frame.contains('\n'), "frames must be single lines");
        prop_assert_eq!(decode_response(&frame), Ok(response));
    }

    /// Arbitrary garbage — including truncations of valid frames — never
    /// panics the decoder or the id salvager; failures are structured.
    #[test]
    fn hostile_frames_fail_structurally(entropy in any::<u64>()) {
        let mut state = entropy;
        let line = match (mix(&mut state) as usize) % 3 {
            // Raw noise.
            0 => gen_string(&mut state, 40),
            // A valid frame truncated at an arbitrary char boundary.
            1 => {
                let valid = encode_request(&gen_envelope(&mut state));
                let cut = (mix(&mut state) as usize) % (valid.len() + 1);
                valid.chars().take(cut).collect()
            }
            // Valid JSON that is not a valid request.
            _ => atlas_serve::render_compact(&gen_json(&mut state, 2)),
        };
        let _ = salvage_id(&line);
        if let Err(error) = decode_request(&line) {
            prop_assert!(
                matches!(error.code, ErrorCode::BadJson | ErrorCode::BadRequest),
                "decode failures must be bad-json or bad-request, got {}",
                error.code.as_str()
            );
            prop_assert!(!error.message.is_empty());
        }
    }

    /// The bounded frame reader stays line-synchronized over arbitrary
    /// streams: short lines come back verbatim, overlong lines collapse to
    /// one `Oversized` marker each, and the stream always ends in `Eof`.
    #[test]
    fn frame_reader_stays_line_synchronized(entropy in any::<u64>()) {
        const MAX_FRAME: usize = 32;
        let mut state = entropy;
        let n_lines = (mix(&mut state) as usize) % 6;
        let mut lines = Vec::new();
        for _ in 0..n_lines {
            let oversize = mix(&mut state).is_multiple_of(3);
            let len = if oversize {
                MAX_FRAME + 1 + (mix(&mut state) as usize) % 80
            } else {
                (mix(&mut state) as usize) % (MAX_FRAME + 1)
            };
            let line: String = (0..len)
                .map(|_| {
                    // ASCII payload, no newline/CR: one byte per char keeps
                    // the length-vs-bound arithmetic exact.
                    let c = b' ' + (mix(&mut state) % 94) as u8;
                    c as char
                })
                .collect();
            lines.push(line);
        }
        let mut stream = String::new();
        for line in &lines {
            stream.push_str(line);
            stream.push('\n');
        }
        let mut reader = std::io::BufReader::new(stream.as_bytes());
        for line in &lines {
            let frame = read_frame(&mut reader, MAX_FRAME).expect("in-memory read");
            if line.len() > MAX_FRAME {
                prop_assert_eq!(frame, Frame::Oversized);
            } else {
                prop_assert_eq!(frame, Frame::Line(line.clone()));
            }
        }
        prop_assert_eq!(read_frame(&mut reader, MAX_FRAME).expect("eof"), Frame::Eof);
    }
}

/// A `Write` handle the stream test can inspect after the writer thread
/// finishes with it.
#[derive(Clone)]
struct SharedSink(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A live daemon fed a hostile stream answers every frame with a
/// structured response — in order, without panicking or wedging — and
/// still serves honest requests afterwards.
#[test]
fn daemon_survives_hostile_stream() {
    let store = std::env::temp_dir().join(format!("atlas-serve-hostile-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let mut config = ServeConfig::small(store.clone());
    config.max_frame = 256;
    let service = Service::spawn(config).expect("daemon startup");

    let oversized = format!("{{\"id\":9,\"op\":\"{}\"}}", "x".repeat(400));
    let frames = [
        "{\"op\":\"ping\",\"id\":1}",                        // honest
        "this is not json",                                  // bad-json
        "{\"op\":\"ping\"",                                  // truncated JSON
        "[1,2,3]",                                           // JSON, not an object
        "{\"id\":4}",                                        // no op
        "{\"op\":\"warp\",\"id\":5}",                        // unknown op
        "{\"op\":\"edit\",\"kind\":7,\"id\":6}",             // wrong type
        "{\"op\":\"edit\",\"seed\":-1,\"id\":7}",            // negative seed
        "{\"op\":\"edit\",\"target\":\"No.such\",\"id\":8}", // ineligible edit
        oversized.as_str(),                                  // oversized frame
        "",                                                  // blank: skipped
        "{\"op\":\"ping\",\"id\":10}",                       // still alive?
        "{\"op\":\"shutdown\",\"id\":11}",
    ];
    let input = frames.join("\n") + "\n";
    let sink = SharedSink(Default::default());
    service
        .serve_stream(std::io::BufReader::new(input.as_bytes()), sink.clone(), 256)
        .expect("stream served");

    let output = sink.0.lock().unwrap().clone();
    let output = String::from_utf8(output).expect("utf-8 responses");
    let responses: Vec<Response> = output
        .lines()
        .map(|line| decode_response(line).expect("every reply is a structured response"))
        .collect();
    // One response per non-blank frame, in order.
    assert_eq!(responses.len(), frames.len() - 1);

    let code_of = |r: &Response| r.outcome.as_ref().err().map(|e| e.code);
    assert!(responses[0].outcome.is_ok(), "honest ping: {responses:?}");
    assert_eq!(responses[0].id, Some(Json::Int(1)));
    assert_eq!(code_of(&responses[1]), Some(ErrorCode::BadJson));
    assert_eq!(code_of(&responses[2]), Some(ErrorCode::BadJson));
    assert_eq!(code_of(&responses[3]), Some(ErrorCode::BadRequest));
    assert_eq!(code_of(&responses[4]), Some(ErrorCode::BadRequest));
    assert_eq!(responses[4].id, Some(Json::Int(4)), "salvaged id echoes");
    assert_eq!(code_of(&responses[5]), Some(ErrorCode::BadRequest));
    assert_eq!(code_of(&responses[6]), Some(ErrorCode::BadRequest));
    assert_eq!(code_of(&responses[7]), Some(ErrorCode::BadRequest));
    assert_eq!(code_of(&responses[8]), Some(ErrorCode::BadEdit));
    assert_eq!(responses[8].id, Some(Json::Int(8)));
    assert_eq!(code_of(&responses[9]), Some(ErrorCode::OversizedFrame));
    assert!(responses[10].outcome.is_ok(), "daemon must not wedge");
    assert_eq!(responses[10].id, Some(Json::Int(10)));
    assert!(responses[11].outcome.is_ok(), "orderly shutdown");
    let _ = std::fs::remove_dir_all(&store);
}

/// Hostile `/2` traffic: unknown sessions, bad names, duplicate and
/// flooded opens, closes of the unclosable, edits after close — every
/// one a structured error, with the daemon fully alive throughout and
/// /1 frames still answered with /1 (session-less) responses.
#[test]
fn sessions_enforce_open_close_lifecycle() {
    let store = std::env::temp_dir().join(format!("atlas-serve-lifecycle-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let config = ServeConfig::small(store.clone()).with_max_sessions(3);
    let mut service = Service::spawn(config).expect("daemon startup");
    let handle = service.handle();
    let code_of = |r: &Response| r.outcome.as_ref().err().map(|e| e.code);

    // A session nobody opened is unknown — and the error echoes the
    // session, making it an /2 frame.
    let r = handle.request(Envelope::with_id(1_i64, Request::Ping).in_session("ghost"));
    assert_eq!(code_of(&r), Some(ErrorCode::UnknownSession));
    assert_eq!(r.session.as_deref(), Some("ghost"));

    // Open a named session; the response echoes the accepted name.
    let r = handle.request(Envelope::with_id(2_i64, Request::Open).in_session("alpha"));
    assert!(r.outcome.is_ok(), "open alpha: {r:?}");
    assert_eq!(r.session.as_deref(), Some("alpha"));
    let r = handle.request(Envelope::with_id(3_i64, Request::Ping).in_session("alpha"));
    assert!(r.outcome.is_ok(), "ping alpha: {r:?}");

    // Names are validated (filesystem-safe), duplicates rejected.
    let r = handle.request(Envelope::with_id(4_i64, Request::Open).in_session("no/slash"));
    assert_eq!(code_of(&r), Some(ErrorCode::BadRequest));
    let r = handle.request(Envelope::with_id(5_i64, Request::Open).in_session("alpha"));
    assert_eq!(code_of(&r), Some(ErrorCode::BadRequest));

    // Open flood: the cap counts the default session, so with
    // max_sessions = 3 exactly one more open fits.
    let r = handle.request(Envelope::with_id(6_i64, Request::Open).in_session("beta"));
    assert!(r.outcome.is_ok(), "open beta: {r:?}");
    for i in 0..8 {
        let r =
            handle.request(Envelope::with_id(7_i64, Request::Open).in_session(format!("flood{i}")));
        assert_eq!(code_of(&r), Some(ErrorCode::BadRequest), "flood open {i}");
    }

    // `close` needs a session, and the default session is not closable.
    let r = handle.request(Envelope::with_id(8_i64, Request::Close));
    assert_eq!(code_of(&r), Some(ErrorCode::BadRequest));
    let r = handle.request(Envelope::with_id(9_i64, Request::Close).in_session("default"));
    assert_eq!(code_of(&r), Some(ErrorCode::BadRequest));

    // Close beta; anything addressed to it afterwards is unknown.
    let r = handle.request(Envelope::with_id(10_i64, Request::Close).in_session("beta"));
    assert!(r.outcome.is_ok(), "close beta: {r:?}");
    let edit = Request::Edit(EditRequest {
        kind: atlas_ir::MutationKind::BodyEdit,
        seed: 1,
        target: None,
    });
    let r = handle.request(Envelope::with_id(11_i64, edit).in_session("beta"));
    assert_eq!(code_of(&r), Some(ErrorCode::UnknownSession));
    // ... and its slot is free again.
    let r = handle.request(Envelope::with_id(12_i64, Request::Open).in_session("gamma"));
    assert!(r.outcome.is_ok(), "reopen after close: {r:?}");

    // A plain /1 frame still gets a session-less /1 response, over the
    // wire codec end to end.
    let r = handle.request_line("{\"op\":\"ping\",\"id\":13}");
    assert!(r.outcome.is_ok(), "/1 ping: {r:?}");
    assert_eq!(r.session, None);
    let frame = encode_response(&r);
    assert!(
        frame.contains("atlas-serve/1") && !frame.contains("session"),
        "/1 clients must see pure /1 frames: {frame}"
    );

    let r = handle.request(Envelope::with_id(14_i64, Request::Shutdown));
    assert!(r.outcome.is_ok(), "shutdown: {r:?}");
    service.join();
    let _ = std::fs::remove_dir_all(&store);
}
