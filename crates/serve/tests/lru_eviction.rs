//! Hot-shard cache transparency: a daemon squeezed into a one-shard LRU
//! budget — evicting and reloading shards mid-stream — answers every edit
//! exactly like a daemon that never evicts, and a write-behind daemon
//! that pins dirty shards past its budget persists exactly the store an
//! eager-flushing daemon does.

use atlas_serve::{Daemon, EditRequest, Envelope, Request, ServeConfig};
use atlas_store::Json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("atlas-serve-lru-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The edit script: body edits alternating between javalib-lang's two
/// clusters, so a one-shard budget must evict on every step.
const SCRIPT: &[&str] = &[
    "StringBuilder.append",
    "Integer.intValue",
    "StringBuilder.append",
    "Integer.intValue",
    "StringBuilder.append",
    "Integer.intValue",
];

struct ScriptOutcome {
    /// One edit-response result per script step.
    edits: Vec<Json>,
    /// The final `specs` artifact, rendered.
    specs: String,
    /// The final `stats` result.
    stats: Json,
}

fn run_script(store: &Path, shard_budget: usize, flush_every: usize) -> ScriptOutcome {
    let mut config = ServeConfig::small(store.to_path_buf());
    config.shard_budget = shard_budget;
    config.flush_every = flush_every;
    let daemon = Daemon::new(config).expect("daemon startup");
    let edits = SCRIPT
        .iter()
        .enumerate()
        .map(|(i, target)| {
            let envelope = Envelope::of(Request::Edit(EditRequest {
                kind: atlas_ir::MutationKind::BodyEdit,
                target: Some(target.to_string()),
                seed: 1000 + i as u64,
            }));
            daemon
                .handle(&envelope)
                .outcome
                .unwrap_or_else(|e| panic!("edit {i} ({target}) failed: {e}"))
        })
        .collect();
    let stats = daemon
        .handle(&Envelope::of(Request::Stats))
        .outcome
        .expect("stats");
    let specs = daemon
        .handle(&Envelope::of(Request::Specs))
        .outcome
        .expect("specs")
        .get("artifact")
        .expect("artifact payload")
        .render();
    let flushed = daemon
        .handle(&Envelope::of(Request::Flush))
        .outcome
        .expect("flush");
    assert!(flushed.get("flushed_shards").is_some());
    ScriptOutcome {
        edits,
        specs,
        stats,
    }
}

fn shard_stat(stats: &Json, key: &str) -> i64 {
    stats
        .get("shards")
        .and_then(|s| s.get(key))
        .and_then(Json::as_int)
        .unwrap_or_else(|| panic!("missing shard stat {key}: {stats:?}"))
}

/// Every file under a store root, keyed by relative path.
fn store_files(root: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("store dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .to_string_lossy()
                    .into_owned();
                files.insert(rel, std::fs::read(&path).expect("store file"));
            }
        }
    }
    files
}

/// A budget of one shard forces an eviction-and-reload on every step of
/// the alternating script; the responses — re-execution counts included —
/// and the final artifact must nonetheless be identical to a run whose
/// cache holds everything.
#[test]
fn eviction_never_changes_results_or_execution_counts() {
    let store_small = scratch("tight");
    let store_big = scratch("roomy");
    let small = run_script(&store_small, 1, 0);
    let big = run_script(&store_big, 64, 0);

    assert_eq!(
        small.edits, big.edits,
        "evicting mid-stream changed an edit response"
    );
    assert_eq!(small.specs, big.specs, "final artifacts diverged");

    assert!(
        shard_stat(&small.stats, "evictions") > 0,
        "a one-shard budget must evict: {:?}",
        small.stats
    );
    assert_eq!(
        shard_stat(&big.stats, "evictions"),
        0,
        "a roomy budget must not evict: {:?}",
        big.stats
    );
    // Reloads show up as misses: the tight cache re-reads shards the
    // roomy cache kept hot.
    assert!(
        shard_stat(&small.stats, "misses") > shard_stat(&big.stats, "misses"),
        "evicted shards must be reloaded from disk"
    );
    assert_eq!(shard_stat(&small.stats, "resident"), 1);

    let _ = std::fs::remove_dir_all(&store_small);
    let _ = std::fs::remove_dir_all(&store_big);
}

/// Dirty shards are pinned: under write-behind (no flush until asked) a
/// one-shard budget overflows without evicting unpersisted work, and the
/// eventual flush writes byte-for-byte the store an eager daemon wrote.
#[test]
fn pinned_dirty_shards_survive_the_budget_and_flush_identically() {
    let store_eager = scratch("eager");
    let store_behind = scratch("behind");
    let eager = run_script(&store_eager, 1, 0);
    let behind = run_script(&store_behind, 1, 100);

    // Same answers, whatever the flush schedule (modulo the per-edit
    // flush receipt, which reports the schedule itself).
    let strip_flush = |edits: &[Json]| -> Vec<Json> {
        edits
            .iter()
            .map(|e| e.clone().set("flushed_shards", Json::Null))
            .collect()
    };
    assert_eq!(strip_flush(&eager.edits), strip_flush(&behind.edits));
    assert_eq!(eager.specs, behind.specs);

    // The write-behind run accumulated more dirty shards than its budget:
    // the pin kept them resident instead of evicting unpersisted work.
    assert!(
        shard_stat(&behind.stats, "pin_overflows") > 0,
        "dirty shards beyond the budget must overflow the pin: {:?}",
        behind.stats
    );
    assert!(
        shard_stat(&behind.stats, "dirty") > 1,
        "write-behind must have accumulated dirty shards: {:?}",
        behind.stats
    );
    assert_eq!(
        shard_stat(&eager.stats, "dirty"),
        0,
        "eager flushing leaves nothing dirty: {:?}",
        eager.stats
    );

    // After the final flush both stores hold the same files with the same
    // bytes.
    assert_eq!(
        store_files(&store_eager),
        store_files(&store_behind),
        "write-behind persisted a different store than eager flushing"
    );

    let _ = std::fs::remove_dir_all(&store_eager);
    let _ = std::fs::remove_dir_all(&store_behind);
}
