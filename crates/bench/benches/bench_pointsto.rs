//! Criterion benches for the points-to substrate: graph extraction and
//! closure computation on generated benchmark apps under the different
//! library variants (implementation, ground-truth specs, no specs).

use atlas_javalib::ground_truth_specs;
use atlas_pointsto::{ExtractionOptions, Graph, Solver};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_pointsto(c: &mut Criterion) {
    let apps: Vec<_> = [0usize, 15, 30]
        .iter()
        .map(|&i| atlas_apps::generate_app(i, 0xA71A5))
        .collect();
    let mut group = c.benchmark_group("pointsto_closure");
    for app in &apps {
        let program = &app.program;
        let impl_graph = Graph::extract(program, &ExtractionOptions::with_implementation());
        group.bench_with_input(
            BenchmarkId::new(
                "implementation",
                format!("{}_loc{}", app.name, app.client_loc),
            ),
            &impl_graph,
            |b, graph| b.iter(|| Solver::new().solve(graph)),
        );
        let overrides = ground_truth_specs(program).into_iter().collect();
        let spec_graph = Graph::extract(program, &ExtractionOptions::with_specs(overrides));
        group.bench_with_input(
            BenchmarkId::new(
                "ground_truth_specs",
                format!("{}_loc{}", app.name, app.client_loc),
            ),
            &spec_graph,
            |b, graph| b.iter(|| Solver::new().solve(graph)),
        );
    }
    group.finish();

    // Worklist vs. retained naive reference on the same closure problem —
    // the difference-propagation payoff, measured head to head.
    let mut algorithms = c.benchmark_group("solver_algorithms");
    for app in &apps {
        let graph = Graph::extract(&app.program, &ExtractionOptions::with_implementation());
        algorithms.bench_with_input(
            BenchmarkId::new("worklist", format!("{}_loc{}", app.name, app.client_loc)),
            &graph,
            |b, graph| b.iter(|| Solver::new().solve(graph)),
        );
        algorithms.bench_with_input(
            BenchmarkId::new(
                "naive_reference",
                format!("{}_loc{}", app.name, app.client_loc),
            ),
            &graph,
            |b, graph| b.iter(|| Solver::naive_reference().solve(graph)),
        );
    }
    algorithms.finish();

    let mut extraction = c.benchmark_group("graph_extraction");
    for app in &apps {
        extraction.bench_with_input(
            BenchmarkId::from_parameter(format!("{}_loc{}", app.name, app.client_loc)),
            &app.program,
            |b, program| {
                b.iter(|| Graph::extract(program, &ExtractionOptions::with_implementation()))
            },
        );
    }
    extraction.finish();
}

criterion_group!(benches, bench_pointsto);
criterion_main!(benches);
