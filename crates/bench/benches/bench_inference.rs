//! Criterion benches for the inference pipeline itself: phase-one sampling
//! and phase-two language inference on a single class cluster.

use atlas_ir::LibraryInterface;
use atlas_javalib::class_ids;
use atlas_learn::{
    infer_fsa, sample_positive_examples, Oracle, OracleConfig, RpniConfig, SamplerConfig,
    SamplingStrategy,
};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_inference(c: &mut Criterion) {
    let library = atlas_javalib::library_program();
    let interface = LibraryInterface::from_program(&library);
    let cluster = class_ids(&library, &["ArrayList", "ArrayListIterator"]);
    let restricted = interface.restrict_to_classes(&cluster);

    c.bench_function("phase1_sampling_500_mcts", |b| {
        b.iter(|| {
            let mut oracle = Oracle::new(&library, &interface, OracleConfig::default());
            sample_positive_examples(
                &restricted,
                &mut oracle,
                SamplingStrategy::Mcts,
                500,
                &SamplerConfig::default(),
            )
        })
    });

    // Pre-compute positives once for the phase-two bench.
    let mut oracle = Oracle::new(&library, &interface, OracleConfig::default());
    let samples = sample_positive_examples(
        &restricted,
        &mut oracle,
        SamplingStrategy::Mcts,
        2_000,
        &SamplerConfig::default(),
    );
    c.bench_function("phase2_rpni_arraylist_cluster", |b| {
        b.iter(|| {
            let mut oracle = Oracle::new(&library, &interface, OracleConfig::default());
            infer_fsa(&samples.positives, &mut oracle, &RpniConfig::default())
        })
    });
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
