//! Criterion benches for the inference pipeline itself: phase-one sampling
//! and phase-two language inference on a single class cluster, plus the
//! engine's cluster scheduler at 1 thread vs. all cores.

use atlas_core::{AtlasConfig, Engine};
use atlas_ir::LibraryInterface;
use atlas_javalib::class_ids;
use atlas_learn::{
    infer_fsa, sample_positive_examples, Oracle, OracleConfig, RpniConfig, SamplerConfig,
    SamplingStrategy,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_inference(c: &mut Criterion) {
    let library = atlas_javalib::library_program();
    let interface = LibraryInterface::from_program(&library);
    let cluster = class_ids(&library, &["ArrayList", "ArrayListIterator"]);
    let restricted = interface.restrict_to_classes(&cluster);

    c.bench_function("phase1_sampling_500_mcts", |b| {
        b.iter(|| {
            let mut oracle = Oracle::new(&library, &interface, OracleConfig::default());
            sample_positive_examples(
                &restricted,
                &mut oracle,
                SamplingStrategy::Mcts,
                500,
                &SamplerConfig::default(),
            )
        })
    });

    // Pre-compute positives once for the phase-two bench.
    let mut oracle = Oracle::new(&library, &interface, OracleConfig::default());
    let samples = sample_positive_examples(
        &restricted,
        &mut oracle,
        SamplingStrategy::Mcts,
        2_000,
        &SamplerConfig::default(),
    );
    c.bench_function("phase2_rpni_arraylist_cluster", |b| {
        b.iter(|| {
            let mut oracle = Oracle::new(&library, &interface, OracleConfig::default());
            infer_fsa(&samples.positives, &mut oracle, &RpniConfig::default())
        })
    });

    // The engine's cluster scheduler: identical work at 1 thread and at one
    // thread per core.  Results are bit-identical; only wall-clock differs.
    let clusters: Vec<_> = [
        &["ArrayList", "ArrayListIterator"][..],
        &["Stack"][..],
        &["HashMap"][..],
        &["LinkedList"][..],
    ]
    .iter()
    .map(|names| class_ids(&library, names))
    .filter(|ids| !ids.is_empty())
    .collect();
    let mut engine_group = c.benchmark_group("engine_four_clusters_500_samples");
    for num_threads in [1usize, 0] {
        let config = AtlasConfig {
            samples_per_cluster: 500,
            clusters: clusters.clone(),
            num_threads,
            ..AtlasConfig::default()
        };
        let label = if num_threads == 1 {
            "1_thread"
        } else {
            "all_cores"
        };
        engine_group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| Engine::new(&library, &interface, config.clone()).run())
        });
    }
    engine_group.finish();

    // Warm starts: a second identical run fed the first run's verdict cache
    // re-executes nothing.  The cold case is the baseline above this one.
    let config = AtlasConfig {
        samples_per_cluster: 500,
        clusters: clusters.clone(),
        num_threads: 1,
        ..AtlasConfig::default()
    };
    let engine = Engine::new(&library, &interface, config.clone());
    let mut session = engine.session();
    let cold = session.run();
    let cache = session.into_cache();
    let mut warm_group = c.benchmark_group("engine_warm_start_500_samples");
    warm_group.bench_function(BenchmarkId::from_parameter("cold"), |b| {
        b.iter(|| Engine::new(&library, &interface, config.clone()).run())
    });
    warm_group.bench_function(BenchmarkId::from_parameter("warm"), |b| {
        b.iter(|| {
            let outcome = Engine::new(&library, &interface, config.clone())
                .warm_start(cache.clone())
                .run();
            assert_eq!(outcome.oracle_executions, 0, "warm run must not execute");
            outcome
        })
    });
    warm_group.finish();
    assert!(cold.oracle_executions > 0);
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
