//! Criterion benches for the oracle: witness synthesis and blackbox
//! execution throughput (the inner loop of phase one).

use atlas_interp::Interpreter;
use atlas_ir::{LibraryInterface, ParamSlot};
use atlas_learn::{Oracle, OracleConfig};
use atlas_spec::PathSpec;
use atlas_synth::{synthesize_witness, InitStrategy, InstantiationPlanner};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_oracle(c: &mut Criterion) {
    let library = atlas_javalib::library_program();
    let interface = LibraryInterface::from_program(&library);
    let planner = InstantiationPlanner::new(&library, &interface);
    let add = library.method_qualified("ArrayList.add").unwrap();
    let get = library.method_qualified("ArrayList.get").unwrap();
    let spec = PathSpec::new(vec![
        ParamSlot::param(add, 0),
        ParamSlot::receiver(add),
        ParamSlot::receiver(get),
        ParamSlot::ret(get),
    ])
    .unwrap();

    c.bench_function("witness_synthesis_arraylist", |b| {
        b.iter(|| {
            synthesize_witness(
                &library,
                &interface,
                &planner,
                &spec,
                InitStrategy::Instantiate,
            )
            .unwrap()
        })
    });

    let witness = synthesize_witness(
        &library,
        &interface,
        &planner,
        &spec,
        InitStrategy::Instantiate,
    )
    .unwrap();
    c.bench_function("witness_execution_arraylist", |b| {
        b.iter(|| {
            let mut interp = Interpreter::new(&library);
            witness.execute(&library, &mut interp).unwrap()
        })
    });

    c.bench_function("oracle_query_uncached", |b| {
        b.iter(|| {
            let mut oracle = Oracle::new(
                &library,
                &interface,
                OracleConfig {
                    memoize: false,
                    ..OracleConfig::default()
                },
            );
            oracle.check(&spec)
        })
    });
}

criterion_group!(benches, bench_oracle);
criterion_main!(benches);
