//! Criterion benches for the oracle: witness synthesis and blackbox
//! execution throughput (the inner loop of phase one), with the bytecode
//! VM and the tree-walking interpreter side by side.

use atlas_interp::{BuiltinRegistry, CompiledProgram, ExecLimits, Interpreter, Vm};
use atlas_ir::{LibraryInterface, ParamSlot};
use atlas_learn::{Oracle, OracleConfig, OracleEngine};
use atlas_spec::PathSpec;
use atlas_synth::{synthesize_witness, InitStrategy, InstantiationPlanner};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_oracle(c: &mut Criterion) {
    let library = atlas_javalib::library_program();
    let interface = LibraryInterface::from_program(&library);
    let planner = InstantiationPlanner::new(&library, &interface);
    let add = library.method_qualified("ArrayList.add").unwrap();
    let get = library.method_qualified("ArrayList.get").unwrap();
    let spec = PathSpec::new(vec![
        ParamSlot::param(add, 0),
        ParamSlot::receiver(add),
        ParamSlot::receiver(get),
        ParamSlot::ret(get),
    ])
    .unwrap();

    c.bench_function("witness_synthesis_arraylist", |b| {
        b.iter(|| {
            synthesize_witness(
                &library,
                &interface,
                &planner,
                &spec,
                InitStrategy::Instantiate,
            )
            .unwrap()
        })
    });

    let witness = synthesize_witness(
        &library,
        &interface,
        &planner,
        &spec,
        InitStrategy::Instantiate,
    )
    .unwrap();
    c.bench_function("witness_execution_arraylist_treewalk", |b| {
        b.iter(|| {
            let mut interp = Interpreter::new(&library);
            witness.execute(&library, &mut interp).unwrap()
        })
    });

    // The bytecode counterpart: the program is lowered once (as the
    // oracle does it), only the per-execution VM is fresh.
    let compiled = CompiledProgram::compile(&library);
    let builtins = BuiltinRegistry::with_defaults();
    c.bench_function("witness_execution_arraylist_bytecode", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&compiled, &builtins, ExecLimits::default());
            witness.execute(&library, &mut vm).unwrap()
        })
    });

    c.bench_function("program_compilation_javalib", |b| {
        b.iter(|| CompiledProgram::compile(&library))
    });

    for (name, engine) in [
        ("oracle_query_uncached_treewalk", OracleEngine::TreeWalk),
        ("oracle_query_uncached_bytecode", OracleEngine::Bytecode),
    ] {
        c.bench_function(name, |b| {
            b.iter(|| {
                let mut oracle = Oracle::new(
                    &library,
                    &interface,
                    OracleConfig {
                        memoize: false,
                        engine,
                        ..OracleConfig::default()
                    },
                );
                oracle.check(&spec)
            })
        });
    }
}

criterion_group!(benches, bench_oracle);
criterion_main!(benches);
