//! Fleet-level integration tests: cross-library cache isolation, the
//! sharded warm-start round trip, cross-shard merge/gc, and the
//! property that scheduling order and thread budgets never affect
//! per-library results.

use atlas_bench::fleet::{self, FleetConfig};
use atlas_bench::Json;
use atlas_core::{AtlasConfig, Engine};
use atlas_ir::LibraryInterface;
use proptest::prelude::*;

/// A scratch directory removed on drop.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("atlas-fleet-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn small_atlas_config(lib: &fleet::FleetLibrary, samples: usize) -> AtlasConfig {
    AtlasConfig {
        samples_per_cluster: samples,
        clusters: lib.clusters.clone(),
        num_threads: 1,
        ..AtlasConfig::default()
    }
}

/// Warming library B with library A's verdicts must change *nothing* about
/// B's results — not even its execution count: content-addressed keys make
/// foreign-library entries unreachable.
#[test]
fn warming_one_library_never_changes_another() {
    let a = fleet::build_library("synth-small", 0x5EED).expect("registered");
    let b = fleet::build_library("synth-aliasing", 0x5EED).expect("registered");

    let ia = LibraryInterface::from_program(&a.program);
    let engine_a = Engine::new(&a.program, &ia, small_atlas_config(&a, 150));
    let mut session_a = engine_a.session();
    session_a.run();
    let cache_a = session_a.into_cache();
    assert!(!cache_a.is_empty());

    let ib = LibraryInterface::from_program(&b.program);
    let cold_b = Engine::new(&b.program, &ib, small_atlas_config(&b, 150)).run();
    let warm_b = Engine::new(&b.program, &ib, small_atlas_config(&b, 150))
        .warm_start(cache_a)
        .run();

    // Identical results, identical costs: A's cache is invisible to B.
    assert_eq!(cold_b.specs(8, 64), warm_b.specs(8, 64));
    assert_eq!(cold_b.state_counts(), warm_b.state_counts());
    assert_eq!(cold_b.oracle_executions, warm_b.oracle_executions);
    assert_eq!(
        warm_b.cache_stats.warm_hits, 0,
        "foreign-library entries can never hit"
    );

    // B's own cache, in contrast, eliminates every execution.
    let ib2 = LibraryInterface::from_program(&b.program);
    let engine_b = Engine::new(&b.program, &ib2, small_atlas_config(&b, 150));
    let mut session_b = engine_b.session();
    let rerun = session_b.run();
    assert_eq!(rerun.oracle_executions, cold_b.oracle_executions);
    let self_warm = Engine::new(&b.program, &ib2, small_atlas_config(&b, 150))
        .warm_start(session_b.into_cache())
        .run();
    assert_eq!(self_warm.oracle_executions, 0);
    assert!(self_warm.cache_stats.warm_hits > 0);
}

fn library_rows(report: &Json) -> Vec<Json> {
    report
        .get("libraries")
        .and_then(Json::as_arr)
        .expect("libraries array")
        .to_vec()
}

/// End-to-end sharded store round trip: a cold fleet seeds one shard per
/// library; a second run warm-starts every shard with zero re-executions
/// and byte-identical spec exports; merge/gc compose across shards; and
/// two warm runs normalize to byte-identical reports.
#[test]
fn fleet_round_trip_through_sharded_stores() {
    let scratch = Scratch::new("roundtrip");
    let config = FleetConfig {
        libraries: vec!["synth-small".to_string(), "synth-aliasing".to_string()],
        samples: 200,
        threads: 2,
        store_root: Some(scratch.0.clone()),
        synth_seed: 0x5EED,
        trace: false,
    };

    // Cold run: every shard is created.
    let cold = fleet::run_fleet(&config).expect("cold fleet");
    assert_eq!(cold.json.get("schema"), Some(&Json::str("atlas-fleet/1")));
    let rows = library_rows(&cold.json);
    assert_eq!(rows.len(), 2);
    let mut fingerprints = Vec::new();
    for row in &rows {
        let store = row.get("store").expect("store section");
        assert_eq!(
            store.get("warm_started_from_disk"),
            Some(&Json::Bool(false))
        );
        assert!(
            store
                .get("persisted_entries")
                .and_then(Json::as_int)
                .unwrap()
                > 0
        );
        assert_eq!(store.get("specs_identical"), Some(&Json::Null));
        let fp = row
            .get("library_fingerprint")
            .and_then(Json::as_str)
            .expect("fingerprint");
        fingerprints.push(atlas_store::parse_hex64(fp).expect("hex fingerprint"));
        let shard = store.get("shard").and_then(Json::as_str).expect("shard");
        assert!(std::path::Path::new(shard).join("cache.json").exists());
        assert!(std::path::Path::new(shard).join("specs.json").exists());
    }
    assert_ne!(fingerprints[0], fingerprints[1], "distinct shards");
    let shards = atlas_store::list_shards(&scratch.0).expect("list shards");
    assert_eq!(shards.len(), 2);

    // Warm runs: zero executions everywhere, byte-identical spec exports,
    // and (being same-seed, same-store) byte-identical normalized reports.
    let warm1 = fleet::run_fleet(&config).expect("warm fleet");
    for row in library_rows(&warm1.json) {
        assert_eq!(row.get("executions"), Some(&Json::Int(0)));
        let store = row.get("store").expect("store section");
        assert_eq!(store.get("warm_started_from_disk"), Some(&Json::Bool(true)));
        assert_eq!(store.get("specs_identical"), Some(&Json::Bool(true)));
        assert_eq!(store.get("new_entries"), Some(&Json::Int(0)));
        let rate = store.get("reload_hit_rate").and_then(Json::as_f64).unwrap();
        assert!(rate > 0.99, "every verdict reloads from its shard: {rate}");
    }
    let warm2 = fleet::run_fleet(&config).expect("second warm fleet");
    assert_eq!(
        fleet::normalized(&warm1.json).render(),
        fleet::normalized(&warm2.json).render(),
        "same seed + same store => byte-identical normalized reports"
    );

    // The parallelism summary respects the global budget.
    let parallelism = warm1.json.get("parallelism").expect("parallelism");
    let outer = parallelism
        .get("outer_workers")
        .and_then(Json::as_int)
        .unwrap();
    let inner = parallelism
        .get("threads_per_library")
        .and_then(Json::as_int)
        .unwrap();
    let budget = parallelism
        .get("thread_budget")
        .and_then(Json::as_int)
        .unwrap();
    assert!(outer * inner <= budget, "{outer} x {inner} > {budget}");

    // Cross-shard maintenance through atlas-store: merge folds both shard
    // directories into one artifact — since the incremental refactor each
    // library's cache carries one provenance shard per cluster closure, so
    // the merge holds every closure of both libraries, all attributed to
    // exactly the two library fingerprints.
    let merged = atlas_store::merge_shards(&scratch.0).expect("merge shards");
    assert!(merged.shards.len() >= 2, "{}", merged.shards.len());
    let attributed: std::collections::BTreeSet<u64> = merged
        .shards
        .iter()
        .map(|s| s.provenance.fingerprint)
        .collect();
    assert_eq!(
        attributed,
        fingerprints.iter().copied().collect(),
        "every closure shard is attributed to a fleet library"
    );
    let per_shard: usize = shards
        .iter()
        .map(|s| {
            atlas_store::load_cache(&s.cache)
                .expect("shard cache")
                .num_entries()
        })
        .sum();
    assert_eq!(merged.num_entries(), per_shard);
    let summary = atlas_store::gc_shards(&scratch.0, &fingerprints[..1]).expect("gc shards");
    assert_eq!(summary.kept, 1);
    assert_eq!(summary.removed, 1);
    assert_eq!(atlas_store::list_shards(&scratch.0).unwrap().len(), 1);
}

// --- Scheduling-independence property -------------------------------------

/// The normalized per-library rows of a report, keyed and sorted by name.
fn rows_by_name(report: &Json) -> Vec<(String, String)> {
    let mut rows: Vec<(String, String)> = library_rows(report)
        .iter()
        .map(|row| {
            (
                row.get("name").and_then(Json::as_str).unwrap().to_string(),
                fleet::normalized(row).render(),
            )
        })
        .collect();
    rows.sort();
    rows
}

const ORDERING_FLEET: &[&str] = &["synth-small", "synth-aliasing"];

fn ordering_config(libraries: Vec<String>, threads: usize) -> FleetConfig {
    FleetConfig {
        libraries,
        samples: 120,
        threads,
        store_root: None,
        synth_seed: 0x5EED,
        trace: false,
    }
}

/// The rows of the canonical ordering at one thread, computed once.
fn ordering_reference() -> &'static Vec<(String, String)> {
    static REFERENCE: std::sync::OnceLock<Vec<(String, String)>> = std::sync::OnceLock::new();
    REFERENCE.get_or_init(|| {
        let libraries = ORDERING_FLEET.iter().map(|s| s.to_string()).collect();
        let report = fleet::run_fleet(&ordering_config(libraries, 1)).unwrap();
        rows_by_name(&report.json)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Scheduling order and thread budget never affect per-library
    /// results: any permutation of the fleet under any budget yields the
    /// same normalized per-library rows.
    #[test]
    fn fleet_rows_are_independent_of_scheduling(swap in any::<bool>(), threads in 1usize..=4) {
        let mut libraries: Vec<String> = ORDERING_FLEET.iter().map(|s| s.to_string()).collect();
        if swap {
            libraries.reverse();
        }
        let report = fleet::run_fleet(&ordering_config(libraries, threads)).unwrap();
        prop_assert_eq!(&rows_by_name(&report.json), ordering_reference());
    }
}
