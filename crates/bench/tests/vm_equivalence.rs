//! Differential property tests: the bytecode VM against the tree-walking
//! interpreter.
//!
//! The VM is only allowed to exist because it is *observationally
//! identical* to the tree-walker (see `atlas_interp::vm`).  These tests
//! enforce the guarantee on generated inputs rather than handpicked ones:
//!
//! * random generated apps run under both engines must produce identical
//!   [`ExecOutcome`]s and identical step counts — at the default limits
//!   *and* at proptest-drawn tight [`ExecLimits`], where the equality
//!   covers which limit exhausts first and at which statement;
//! * random candidate words over the real javalib, synthesized to witness
//!   tests exactly as the oracle does, must produce identical verdicts
//!   (`Result<bool, ExecError>`) and step counts — under the marshalling
//!   [`Executor`] path *and* under the compiled-witness fast path
//!   ([`Vm::run_witness`]), at the oracle's limits and at proptest-drawn
//!   tight ones where errors and their order must also agree;
//! * the same holds over randomly generated synthetic libraries, whose
//!   aliasing patterns and body shapes are drawn independently of
//!   javalib's;
//! * handwritten programs force every fused superinstruction
//!   (`Load+Branch`, `Call+RetFall`, `Const+Store`) and inline-cache
//!   misses (one field site flapping between classes that share a field)
//!   and sweep the step budget across every statement boundary, pinning
//!   tick discipline inside the fused forms;
//! * steady-state oracle rounds (reset + compiled witness) perform zero
//!   arena growth after the first pass over the javalib workload.

use atlas_apps::{generate_app, generate_library, SynthLibConfig};
use atlas_bench::fleet::build_library;
use atlas_interp::{
    BuiltinRegistry, CompiledProgram, CompiledWitness, ExecError, ExecLimits, ExecOutcome, Instr,
    Interpreter, OpKind, Vm, VmScratch,
};
use atlas_ir::builder::ProgramBuilder;
use atlas_ir::{BinOp, LibraryInterface, MethodId, ParamSlot, Program, Type};
use atlas_spec::PathSpec;
use atlas_synth::{
    synthesize_witness, InitStrategy, InstantiationPlanner, WitnessScratch, WitnessTest,
};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Runs `entry` under both engines and returns `(outcome, steps)` pairs.
fn run_both(program: &Program, entry: MethodId, limits: ExecLimits) -> [(ExecOutcome, usize); 2] {
    let mut tree = Interpreter::with_config(program, BuiltinRegistry::with_defaults(), limits);
    let t_out = tree.run_entry(entry);
    let compiled = CompiledProgram::compile(program);
    let builtins = BuiltinRegistry::with_defaults();
    let mut vm = Vm::new(&compiled, &builtins, limits);
    let v_out = vm.run_entry(entry);
    [(t_out, tree.steps()), (v_out, vm.steps())]
}

/// A library prepared for witness-level differential testing.
struct Fixture {
    program: Program,
    planner: InstantiationPlanner,
    interface: LibraryInterface,
    compiled: CompiledProgram,
    /// `(entry, receiver)` slot pairs usable as the first two symbols of a
    /// two-method candidate word.
    sources: Vec<(ParamSlot, ParamSlot)>,
    /// `(receiver, return)` slot pairs usable as the last two symbols.
    sinks: Vec<(ParamSlot, ParamSlot)>,
}

impl Fixture {
    fn prepare(program: Program) -> Fixture {
        let interface = LibraryInterface::from_program(&program);
        let planner = InstantiationPlanner::new(&program, &interface);
        let compiled = CompiledProgram::compile(&program);
        let sources: Vec<(ParamSlot, ParamSlot)> = interface
            .methods()
            .iter()
            .filter(|sig| !sig.is_constructor && sig.has_this)
            .flat_map(|sig| {
                let recv = ParamSlot::receiver(sig.method);
                sig.reference_slots()
                    .into_iter()
                    .filter(move |s| s.is_input() && *s != recv)
                    .map(move |s| (s, recv))
            })
            .collect();
        let sinks: Vec<(ParamSlot, ParamSlot)> = interface
            .methods()
            .iter()
            .filter(|sig| !sig.is_constructor && sig.has_this && sig.returns_reference())
            .map(|sig| (ParamSlot::receiver(sig.method), ParamSlot::ret(sig.method)))
            .collect();
        Fixture {
            program,
            planner,
            interface,
            compiled,
            sources,
            sinks,
        }
    }

    /// Builds the candidate word picked by the two indices and synthesizes
    /// its witness, if the word is well-formed and synthesizable.
    fn witness(
        &self,
        source: prop::sample::Index,
        sink: prop::sample::Index,
    ) -> Option<WitnessTest> {
        let (entry, mid) = self.sources[source.index(self.sources.len())];
        let (recv, exit) = self.sinks[sink.index(self.sinks.len())];
        let spec = PathSpec::new(vec![entry, mid, recv, exit]).ok()?;
        synthesize_witness(
            &self.program,
            &self.interface,
            &self.planner,
            &spec,
            InitStrategy::Instantiate,
        )
        .ok()
    }

    /// Executes `witness` three ways — the tree-walker, the VM through the
    /// marshalling [`atlas_interp::Executor`] path, and the VM through its
    /// compiled-witness fast path — returning `(verdict, steps)` triples.
    #[allow(clippy::type_complexity)]
    fn execute_all(
        &self,
        witness: &WitnessTest,
        limits: ExecLimits,
    ) -> [(Result<bool, ExecError>, usize); 3] {
        let mut wscratch = WitnessScratch::default();
        let builtins = BuiltinRegistry::with_defaults();
        let mut tree = Interpreter::with_config(&self.program, builtins.clone(), limits);
        let t = witness.execute_with(&self.program, &mut tree, &mut wscratch);
        let mut vm = Vm::with_scratch(&self.compiled, &builtins, limits, VmScratch::default());
        let v = witness.execute_with(&self.program, &mut vm, &mut wscratch);
        let v_steps = vm.steps();
        // The compiled path reuses the first VM's scratch — exactly the
        // oracle's lifecycle (lower once, reset per round, caches warm).
        let cw = witness.compile_into(&mut wscratch);
        let mut vm = Vm::with_scratch(&self.compiled, &builtins, limits, vm.into_scratch());
        let w = vm.run_witness(cw);
        [(t, tree.steps()), (v, v_steps), (w, vm.steps())]
    }
}

fn javalib() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let lib = build_library("javalib", 0x5EED).expect("javalib is registered");
        Fixture::prepare(lib.program)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_apps_match_under_default_limits(
        index in 0..46usize,
        seed in 0..3u64,
    ) {
        let app = generate_app(index, 0xA71A5 + seed);
        let [(t_out, t_steps), (v_out, v_steps)] =
            run_both(&app.program, app.entry, ExecLimits::default());
        prop_assert_eq!(&t_out, &v_out);
        prop_assert_eq!(t_steps, v_steps);
        // The suite's entries are built to run to completion.
        prop_assert!(matches!(t_out, ExecOutcome::Returned(_)), "{t_out:?}");
    }

    #[test]
    fn tight_limits_exhaust_at_the_same_statement(
        index in 0..46usize,
        max_steps in 1..600usize,
        max_call_depth in 1..12usize,
        max_heap_objects in 1..60usize,
    ) {
        let app = generate_app(index, 0xA71A5);
        let limits = ExecLimits { max_steps, max_call_depth, max_heap_objects };
        let [(t_out, t_steps), (v_out, v_steps)] = run_both(&app.program, app.entry, limits);
        // Identical outcome: if a limit binds, both engines must report the
        // same LimitExceeded kind...
        prop_assert_eq!(&t_out, &v_out);
        // ...after charging the same number of statements.
        prop_assert_eq!(t_steps, v_steps);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn javalib_witness_verdicts_match(
        source in any::<prop::sample::Index>(),
        sink in any::<prop::sample::Index>(),
    ) {
        let fix = javalib();
        let witness = fix.witness(source, sink);
        prop_assume!(witness.is_some());
        let witness = witness.unwrap();
        let [(t, t_steps), (v, v_steps), (w, w_steps)] =
            fix.execute_all(&witness, ExecLimits::for_unit_tests());
        prop_assert_eq!(&t, &v);
        prop_assert_eq!(&t, &w);
        prop_assert_eq!(t_steps, v_steps);
        prop_assert_eq!(t_steps, w_steps);
    }

    #[test]
    fn javalib_witnesses_exhaust_identically_under_tight_limits(
        source in any::<prop::sample::Index>(),
        sink in any::<prop::sample::Index>(),
        max_steps in 1..200usize,
        max_call_depth in 1..8usize,
        max_heap_objects in 1..24usize,
    ) {
        let fix = javalib();
        let witness = fix.witness(source, sink);
        prop_assume!(witness.is_some());
        let witness = witness.unwrap();
        let limits = ExecLimits { max_steps, max_call_depth, max_heap_objects };
        // Which limit binds first, and at which statement, must agree
        // across all three paths — including inside fused
        // superinstructions and the compiled witness prologue.
        let [(t, t_steps), (v, v_steps), (w, w_steps)] = fix.execute_all(&witness, limits);
        prop_assert_eq!(&t, &v);
        prop_assert_eq!(&t, &w);
        prop_assert_eq!(t_steps, v_steps);
        prop_assert_eq!(t_steps, w_steps);
    }

    #[test]
    fn synthetic_library_witness_verdicts_match(
        seed in 0..1_000u64,
        classes in 2..5usize,
        source in any::<prop::sample::Index>(),
        sink in any::<prop::sample::Index>(),
    ) {
        let lib = generate_library(&SynthLibConfig {
            name: format!("synth-eq-{seed}"),
            seed,
            classes,
            ..SynthLibConfig::default()
        });
        let fix = Fixture::prepare(lib.program);
        prop_assume!(!fix.sources.is_empty() && !fix.sinks.is_empty());
        let witness = fix.witness(source, sink);
        prop_assume!(witness.is_some());
        let witness = witness.unwrap();
        let [(t, t_steps), (v, v_steps), (w, w_steps)] =
            fix.execute_all(&witness, ExecLimits::for_unit_tests());
        prop_assert_eq!(&t, &v);
        prop_assert_eq!(&t, &w);
        prop_assert_eq!(t_steps, v_steps);
        prop_assert_eq!(t_steps, w_steps);
    }
}

/// A program whose lowering contains every fused superinstruction:
///
/// * `Cell.get` loads `flag` straight into an `if` — `Load+Branch`;
/// * `Cell.prime` ends with a `set` call and falls off — `Call+RetFall`;
/// * `Cell.mark` materializes `true` and stores it — `Const+Store`.
///
/// `Main.test` drives all three and returns whether the stored object
/// round-trips, so the whole surface executes on every run.
fn fused_program() -> Program {
    let mut pb = ProgramBuilder::new();
    pb.class("Object").build();
    let mut c = pb.class("Cell");
    c.library(true);
    c.field("flag", Type::Bool);
    c.field("val", Type::object());
    let mut set = c.method("set");
    let this = set.this();
    let v = set.param("v", Type::object());
    set.store(this, "val", v);
    set.finish();
    let mut mark = c.method("mark");
    let this = mark.this();
    let t = mark.local("t", Type::Bool);
    mark.const_bool(t, true);
    mark.store(this, "flag", t);
    mark.finish();
    let mut prime = c.method("prime");
    let this = prime.this();
    let v = prime.param("v", Type::object());
    let set_id = prime.mref("Cell", "set");
    prime.call(None, set_id, Some(this), &[v]);
    prime.finish();
    let mut get = c.method("get");
    get.returns(Type::object());
    let this = get.this();
    let f = get.local("f", Type::Bool);
    let r = get.local("r", Type::object());
    get.load(f, this, "flag");
    get.if_stmt(
        f,
        |m| {
            m.load(r, this, "val");
            m.ret(Some(r));
        },
        |_| {},
    );
    let nil = get.local("nil", Type::object());
    get.ret(Some(nil));
    get.finish();
    c.build();
    let mut main = pb.class("Main");
    let mut t = main.static_method("test");
    t.returns(Type::Bool);
    let cell = t.local("cell", Type::class("Cell"));
    let obj = t.local("obj", Type::object());
    let out = t.local("out", Type::object());
    let eq = t.local("eq", Type::Bool);
    let cellc = t.cref("Cell");
    let objc = t.cref("Object");
    t.new_object(cell, cellc);
    t.new_object(obj, objc);
    let mark = t.mref("Cell", "mark");
    let prime = t.mref("Cell", "prime");
    let get = t.mref("Cell", "get");
    t.call(None, mark, Some(cell), &[]);
    t.call(None, prime, Some(cell), &[obj]);
    t.call(Some(out), get, Some(cell), &[]);
    t.ref_eq(eq, obj, out);
    t.ret(Some(eq));
    t.finish();
    main.build();
    pb.build()
}

/// A program with one field site shared by two classes: `Holder` declares
/// `f` with its accessors, `AHolder`/`BHolder` extend it, and `Main.test`
/// interleaves receivers of both classes through the same `getf` load for
/// enough iterations to exhaust the inline cache's install budget and pin
/// the site megamorphic.
fn flapping_program() -> Program {
    let mut pb = ProgramBuilder::new();
    pb.class("Object").build();
    let mut base = pb.class("Holder");
    base.library(true);
    base.field("f", Type::object());
    let mut getf = base.method("getf");
    getf.returns(Type::object());
    let this = getf.this();
    let r = getf.local("r", Type::object());
    getf.load(r, this, "f");
    getf.ret(Some(r));
    getf.finish();
    let mut setf = base.method("setf");
    let this = setf.this();
    let v = setf.param("v", Type::object());
    setf.store(this, "f", v);
    setf.finish();
    let holder = base.build();
    let mut a = pb.class("AHolder");
    a.library(true).extends(holder);
    a.build();
    let mut b = pb.class("BHolder");
    b.library(true).extends(holder);
    b.build();
    let mut main = pb.class("Main");
    let mut t = main.static_method("test");
    t.returns(Type::Bool);
    let av = t.local("a", Type::class("AHolder"));
    let bv = t.local("b", Type::class("BHolder"));
    let o = t.local("o", Type::object());
    let x = t.local("x", Type::object());
    let y = t.local("y", Type::object());
    let i = t.local("i", Type::Int);
    let n = t.local("n", Type::Int);
    let one = t.local("one", Type::Int);
    let cond = t.local("cond", Type::Bool);
    let eq1 = t.local("eq1", Type::Bool);
    let eq2 = t.local("eq2", Type::Bool);
    let ok = t.local("ok", Type::Bool);
    let ac = t.cref("AHolder");
    let bc = t.cref("BHolder");
    let objc = t.cref("Object");
    t.new_object(av, ac);
    t.new_object(bv, bc);
    t.new_object(o, objc);
    let setf = t.mref("Holder", "setf");
    let getf = t.mref("Holder", "getf");
    t.call(None, setf, Some(av), &[o]);
    t.call(None, setf, Some(bv), &[o]);
    t.const_int(i, 0);
    t.const_int(n, 12);
    t.const_int(one, 1);
    t.while_stmt(
        |m| {
            m.bin(cond, BinOp::Lt, i, n);
            cond
        },
        |m| {
            m.call(Some(x), getf, Some(av), &[]);
            m.call(Some(y), getf, Some(bv), &[]);
            m.bin(i, BinOp::Add, i, one);
        },
    );
    t.ref_eq(eq1, x, o);
    t.ref_eq(eq2, y, o);
    t.bin(ok, BinOp::And, eq1, eq2);
    t.ret(Some(ok));
    t.finish();
    main.build();
    pb.build()
}

/// Counts instructions of `kind` across the whole compiled program.
fn count_kind(compiled: &CompiledProgram, kind: OpKind) -> usize {
    (0..compiled.num_methods() as u32)
        .map(|i| {
            compiled
                .method(MethodId::from_index(i))
                .code()
                .iter()
                .filter(|instr: &&Instr| instr.kind() == kind)
                .count()
        })
        .sum()
}

/// Runs `entry` on the VM with profiling enabled, returning the outcome
/// and the accumulated profile's `(ic_hits, ic_misses)`.
fn run_vm_profiled(
    program: &Program,
    entry: MethodId,
    limits: ExecLimits,
) -> (ExecOutcome, usize, (u64, u64)) {
    let compiled = CompiledProgram::compile(program);
    let builtins = BuiltinRegistry::with_defaults();
    let mut scratch = VmScratch::default();
    scratch.enable_profile();
    let mut vm = Vm::with_scratch(&compiled, &builtins, limits, scratch);
    let out = vm.run_entry(entry);
    let steps = vm.steps();
    let prof = vm.profile().expect("profile enabled");
    (out, steps, (prof.ic_hits(), prof.ic_misses()))
}

#[test]
fn fused_program_contains_every_superinstruction() {
    let compiled = CompiledProgram::compile(&fused_program());
    for kind in [OpKind::LoadBranch, OpKind::CallRetFall, OpKind::ConstStore] {
        assert!(
            count_kind(&compiled, kind) > 0,
            "the lowering must contain a fused {}",
            kind.name()
        );
    }
    // The unfused lowering must contain none of them.
    let unfused = CompiledProgram::compile_unfused(&fused_program());
    for kind in [OpKind::LoadBranch, OpKind::CallRetFall, OpKind::ConstStore] {
        assert_eq!(count_kind(&unfused, kind), 0, "{}", kind.name());
    }
}

#[test]
fn fused_superinstructions_match_tree_walker_at_every_budget() {
    let p = fused_program();
    let entry = p.method_qualified("Main.test").unwrap();
    let [(t_out, t_steps), (v_out, v_steps)] = run_both(&p, entry, ExecLimits::default());
    assert!(t_out.is_true(), "{t_out:?}");
    assert_eq!(t_out, v_out);
    assert_eq!(t_steps, v_steps);
    // Sweep the step budget across every statement boundary: a fused pair
    // must tick once per constituent, in the original order, so each
    // budget value exhausts both engines at the same statement.
    for max_steps in 1..=t_steps {
        let limits = ExecLimits {
            max_steps,
            ..ExecLimits::default()
        };
        let [(t_out, t_steps), (v_out, v_steps)] = run_both(&p, entry, limits);
        assert_eq!(t_out, v_out, "budget {max_steps}");
        assert_eq!(t_steps, v_steps, "budget {max_steps}");
    }
    // And starved call depth: the fused Call+RetFall checks depth at the
    // same point the unfused Call would.
    for max_call_depth in 1..4 {
        let limits = ExecLimits {
            max_call_depth,
            ..ExecLimits::default()
        };
        let [(t_out, t_steps), (v_out, v_steps)] = run_both(&p, entry, limits);
        assert_eq!(t_out, v_out, "depth {max_call_depth}");
        assert_eq!(t_steps, v_steps, "depth {max_call_depth}");
    }
}

#[test]
fn interleaved_receivers_flap_the_inline_cache_identically() {
    let p = flapping_program();
    let entry = p.method_qualified("Main.test").unwrap();
    let [(t_out, t_steps), (v_out, v_steps)] = run_both(&p, entry, ExecLimits::default());
    assert!(t_out.is_true(), "{t_out:?}");
    assert_eq!(t_out, v_out);
    assert_eq!(t_steps, v_steps);
    // The interleaved receivers force a miss on every access of the
    // shared load site until its install budget pins it megamorphic —
    // verdicts and steps must be untouched either way.
    let (out, steps, (hits, misses)) = run_vm_profiled(&p, entry, ExecLimits::default());
    assert_eq!(out, t_out);
    assert_eq!(steps, t_steps);
    assert!(
        misses > 8,
        "class flapping must exhaust the install budget ({misses} misses)"
    );
    // The setf/getf pairs before the loop and the store sites stay
    // monomorphic per class, so some accesses still hit.
    let _ = hits;
    // Budget sweep across the flapping loop: megamorphic fallback ticks
    // exactly like the monomorphic fast path.
    for max_steps in (1..=t_steps).step_by(7) {
        let limits = ExecLimits {
            max_steps,
            ..ExecLimits::default()
        };
        let [(t_out, t_steps), (v_out, v_steps)] = run_both(&p, entry, limits);
        assert_eq!(t_out, v_out, "budget {max_steps}");
        assert_eq!(t_steps, v_steps, "budget {max_steps}");
    }
}

/// A library whose every method body is one of the VM's inline
/// fast-body shapes — identity and `this` returns, a constant return, a
/// getter, a setter, reference equality, a factory (`return new C()`),
/// and literal arithmetic (`return x + 1`) — driven end to end by
/// `Main.test`.  `Main.bad` funnels a null argument into the getter
/// shape so the inline `NullPointer` path is exercised too.
fn fast_body_program() -> Program {
    let mut pb = ProgramBuilder::new();
    pb.class("Object").build();
    let mut c = pb.class("Tiny");
    c.library(true);
    c.field("f", Type::object());
    let mut id = c.method("id");
    id.returns(Type::object());
    id.this();
    let v = id.param("v", Type::object());
    id.ret(Some(v));
    id.finish();
    let mut me = c.method("me");
    me.returns(Type::object());
    let this = me.this();
    me.ret(Some(this));
    me.finish();
    let mut seven = c.method("seven");
    seven.returns(Type::Int);
    seven.this();
    let t = seven.local("t", Type::Int);
    seven.const_int(t, 7);
    seven.ret(Some(t));
    seven.finish();
    let mut getf = c.method("getf");
    getf.returns(Type::object());
    let this = getf.this();
    let r = getf.local("r", Type::object());
    getf.load(r, this, "f");
    getf.ret(Some(r));
    getf.finish();
    let mut setf = c.method("setf");
    let this = setf.this();
    let v = setf.param("v", Type::object());
    setf.store(this, "f", v);
    setf.finish();
    let mut same = c.method("same");
    same.returns(Type::Bool);
    let this = same.this();
    let o = same.param("o", Type::object());
    let r = same.local("r", Type::Bool);
    same.ref_eq(r, this, o);
    same.ret(Some(r));
    same.finish();
    let mut peek = c.method("peek");
    peek.returns(Type::object());
    peek.this();
    let o = peek.param("o", Type::class("Tiny"));
    let r = peek.local("r", Type::object());
    peek.load(r, o, "f");
    peek.ret(Some(r));
    peek.finish();
    let mut make = c.method("make");
    make.returns(Type::object());
    make.this();
    let r = make.local("r", Type::object());
    let objc = make.cref("Object");
    make.new_object(r, objc);
    make.ret(Some(r));
    make.finish();
    let mut inc = c.method("inc");
    inc.returns(Type::Int);
    inc.this();
    let x = inc.param("x", Type::Int);
    let one = inc.local("one", Type::Int);
    let r = inc.local("r", Type::Int);
    inc.const_int(one, 1);
    inc.bin(r, BinOp::Add, x, one);
    inc.ret(Some(r));
    inc.finish();
    c.build();
    let mut main = pb.class("Main");
    let mut t = main.static_method("test");
    t.returns(Type::Bool);
    let cell = t.local("cell", Type::class("Tiny"));
    let obj = t.local("obj", Type::object());
    let a = t.local("a", Type::object());
    let b = t.local("b", Type::object());
    let m = t.local("m", Type::object());
    let s = t.local("s", Type::Int);
    let i = t.local("i", Type::Int);
    let p = t.local("p", Type::object());
    let n = t.local("n", Type::object());
    let eight = t.local("eight", Type::Int);
    let e1 = t.local("e1", Type::Bool);
    let e2 = t.local("e2", Type::Bool);
    let e3 = t.local("e3", Type::Bool);
    let e4 = t.local("e4", Type::Bool);
    let e5 = t.local("e5", Type::Bool);
    let ok = t.local("ok", Type::Bool);
    let tinyc = t.cref("Tiny");
    let objc = t.cref("Object");
    t.new_object(cell, tinyc);
    t.new_object(obj, objc);
    let setf_id = t.mref("Tiny", "setf");
    let getf_id = t.mref("Tiny", "getf");
    let id_id = t.mref("Tiny", "id");
    let me_id = t.mref("Tiny", "me");
    let seven_id = t.mref("Tiny", "seven");
    let inc_id = t.mref("Tiny", "inc");
    let same_id = t.mref("Tiny", "same");
    let peek_id = t.mref("Tiny", "peek");
    let make_id = t.mref("Tiny", "make");
    t.call(None, setf_id, Some(cell), &[obj]);
    t.call(Some(a), getf_id, Some(cell), &[]);
    t.call(Some(b), id_id, Some(cell), &[obj]);
    t.call(Some(m), me_id, Some(cell), &[]);
    t.call(Some(s), seven_id, Some(cell), &[]);
    t.call(Some(i), inc_id, Some(cell), &[s]);
    t.call(Some(e1), same_id, Some(cell), &[m]);
    t.call(Some(p), peek_id, Some(cell), &[cell]);
    t.call(Some(n), make_id, Some(cell), &[]);
    t.const_int(eight, 8);
    t.ref_eq(e2, a, obj);
    t.ref_eq(e3, b, obj);
    t.ref_eq(e4, p, obj);
    t.bin(e5, BinOp::EqInt, i, eight);
    t.bin(ok, BinOp::And, e1, e2);
    t.bin(ok, BinOp::And, ok, e3);
    t.bin(ok, BinOp::And, ok, e4);
    t.bin(ok, BinOp::And, ok, e5);
    let null_obj = t.local("null_obj", Type::object());
    t.ref_eq(e1, n, null_obj);
    t.not(e1, e1);
    t.bin(ok, BinOp::And, ok, e1);
    t.ret(Some(ok));
    t.finish();
    let mut bad = main.static_method("bad");
    bad.returns(Type::object());
    let cell = bad.local("cell", Type::class("Tiny"));
    let nil = bad.local("nil", Type::class("Tiny"));
    let out = bad.local("out", Type::object());
    let tinyc = bad.cref("Tiny");
    let peek_id = bad.mref("Tiny", "peek");
    bad.new_object(cell, tinyc);
    bad.call(Some(out), peek_id, Some(cell), &[nil]);
    bad.ret(Some(out));
    bad.finish();
    main.build();
    pb.build()
}

#[test]
fn every_tiny_body_classifies_as_a_fast_shape() {
    let compiled = CompiledProgram::compile(&fast_body_program());
    // The nine Tiny methods inline; Main's bodies stay frame-dispatched.
    assert_eq!(compiled.num_fast_bodies(), 9);
    // The real workload leans on the same shapes: javalib must classify
    // a meaningful share of its methods or the fast path is dead code.
    assert!(
        javalib().compiled.num_fast_bodies() > 0,
        "javalib classified no fast bodies"
    );
}

#[test]
fn fast_bodies_match_tree_walker_at_every_budget() {
    let p = fast_body_program();
    let entry = p.method_qualified("Main.test").unwrap();
    let [(t_out, t_steps), (v_out, v_steps)] = run_both(&p, entry, ExecLimits::default());
    assert!(t_out.is_true(), "{t_out:?}");
    assert_eq!(t_out, v_out);
    assert_eq!(t_steps, v_steps);
    // Sweep the step budget across every statement boundary: each inline
    // shape must charge its ticks in the original instruction order, so
    // every budget value exhausts both engines at the same statement.
    for max_steps in 1..=t_steps {
        let limits = ExecLimits {
            max_steps,
            ..ExecLimits::default()
        };
        let [(t_out, t_steps), (v_out, v_steps)] = run_both(&p, entry, limits);
        assert_eq!(t_out, v_out, "budget {max_steps}");
        assert_eq!(t_steps, v_steps, "budget {max_steps}");
    }
    // Starve the heap: the factory shape's post-allocation tick must see
    // the grown heap exactly like a framed NewObj would.
    for max_heap_objects in 1..4 {
        let limits = ExecLimits {
            max_heap_objects,
            ..ExecLimits::default()
        };
        let [(t_out, t_steps), (v_out, v_steps)] = run_both(&p, entry, limits);
        assert_eq!(t_out, v_out, "heap {max_heap_objects}");
        assert_eq!(t_steps, v_steps, "heap {max_heap_objects}");
    }
    // And call depth: the inline dispatch still charges one frame.
    for max_call_depth in 1..4 {
        let limits = ExecLimits {
            max_call_depth,
            ..ExecLimits::default()
        };
        let [(t_out, t_steps), (v_out, v_steps)] = run_both(&p, entry, limits);
        assert_eq!(t_out, v_out, "depth {max_call_depth}");
        assert_eq!(t_steps, v_steps, "depth {max_call_depth}");
    }
}

#[test]
fn fast_body_error_paths_match() {
    let p = fast_body_program();
    let entry = p.method_qualified("Main.bad").unwrap();
    let [(t_out, t_steps), (v_out, v_steps)] = run_both(&p, entry, ExecLimits::default());
    assert!(
        matches!(t_out, ExecOutcome::Failed(ExecError::NullPointer)),
        "{t_out:?}"
    );
    assert_eq!(t_out, v_out);
    assert_eq!(t_steps, v_steps);
}

#[test]
fn steady_state_rounds_do_not_grow_arenas() {
    let fix = javalib();
    let limits = ExecLimits::for_unit_tests();
    let builtins = BuiltinRegistry::with_defaults();
    // The oracle's lifecycle: synthesize the workload, lower each witness
    // once, then reset + run per round off one recycled scratch.
    let mut witnesses: Vec<WitnessTest> = Vec::new();
    'outer: for &(entry, mid) in &fix.sources {
        for &(recv, exit) in &fix.sinks {
            if witnesses.len() >= 8 {
                break 'outer;
            }
            let Ok(spec) = PathSpec::new(vec![entry, mid, recv, exit]) else {
                continue;
            };
            if let Ok(w) = synthesize_witness(
                &fix.program,
                &fix.interface,
                &fix.planner,
                &spec,
                InitStrategy::Instantiate,
            ) {
                witnesses.push(w);
            }
        }
    }
    assert!(!witnesses.is_empty(), "the workload must not be empty");
    let compiled_ws: Vec<CompiledWitness> = witnesses.iter().map(WitnessTest::compile).collect();
    let mut vm = Vm::with_scratch(&fix.compiled, &builtins, limits, VmScratch::default());
    // First pass grows the arenas to their high-water marks...
    let mut first = Vec::new();
    for cw in &compiled_ws {
        vm.reset(limits);
        first.push(vm.run_witness(cw));
    }
    let caps = vm.arena_capacities();
    // ...after which back-to-back rounds must perform zero new growth,
    // and every round must reproduce the first round's verdicts exactly.
    for round in 0..3 {
        let mut verdicts = Vec::new();
        for cw in &compiled_ws {
            vm.reset(limits);
            verdicts.push(vm.run_witness(cw));
        }
        assert_eq!(verdicts, first, "round {round} diverged");
        assert_eq!(
            vm.arena_capacities(),
            caps,
            "round {round} grew an arena in the steady state"
        );
    }
}
