//! Differential property tests: the bytecode VM against the tree-walking
//! interpreter.
//!
//! The VM is only allowed to exist because it is *observationally
//! identical* to the tree-walker (see `atlas_interp::vm`).  These tests
//! enforce the guarantee on generated inputs rather than handpicked ones:
//!
//! * random generated apps run under both engines must produce identical
//!   [`ExecOutcome`]s and identical step counts — at the default limits
//!   *and* at proptest-drawn tight [`ExecLimits`], where the equality
//!   covers which limit exhausts first and at which statement;
//! * random candidate words over the real javalib, synthesized to witness
//!   tests exactly as the oracle does, must produce identical verdicts
//!   (`Result<bool, ExecError>`) and step counts;
//! * the same holds over randomly generated synthetic libraries, whose
//!   aliasing patterns and body shapes are drawn independently of
//!   javalib's.

use atlas_apps::{generate_app, generate_library, SynthLibConfig};
use atlas_bench::fleet::build_library;
use atlas_interp::{
    BuiltinRegistry, CompiledProgram, ExecLimits, ExecOutcome, Interpreter, Vm, VmScratch,
};
use atlas_ir::{LibraryInterface, MethodId, ParamSlot, Program};
use atlas_spec::PathSpec;
use atlas_synth::{
    synthesize_witness, InitStrategy, InstantiationPlanner, WitnessScratch, WitnessTest,
};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Runs `entry` under both engines and returns `(outcome, steps)` pairs.
fn run_both(program: &Program, entry: MethodId, limits: ExecLimits) -> [(ExecOutcome, usize); 2] {
    let mut tree = Interpreter::with_config(program, BuiltinRegistry::with_defaults(), limits);
    let t_out = tree.run_entry(entry);
    let compiled = CompiledProgram::compile(program);
    let builtins = BuiltinRegistry::with_defaults();
    let mut vm = Vm::new(&compiled, &builtins, limits);
    let v_out = vm.run_entry(entry);
    [(t_out, tree.steps()), (v_out, vm.steps())]
}

/// A library prepared for witness-level differential testing.
struct Fixture {
    program: Program,
    planner: InstantiationPlanner,
    interface: LibraryInterface,
    compiled: CompiledProgram,
    /// `(entry, receiver)` slot pairs usable as the first two symbols of a
    /// two-method candidate word.
    sources: Vec<(ParamSlot, ParamSlot)>,
    /// `(receiver, return)` slot pairs usable as the last two symbols.
    sinks: Vec<(ParamSlot, ParamSlot)>,
}

impl Fixture {
    fn prepare(program: Program) -> Fixture {
        let interface = LibraryInterface::from_program(&program);
        let planner = InstantiationPlanner::new(&program, &interface);
        let compiled = CompiledProgram::compile(&program);
        let sources: Vec<(ParamSlot, ParamSlot)> = interface
            .methods()
            .iter()
            .filter(|sig| !sig.is_constructor && sig.has_this)
            .flat_map(|sig| {
                let recv = ParamSlot::receiver(sig.method);
                sig.reference_slots()
                    .into_iter()
                    .filter(move |s| s.is_input() && *s != recv)
                    .map(move |s| (s, recv))
            })
            .collect();
        let sinks: Vec<(ParamSlot, ParamSlot)> = interface
            .methods()
            .iter()
            .filter(|sig| !sig.is_constructor && sig.has_this && sig.returns_reference())
            .map(|sig| (ParamSlot::receiver(sig.method), ParamSlot::ret(sig.method)))
            .collect();
        Fixture {
            program,
            planner,
            interface,
            compiled,
            sources,
            sinks,
        }
    }

    /// Builds the candidate word picked by the two indices and synthesizes
    /// its witness, if the word is well-formed and synthesizable.
    fn witness(
        &self,
        source: prop::sample::Index,
        sink: prop::sample::Index,
    ) -> Option<WitnessTest> {
        let (entry, mid) = self.sources[source.index(self.sources.len())];
        let (recv, exit) = self.sinks[sink.index(self.sinks.len())];
        let spec = PathSpec::new(vec![entry, mid, recv, exit]).ok()?;
        synthesize_witness(
            &self.program,
            &self.interface,
            &self.planner,
            &spec,
            InitStrategy::Instantiate,
        )
        .ok()
    }

    /// Executes `witness` under both engines, returning `(verdict, steps)`
    /// pairs.
    #[allow(clippy::type_complexity)]
    fn execute_both(
        &self,
        witness: &WitnessTest,
        limits: ExecLimits,
    ) -> [(Result<bool, atlas_interp::ExecError>, usize); 2] {
        let mut wscratch = WitnessScratch::default();
        let builtins = BuiltinRegistry::with_defaults();
        let mut tree = Interpreter::with_config(&self.program, builtins.clone(), limits);
        let t = witness.execute_with(&self.program, &mut tree, &mut wscratch);
        let mut vm = Vm::with_scratch(&self.compiled, &builtins, limits, VmScratch::default());
        let v = witness.execute_with(&self.program, &mut vm, &mut wscratch);
        [(t, tree.steps()), (v, vm.steps())]
    }
}

fn javalib() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let lib = build_library("javalib", 0x5EED).expect("javalib is registered");
        Fixture::prepare(lib.program)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_apps_match_under_default_limits(
        index in 0..46usize,
        seed in 0..3u64,
    ) {
        let app = generate_app(index, 0xA71A5 + seed);
        let [(t_out, t_steps), (v_out, v_steps)] =
            run_both(&app.program, app.entry, ExecLimits::default());
        prop_assert_eq!(&t_out, &v_out);
        prop_assert_eq!(t_steps, v_steps);
        // The suite's entries are built to run to completion.
        prop_assert!(matches!(t_out, ExecOutcome::Returned(_)), "{t_out:?}");
    }

    #[test]
    fn tight_limits_exhaust_at_the_same_statement(
        index in 0..46usize,
        max_steps in 1..600usize,
        max_call_depth in 1..12usize,
        max_heap_objects in 1..60usize,
    ) {
        let app = generate_app(index, 0xA71A5);
        let limits = ExecLimits { max_steps, max_call_depth, max_heap_objects };
        let [(t_out, t_steps), (v_out, v_steps)] = run_both(&app.program, app.entry, limits);
        // Identical outcome: if a limit binds, both engines must report the
        // same LimitExceeded kind...
        prop_assert_eq!(&t_out, &v_out);
        // ...after charging the same number of statements.
        prop_assert_eq!(t_steps, v_steps);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn javalib_witness_verdicts_match(
        source in any::<prop::sample::Index>(),
        sink in any::<prop::sample::Index>(),
    ) {
        let fix = javalib();
        let witness = fix.witness(source, sink);
        prop_assume!(witness.is_some());
        let witness = witness.unwrap();
        let [(t, t_steps), (v, v_steps)] =
            fix.execute_both(&witness, ExecLimits::for_unit_tests());
        prop_assert_eq!(&t, &v);
        prop_assert_eq!(t_steps, v_steps);
    }

    #[test]
    fn synthetic_library_witness_verdicts_match(
        seed in 0..1_000u64,
        classes in 2..5usize,
        source in any::<prop::sample::Index>(),
        sink in any::<prop::sample::Index>(),
    ) {
        let lib = generate_library(&SynthLibConfig {
            name: format!("synth-eq-{seed}"),
            seed,
            classes,
            ..SynthLibConfig::default()
        });
        let fix = Fixture::prepare(lib.program);
        prop_assume!(!fix.sources.is_empty() && !fix.sinks.is_empty());
        let witness = fix.witness(source, sink);
        prop_assume!(witness.is_some());
        let witness = witness.unwrap();
        let [(t, t_steps), (v, v_steps)] =
            fix.execute_both(&witness, ExecLimits::for_unit_tests());
        prop_assert_eq!(&t, &v);
        prop_assert_eq!(t_steps, v_steps);
    }
}
