//! Cross-**process** warm start: the property the persistent store exists
//! for, proven with real process boundaries rather than in-process
//! instances.
//!
//! A first `batch` invocation runs cold and persists its verdict cache and
//! inferred specification set into an `ATLAS_STORE` directory.  A second,
//! completely fresh invocation — new process, new program build, nothing
//! shared but the directory — must warm-start from the files, re-execute
//! zero unit tests, and export a byte-identical specification set.  The
//! second invocation runs under `--expect-warm`, so the binary itself also
//! enforces the invariants it reports.

use atlas_bench::Json;
use std::path::Path;
use std::process::Command;

/// Runs the `batch` binary with small budgets against `store`, returning
/// its parsed JSON report (parsed with the same shared parser the store
/// uses — the report schema is round-trippable by construction).
fn run_batch_process(store: &Path, extra_args: &[&str]) -> Json {
    let output = Command::new(env!("CARGO_BIN_EXE_batch"))
        .args(extra_args)
        .env("ATLAS_STORE", store)
        .env("ATLAS_SAMPLES", "250")
        .env("ATLAS_APPS", "1")
        .env("ATLAS_THREADS", "2")
        .output()
        .expect("spawn batch binary");
    assert!(
        output.status.success(),
        "batch {extra_args:?} failed with {}:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    Json::parse(&String::from_utf8(output.stdout).expect("utf-8 report"))
        .expect("stdout is a valid atlas-batch/1 document")
}

#[test]
fn warm_start_is_exact_across_process_boundaries() {
    let dir = std::env::temp_dir().join(format!("atlas-cross-process-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Process 1: cold; pays for every oracle execution and fills the store.
    let cold = run_batch_process(&dir, &[]);
    let store = cold.get("store").expect("store section");
    assert_eq!(
        store.get("warm_started_from_disk"),
        Some(&Json::Bool(false))
    );
    let persisted = store
        .get("persisted_entries")
        .and_then(Json::as_int)
        .expect("persisted entry count");
    assert!(persisted > 0, "the cold process persists its verdicts");
    let cold_executions = cold
        .get("inference")
        .and_then(|i| i.get("cold_executions"))
        .and_then(Json::as_int)
        .expect("execution count");
    assert!(cold_executions > 0, "the cold process actually executed");
    let spec_file = store
        .get("spec_file")
        .and_then(Json::as_str)
        .expect("spec file path");
    let spec_bytes = std::fs::read(spec_file).expect("spec artifact exists");

    // Process 2: fresh process, same store; also passes --threads (the CLI
    // override) and --expect-warm, so the binary exits nonzero unless the
    // warm-start invariants hold.
    let warm = run_batch_process(&dir, &["--threads", "1", "--expect-warm"]);
    let store = warm.get("store").expect("store section");
    assert_eq!(store.get("warm_started_from_disk"), Some(&Json::Bool(true)));
    assert_eq!(
        store.get("loaded_entries").and_then(Json::as_int),
        Some(persisted),
        "the fresh process reloads exactly what the first persisted"
    );
    assert_eq!(
        store.get("cross_process_identical"),
        Some(&Json::Bool(true)),
        "the inferred spec set is byte-identical across processes"
    );
    assert_eq!(store.get("new_entries"), Some(&Json::Int(0)));
    let rate = store
        .get("reload_hit_rate")
        .and_then(Json::as_f64)
        .expect("reload hit rate");
    assert!(rate > 0.99, "every query reloads from disk, got {rate}");
    assert_eq!(
        warm.get("inference")
            .and_then(|i| i.get("cold_executions"))
            .and_then(Json::as_int),
        Some(0),
        "zero oracle re-executions for cached words"
    );
    // The spec artifact on disk is unchanged byte-for-byte.
    assert_eq!(std::fs::read(spec_file).expect("spec artifact"), spec_bytes);

    std::fs::remove_dir_all(&dir).unwrap();
}
