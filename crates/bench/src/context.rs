//! Shared evaluation context: the library, a single inference run, the
//! generated app suite, and helpers to analyze an app under a given
//! specification set.

use atlas_apps::{generate_suite, AppConfig, GeneratedApp};
use atlas_core::{AtlasConfig, Engine, InferenceOutcome};
use atlas_flow::{find_flows, FlowResult};
use atlas_ir::{LibraryInterface, Program};
use atlas_javalib::{
    android_model_specs, class_ids, ground_truth_specs, handwritten_specs, library_program,
    CLASS_CLUSTERS, SINK_METHODS, SOURCE_METHODS,
};
use atlas_pointsto::{ExtractionOptions, Graph, PointsToStats, Solver};
use atlas_spec::CodeFragments;
use std::collections::HashMap;

/// Which specification set (or library variant) an analysis run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecSet {
    /// All library methods treated as no-ops (the trivial `Π(∅)` baseline).
    Empty,
    /// The partial handwritten corpus.
    Handwritten,
    /// The complete ground-truth corpus `S*`.
    GroundTruth,
    /// The specifications inferred by Atlas.
    Inferred,
    /// The real library implementation, analyzed directly.
    Implementation,
}

/// The result of analyzing one app under one specification set.
#[derive(Debug, Clone)]
pub struct AppAnalysis {
    /// Client points-to statistics.
    pub stats: PointsToStats,
    /// Information flows found by the client analysis.
    pub flows: FlowResult,
}

/// Everything the experiments need, computed once.
pub struct EvalContext {
    /// The library-only program used for inference.
    pub library: Program,
    /// Its interface.
    pub interface: LibraryInterface,
    /// The inference outcome (learned automata + statistics).
    pub outcome: InferenceOutcome,
    /// The generated benchmark apps.
    pub apps: Vec<GeneratedApp>,
}

// Environment knobs historically lived here; they are now centralized in
// [`crate::config`] and re-exported for existing callers.
pub use crate::config::{app_count, sample_budget, thread_budget};

impl EvalContext {
    /// Builds the full context: runs inference over the modeled library and
    /// generates the benchmark suite.
    pub fn build(samples_per_cluster: usize, num_apps: usize) -> EvalContext {
        let library = library_program();
        let interface = LibraryInterface::from_program(&library);
        let clusters = CLASS_CLUSTERS
            .iter()
            .map(|names| class_ids(&library, names))
            .filter(|ids| !ids.is_empty())
            .collect();
        let config = AtlasConfig {
            samples_per_cluster,
            clusters,
            num_threads: thread_budget(),
            engine: crate::config::oracle_engine(),
            ..AtlasConfig::default()
        };
        let outcome = Engine::new(&library, &interface, config).run();
        let apps = generate_suite(&AppConfig {
            count: num_apps,
            ..AppConfig::default()
        });
        EvalContext {
            library,
            interface,
            outcome,
            apps,
        }
    }

    /// A smaller context suitable for tests.
    pub fn small() -> EvalContext {
        EvalContext::build(800, 8)
    }

    /// The inferred code fragments, generated against `program`.
    pub fn inferred_fragments(&self, program: &Program) -> CodeFragments {
        self.outcome.fragments(program)
    }

    /// Analyzes one app under the given specification set.
    pub fn analyze(&self, app: &GeneratedApp, specs: SpecSet) -> AppAnalysis {
        let program = &app.program;
        let options = match specs {
            SpecSet::Empty => ExtractionOptions::empty_specs(),
            SpecSet::Implementation => ExtractionOptions::with_implementation(),
            SpecSet::Handwritten => {
                // Like the inferred set, the handwritten library corpus is
                // combined with the flow client's source-method models.
                let mut overrides = to_overrides(handwritten_specs(program));
                for (m, body) in android_model_specs(program) {
                    overrides.entry(m).or_insert(body);
                }
                ExtractionOptions::with_specs(overrides)
            }
            SpecSet::GroundTruth => {
                ExtractionOptions::with_specs(to_overrides(ground_truth_specs(program)))
            }
            SpecSet::Inferred => {
                // The inferred library specifications are combined with the
                // flow client's own source-method models (manual annotations
                // in the paper's setup).
                let mut overrides = self.inferred_fragments(program).to_overrides();
                for (m, body) in android_model_specs(program) {
                    overrides.entry(m).or_insert(body);
                }
                ExtractionOptions::with_specs(overrides)
            }
        };
        let graph = Graph::extract(program, &options);
        let result = Solver::new().solve(&graph);
        let stats = PointsToStats::collect(program, &graph, &result);
        let sources = atlas_flow::source_methods(program, SOURCE_METHODS);
        let sinks = atlas_flow::sink_methods(program, SINK_METHODS);
        let flows = find_flows(program, &graph, &result, &sources, &sinks);
        AppAnalysis { stats, flows }
    }

    /// Non-trivial client points-to edge count for one app under one
    /// specification set (the `|Π(S) \ Π(∅)|` quantity).
    pub fn nontrivial_edges(&self, app: &GeneratedApp, specs: SpecSet) -> usize {
        let trivial = self.analyze(app, SpecSet::Empty);
        let run = self.analyze(app, specs);
        run.stats.nontrivial(&trivial.stats)
    }
}

fn to_overrides(
    bodies: std::collections::BTreeMap<atlas_ir::MethodId, Vec<atlas_ir::Stmt>>,
) -> HashMap<atlas_ir::MethodId, Vec<atlas_ir::Stmt>> {
    bodies.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_method_ids_are_stable_across_app_programs() {
        // The learned automata are expressed over the library program's
        // method ids; app programs must assign the same ids to the same
        // library methods because the library is installed first.
        let library = library_program();
        let app = atlas_apps::generate_app(0, 1);
        for name in [
            "ArrayList.add",
            "HashMap.put",
            "Stack.pop",
            "TelephonyManager.getDeviceId",
        ] {
            let a = library.method_qualified(name).unwrap();
            let b = app.program.method_qualified(name).unwrap();
            assert_eq!(a, b, "method id mismatch for {name}");
        }
        assert_eq!(library.num_fields(), app.program.num_fields());
    }

    #[test]
    fn analysis_under_different_spec_sets_is_ordered_sensibly() {
        let ctx = EvalContext::build(400, 3);
        let app = &ctx.apps[0];
        let trivial = ctx.analyze(app, SpecSet::Empty);
        let hand = ctx.analyze(app, SpecSet::Handwritten);
        let truth = ctx.analyze(app, SpecSet::GroundTruth);
        // Ground truth finds at least as many flows as the handwritten
        // corpus, which finds at least as many as no specs at all.
        assert!(hand.flows.len() >= trivial.flows.len());
        assert!(truth.flows.len() >= hand.flows.len());
        // Ground-truth specifications find every constructed leak.  (They may
        // find additional pairs: like the paper's analysis, ours is context-
        // insensitive inside fragments, so distinct containers returned by
        // the same fragment allocation site are conflated.)
        let truth_pairs: std::collections::BTreeSet<(String, String)> = truth
            .flows
            .flows
            .iter()
            .map(|f| {
                (
                    app.program.qualified_name(f.source),
                    app.program.qualified_name(f.sink),
                )
            })
            .collect();
        for pair in &app.leaky_pairs {
            assert!(
                truth_pairs.contains(pair),
                "missing constructed leak {pair:?}"
            );
        }
        // Non-trivial edge counts are zero for the trivial baseline.
        assert_eq!(ctx.nontrivial_edges(app, SpecSet::Empty), 0);
    }
}
