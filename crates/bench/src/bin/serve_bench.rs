//! The resident-service pipeline: spawn an in-process `atlas-serve`
//! daemon, replay a deterministic mutation-generator edit stream, and
//! byte-compare the daemon's final artifact against a cold batch run.
//! One `atlas-serve/1` JSON report.
//!
//! ```sh
//! cargo run --release -p atlas-bench --bin serve_bench > report.json
//! # the CI smoke gate:
//! ATLAS_SERVE_STORE=target/atlas-serve-ci cargo run --release -p atlas-bench --bin serve_bench -- \
//!     --library javalib-lang --edits 1000 --expect-throughput 5
//! ```
//!
//! The human summary goes to stderr, the JSON document to stdout (and to
//! `ATLAS_SERVE_OUT` when set).  Budgets come from the usual knobs
//! (`ATLAS_SAMPLES`, `ATLAS_THREADS`) plus the `ATLAS_SERVE_*` family for
//! the daemon (see `atlas_serve::config`) and `ATLAS_SERVE_EDITS` for the
//! stream length.
//!
//! Flags:
//!
//! * `--library NAME` — registry name of the library under service
//!   (default `javalib`).
//! * `--samples N` / `--threads N` — budgets, overriding the environment.
//! * `--store ROOT` — closure-sharded store root, overriding
//!   `ATLAS_SERVE_STORE`.
//! * `--edits N` — edit-stream length (default 1000; per session when
//!   `--sessions` > 1).
//! * `--sessions N` — concurrent sessions (default 1).  With more than
//!   one, the run switches to the multi-session leg: `N` named sessions
//!   on one daemon, each replayed from its own client thread, each
//!   byte-compared against its own cold baseline, one `atlas-serve/2`
//!   report with aggregate throughput.
//! * `--workers N` — daemon worker-pool width (0 = auto from the thread
//!   budget).
//! * `--shards N` — hot-shard LRU budget.
//! * `--queue N` — request-queue capacity.
//! * `--flush-every N` — write-behind schedule (`0` = every edit).
//! * `--seed N` — base mutation seed.
//! * `--trace` — record daemon span events (overriding `ATLAS_TRACE`);
//!   never changes results.
//! * `--trace-out PATH` — write the daemon's Chrome trace-event JSON to
//!   `PATH` (implies `--trace`; overrides `ATLAS_TRACE_OUT`).
//! * `--expect-throughput N` — assert the service contract: the final
//!   artifact byte-identical to the cold baseline, fingerprints matching,
//!   and at least `N` edits per second sustained.  Exits `1` otherwise.

use atlas_bench::{Json, ServeBenchConfig};
use std::path::PathBuf;

fn usage(message: &str) -> ! {
    eprintln!(
        "serve_bench: {message}\nusage: serve_bench [--library NAME] [--samples N] [--threads N] \
         [--store ROOT] [--edits N] [--sessions N] [--workers N] [--shards N] [--queue N] \
         [--flush-every N] [--seed N] [--trace] [--trace-out PATH] [--expect-throughput N]"
    );
    std::process::exit(1);
}

fn main() {
    let mut config = ServeBenchConfig::from_env();
    let mut expect_throughput: Option<f64> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--library" => {
                config.serve.library = args
                    .next()
                    .unwrap_or_else(|| usage("--library needs a name"));
            }
            "--samples" => {
                config.serve.samples = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--samples needs a number"));
            }
            "--threads" => {
                config.serve.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a number"));
            }
            "--store" => {
                config.serve.store =
                    PathBuf::from(args.next().unwrap_or_else(|| usage("--store needs a path")));
            }
            "--edits" => {
                config.edits = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--edits needs a number"));
            }
            "--sessions" => {
                config.sessions = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--sessions needs a number"));
            }
            "--workers" => {
                config.serve.workers = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--workers needs a number"));
            }
            "--shards" => {
                config.serve.shard_budget = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--shards needs a number"));
            }
            "--queue" => {
                config.serve.queue_capacity = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--queue needs a number"));
            }
            "--flush-every" => {
                config.serve.flush_every = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--flush-every needs a number"));
            }
            "--seed" => {
                config.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--trace" => config.serve.trace = true,
            "--trace-out" => {
                config.serve.trace = true;
                trace_out = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--trace-out needs a path")),
                ));
            }
            "--expect-throughput" => {
                expect_throughput = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--expect-throughput needs a number")),
                );
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    eprintln!(
        "serve_bench: {} ({} samples/cluster, threads={}, workers={}, sessions={}, edits={}, store={})",
        config.serve.library,
        config.serve.samples,
        config.serve.threads,
        config.serve.workers,
        config.sessions,
        config.edits,
        config.serve.store.display()
    );
    let run = if config.sessions > 1 {
        atlas_bench::run_serve_multi_bench(&config)
    } else {
        atlas_bench::run_serve_bench(&config)
    };
    let report = match run {
        Ok(report) => report,
        Err(e) => {
            eprintln!("serve_bench: {e}");
            std::process::exit(1);
        }
    };
    eprint!("{}", report.summary);
    atlas_bench::emit_report("serve_bench", &report.json.render(), "ATLAS_SERVE_OUT");
    atlas_bench::export_trace(&report.recorder, trace_out);
    if let Some(min_throughput) = expect_throughput {
        verify_serve(&report.json, &config, min_throughput);
    }
}

/// The `--expect-throughput` contract, checked from the report itself.
/// Failure messages name the store root, so a wedged or diverged daemon is
/// diagnosable from the CI log alone.
fn verify_serve(report: &Json, config: &ServeBenchConfig, min_throughput: f64) {
    let store = config.serve.store.display();
    let mut failures = Vec::new();
    let equivalence = report.get("equivalence").unwrap_or(&Json::Null);
    if equivalence.get("identical").and_then(Json::as_bool) != Some(true) {
        failures.push(format!(
            "the daemon's final artifact over {store} is not byte-identical to the cold baseline"
        ));
    }
    if equivalence
        .get("fingerprints_match")
        .and_then(Json::as_bool)
        != Some(true)
    {
        failures.push(
            "the daemon's final library fingerprint diverged from the replayed content".to_string(),
        );
    }
    let edits = report.get("edits").unwrap_or(&Json::Null);
    let accepted = edits.get("accepted").and_then(Json::as_int).unwrap_or(0);
    if accepted == 0 {
        failures.push("the daemon accepted no edits at all".to_string());
    }
    let throughput = report
        .get("throughput_edits_per_sec")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    if throughput < min_throughput {
        failures.push(format!(
            "throughput {throughput:.2} edits/s is below the {min_throughput:.2} floor"
        ));
    }
    if failures.is_empty() {
        let p99 = report
            .get("latency_ms")
            .and_then(|l| l.get("p99"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        eprintln!(
            "serve_bench: contract verified ({accepted} edits accepted, \
             {throughput:.1} edits/s, p99 {p99:.2}ms, byte-identical to cold batch)"
        );
    } else {
        for failure in &failures {
            eprintln!("serve_bench: --expect-throughput failed: {failure}");
        }
        std::process::exit(1);
    }
}
