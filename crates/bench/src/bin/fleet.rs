//! The multi-library fleet pipeline: concurrent inference over a registry
//! of library variants with per-library sharded stores, one JSON report.
//!
//! ```sh
//! cargo run --release -p atlas-bench --bin fleet > report.json
//! # sharded cross-process warm start:
//! ATLAS_FLEET_STORE=target/atlas-fleet cargo run --release -p atlas-bench --bin fleet
//! ATLAS_FLEET_STORE=target/atlas-fleet cargo run --release -p atlas-bench --bin fleet -- --expect-warm
//! ```
//!
//! The human summary goes to stderr, the `atlas-fleet/1` JSON document to
//! stdout (and to `ATLAS_FLEET_OUT` when set).  Budgets come from the
//! usual knobs (`ATLAS_SAMPLES`, `ATLAS_THREADS`) plus `ATLAS_FLEET_STORE`
//! (sharded store root), `ATLAS_FLEET_SEED` (synthetic-library seed), and
//! `ATLAS_FLEET_LIBS` (comma-separated member names).
//!
//! Flags:
//!
//! * `--list` — print the registry and exit.
//! * `--libraries A,B,...` — fleet members, overriding `ATLAS_FLEET_LIBS`.
//! * `--threads N` — global worker budget, overriding `ATLAS_THREADS`
//!   (0 = one per core); bounds outer workers × per-library threads.
//! * `--samples N` — per-cluster sampling budget, overriding
//!   `ATLAS_SAMPLES`.
//! * `--store ROOT` — sharded store root, overriding `ATLAS_FLEET_STORE`.
//! * `--normalized-out PATH` — additionally write the timing-stripped
//!   report (see `atlas_bench::fleet::normalized`); two same-seed runs
//!   against the same store state produce byte-identical files, which CI
//!   `cmp`s.
//! * `--trace` — record span events (overriding `ATLAS_TRACE`); never
//!   changes results.
//! * `--trace-out PATH` — write the run's Chrome trace-event JSON to
//!   `PATH` (implies `--trace`; overrides `ATLAS_TRACE_OUT`).
//! * `--expect-warm` — assert that *every* library warm-started from its
//!   shard with zero re-executions and a byte-identical spec export; exits
//!   `1` otherwise.

use atlas_bench::fleet::{self, FleetConfig};
use atlas_bench::Json;
use std::path::PathBuf;

fn usage(message: &str) -> ! {
    eprintln!(
        "fleet: {message}\nusage: fleet [--list] [--libraries A,B,...] [--threads N] \
         [--samples N] [--store ROOT] [--normalized-out PATH] [--trace] [--trace-out PATH] \
         [--expect-warm]"
    );
    std::process::exit(1);
}

fn main() {
    let mut config = FleetConfig::from_env();
    let mut expect_warm = false;
    let mut normalized_out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                for name in fleet::registry_names() {
                    println!("{name}");
                }
                return;
            }
            "--libraries" => {
                let list = args
                    .next()
                    .unwrap_or_else(|| usage("--libraries needs a comma-separated list"));
                config.libraries = atlas_bench::config::parse_library_list(&list);
            }
            "--threads" => {
                config.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a number"));
            }
            "--samples" => {
                config.samples = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--samples needs a number"));
            }
            "--store" => {
                config.store_root = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| usage("--store needs a path")),
                ));
            }
            "--normalized-out" => {
                normalized_out = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--normalized-out needs a path")),
                ));
            }
            "--trace" => config.trace = true,
            "--trace-out" => {
                config.trace = true;
                trace_out = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--trace-out needs a path")),
                ));
            }
            "--expect-warm" => expect_warm = true,
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    if expect_warm && config.store_root.is_none() {
        usage("--expect-warm needs a store (--store or ATLAS_FLEET_STORE)");
    }
    eprintln!(
        "fleet: {} [{}], {} samples/cluster, threads={}{}",
        config.libraries.len(),
        config.libraries.join(", "),
        config.samples,
        config.threads,
        match &config.store_root {
            Some(root) => format!(", store={}", root.display()),
            None => String::new(),
        }
    );
    let report = match fleet::run_fleet(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("fleet: {e}");
            std::process::exit(1);
        }
    };
    eprint!("{}", report.summary);
    atlas_bench::emit_report("fleet", &report.json.render(), "ATLAS_FLEET_OUT");
    atlas_bench::export_trace(&report.recorder, trace_out);
    if let Some(path) = &normalized_out {
        let norm = fleet::normalized(&report.json).render();
        if let Err(e) = std::fs::write(path, &norm) {
            eprintln!("fleet: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("fleet: normalized report written to {}", path.display());
    }
    if expect_warm {
        verify_warm_start(&report.json);
    }
}

/// The `--expect-warm` contract: every fleet member warm-started from its
/// shard, re-executed nothing, and reproduced its spec export byte for
/// byte.
fn verify_warm_start(report: &Json) {
    let mut failures = Vec::new();
    let empty = Vec::new();
    let libraries = report
        .get("libraries")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    if libraries.is_empty() {
        failures.push("the report lists no libraries".to_string());
    }
    for row in libraries {
        let name = row.get("name").and_then(Json::as_str).unwrap_or("?");
        let store = row.get("store").unwrap_or(&Json::Null);
        // Name the shard directory in every failure, so the CI log alone
        // says which store location was cold.
        let shard = store
            .get("shard")
            .and_then(Json::as_str)
            .unwrap_or("<no shard configured>");
        if store.get("warm_started_from_disk").and_then(Json::as_bool) != Some(true) {
            failures.push(format!(
                "{name}: shard {shard} held no cache to warm-start from"
            ));
        }
        match store.get("reload_hit_rate").and_then(Json::as_f64) {
            Some(rate) if rate > 0.0 => {}
            rate => failures.push(format!(
                "{name}: reload hit rate from shard {shard} is not positive: {rate:?}"
            )),
        }
        if store.get("specs_identical").and_then(Json::as_bool) != Some(true) {
            failures.push(format!(
                "{name}: inferred spec set differs from the export in shard {shard}"
            ));
        }
        match row.get("executions").and_then(Json::as_int) {
            Some(0) => {}
            n => failures.push(format!(
                "{name}: re-executed unit tests despite shard {shard}: {n:?}"
            )),
        }
    }
    if failures.is_empty() {
        eprintln!(
            "fleet: cross-process warm start verified for {} shard(s) \
             (identical specs, 0 re-executions)",
            libraries.len()
        );
    } else {
        for failure in &failures {
            eprintln!("fleet: --expect-warm failed: {failure}");
        }
        std::process::exit(1);
    }
}
