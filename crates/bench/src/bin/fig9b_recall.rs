//! Regenerates Figure 9(b): points-to recall, Atlas vs ground truth.
fn main() {
    let ctx = atlas_bench::EvalContext::build(
        atlas_bench::context::sample_budget(),
        atlas_bench::context::app_count(),
    );
    print!("{}", atlas_bench::experiments::fig9b_recall(&ctx));
}
