//! Regenerates the §6.1 coverage comparison (inferred vs handwritten).
fn main() {
    let ctx = atlas_bench::EvalContext::build(
        atlas_bench::context::sample_budget(),
        atlas_bench::context::app_count(),
    );
    print!("{}", atlas_bench::experiments::tab_coverage(&ctx));
}
