//! The oracle-throughput pipeline: execute a deterministic witness
//! workload under the bytecode VM and the tree-walking interpreter,
//! cross-check their equivalence, and report one `atlas-oracle/1` JSON
//! document.
//!
//! ```sh
//! cargo run --release -p atlas-bench --bin oracle > report.json
//! # the CI smoke gate:
//! cargo run --release -p atlas-bench --bin oracle -- --expect-speedup 4
//! ```
//!
//! The human summary goes to stderr, the JSON document to stdout (and to
//! `ATLAS_ORACLE_OUT` when set).  `ATLAS_ORACLE_WORDS` and
//! `ATLAS_ORACLE_ROUNDS` size the workload from the environment.
//!
//! Flags:
//!
//! * `--library NAME` — registry name of the library under measurement
//!   (default `javalib`).
//! * `--words N` / `--rounds N` — workload size, overriding the
//!   environment.
//! * `--samples N` — sampling budget of the cross-engine inference
//!   identity check.
//! * `--trace` — record span events (overriding `ATLAS_TRACE`); never
//!   changes results.
//! * `--trace-out PATH` — write the run's Chrome trace-event JSON to
//!   `PATH` (implies `--trace`; overrides `ATLAS_TRACE_OUT`).
//! * `--profile` — record per-opcode dynamic execution counts and
//!   inline-cache hit rates (overriding `ATLAS_VM_PROFILE`); the counts
//!   come from a dedicated untimed pass and never change results.
//! * `--profile-out PATH` — write the report's `profile` section to
//!   `PATH` as its own JSON document (implies `--profile`).
//! * `--expect-speedup X` — assert the performance and equivalence
//!   contract: identical verdicts, steps, and inferred specs under both
//!   engines, and bytecode throughput at least `X` times the
//!   tree-walker's.  Exits `1` otherwise.

use atlas_bench::{Json, OracleBenchConfig};
use std::path::PathBuf;

fn usage(message: &str) -> ! {
    eprintln!(
        "oracle: {message}\nusage: oracle [--library NAME] [--words N] [--rounds N] \
         [--samples N] [--trace] [--trace-out PATH] [--profile] [--profile-out PATH] \
         [--expect-speedup X]"
    );
    std::process::exit(1);
}

fn main() {
    let mut config = OracleBenchConfig::from_env();
    let mut expect_speedup: Option<f64> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut profile_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--library" => {
                config.library = args
                    .next()
                    .unwrap_or_else(|| usage("--library needs a name"));
            }
            "--words" => {
                config.words = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--words needs a number"));
            }
            "--rounds" => {
                config.rounds = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--rounds needs a number"));
            }
            "--samples" => {
                config.identity_samples = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--samples needs a number"));
            }
            "--trace" => config.trace = true,
            "--trace-out" => {
                config.trace = true;
                trace_out = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--trace-out needs a path")),
                ));
            }
            "--profile" => config.profile = true,
            "--profile-out" => {
                config.profile = true;
                profile_out = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--profile-out needs a path")),
                ));
            }
            "--expect-speedup" => {
                expect_speedup = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--expect-speedup needs a number")),
                );
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    eprintln!(
        "oracle: {} ({} words x {} rounds, identity budget {})",
        config.library, config.words, config.rounds, config.identity_samples
    );
    let report = match atlas_bench::run_oracle_bench(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("oracle: {e}");
            std::process::exit(1);
        }
    };
    eprint!("{}", report.summary);
    atlas_bench::emit_report("oracle", &report.json.render(), "ATLAS_ORACLE_OUT");
    atlas_bench::export_trace(&report.recorder, trace_out);
    if let Some(path) = profile_out {
        // A missing histogram must never turn a green benchmark red.
        match report.json.get("profile") {
            Some(profile) => match std::fs::write(&path, profile.render()) {
                Ok(()) => eprintln!("oracle: wrote profile to {}", path.display()),
                Err(e) => eprintln!("oracle: failed to write {}: {e}", path.display()),
            },
            None => eprintln!("oracle: no profile section to write"),
        }
    }
    if let Some(min_speedup) = expect_speedup {
        verify_oracle(&report.json, min_speedup);
    }
}

/// The `--expect-speedup` contract, checked from the report itself.
fn verify_oracle(report: &Json, min_speedup: f64) {
    let mut failures = Vec::new();
    for key in [
        "verdicts_identical",
        "steps_identical",
        "inference_identical",
    ] {
        if report.get(key).and_then(Json::as_bool) != Some(true) {
            failures.push(format!("the engines must agree: {key} is not true"));
        }
    }
    let speedup = report.get("speedup").and_then(Json::as_f64).unwrap_or(0.0);
    if speedup < min_speedup {
        failures.push(format!(
            "bytecode speedup {speedup:.2}x is below the required {min_speedup:.2}x"
        ));
    }
    if failures.is_empty() {
        eprintln!(
            "oracle: contract verified ({speedup:.1}x >= {min_speedup:.1}x, engines identical)"
        );
    } else {
        for failure in &failures {
            eprintln!("oracle: --expect-speedup failed: {failure}");
        }
        std::process::exit(1);
    }
}
