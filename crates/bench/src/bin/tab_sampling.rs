//! Regenerates the §6.3 random-vs-MCTS sampling comparison.
fn main() {
    let library = atlas_javalib::library_program();
    let interface = atlas_javalib::library_interface(&library);
    print!(
        "{}",
        atlas_bench::experiments::tab_sampling(
            &library,
            &interface,
            atlas_bench::context::sample_budget()
        )
    );
}
