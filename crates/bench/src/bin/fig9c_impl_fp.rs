//! Regenerates Figure 9(c): analyzing the implementation vs ground truth.
fn main() {
    let ctx = atlas_bench::EvalContext::build(
        atlas_bench::context::sample_budget(),
        atlas_bench::context::app_count(),
    );
    print!("{}", atlas_bench::experiments::fig9c_impl_fp(&ctx));
}
