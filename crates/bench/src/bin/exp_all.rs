//! Runs every experiment of the evaluation and prints all reports.
fn main() {
    let report = atlas_bench::experiments::run_all(
        atlas_bench::context::sample_budget(),
        atlas_bench::context::app_count(),
    );
    print!("{report}");
}
