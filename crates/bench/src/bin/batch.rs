//! The batch evaluation pipeline: cold + warm-started inference, the full
//! app suite under all three specification variants, one JSON report.
//!
//! ```sh
//! cargo run --release -p atlas-bench --bin batch > report.json
//! # or, to also keep a copy on disk:
//! ATLAS_BATCH_OUT=target/batch.json cargo run --release -p atlas-bench --bin batch
//! ```
//!
//! The human summary goes to stderr, the JSON document to stdout (and to
//! `ATLAS_BATCH_OUT` when set).  Budgets come from the usual knobs
//! (`ATLAS_SAMPLES`, `ATLAS_APPS`, `ATLAS_THREADS`) plus the suite-shape
//! knobs `ATLAS_BATCH_SEED`, `ATLAS_BATCH_MAX_PATTERNS`, and
//! `ATLAS_BATCH_SIZE_FACTOR`.

fn main() {
    let config = atlas_bench::BatchConfig::from_env();
    eprintln!(
        "batch: {} samples/cluster, {} apps, threads={}",
        config.samples, config.app_config.count, config.threads
    );
    let report = atlas_bench::run_batch(&config);
    eprint!("{}", report.summary);
    let rendered = report.json.render();
    // Stdout is the primary output: print it before attempting the file
    // write, so a bad ATLAS_BATCH_OUT can't lose the run's report.
    print!("{rendered}");
    if let Ok(path) = std::env::var("ATLAS_BATCH_OUT") {
        match std::fs::write(&path, &rendered) {
            Ok(()) => eprintln!("batch: report written to {path}"),
            Err(e) => {
                eprintln!("batch: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
