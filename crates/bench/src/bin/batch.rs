//! The batch evaluation pipeline: cold + warm-started inference, the full
//! app suite under all three specification variants, one JSON report.
//!
//! ```sh
//! cargo run --release -p atlas-bench --bin batch > report.json
//! # or, to also keep a copy on disk:
//! ATLAS_BATCH_OUT=target/batch.json cargo run --release -p atlas-bench --bin batch
//! # cross-process warm start via the persistent store:
//! ATLAS_STORE=target/atlas-store cargo run --release -p atlas-bench --bin batch
//! ATLAS_STORE=target/atlas-store cargo run --release -p atlas-bench --bin batch -- --expect-warm
//! ```
//!
//! The human summary goes to stderr, the JSON document to stdout (and to
//! `ATLAS_BATCH_OUT` when set).  Budgets come from the usual knobs
//! (`ATLAS_SAMPLES`, `ATLAS_APPS`, `ATLAS_THREADS`) plus the suite-shape
//! knobs `ATLAS_BATCH_SEED`, `ATLAS_BATCH_MAX_PATTERNS`, and
//! `ATLAS_BATCH_SIZE_FACTOR`.
//!
//! Flags:
//!
//! * `--threads N` — engine worker threads, overriding `ATLAS_THREADS`
//!   (0 = one per core); CI matrices pass this instead of mutating the
//!   environment.
//! * `--store PATH` — persistent store directory, overriding `ATLAS_STORE`.
//! * `--trace` — record span events (overriding `ATLAS_TRACE`); never
//!   changes results.
//! * `--trace-out PATH` — write the run's Chrome trace-event JSON to
//!   `PATH` (implies `--trace`; overrides `ATLAS_TRACE_OUT`).
//! * `--expect-warm` — assert the cross-process warm-start invariants after
//!   the run: the store had a cache, the reload hit rate is nonzero, the
//!   first leg re-executed nothing, and the inferred spec set is
//!   byte-identical to the previous process's export.  Exits `1` when any
//!   of that fails, so CI smoke steps can rely on it.

use atlas_bench::Json;
use std::path::PathBuf;

fn usage(message: &str) -> ! {
    eprintln!(
        "batch: {message}\nusage: batch [--threads N] [--store PATH] [--trace] \
         [--trace-out PATH] [--expect-warm]"
    );
    std::process::exit(1);
}

fn main() {
    let mut config = atlas_bench::BatchConfig::from_env();
    let mut expect_warm = false;
    let mut trace_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                config.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a number"));
            }
            "--store" => {
                config.store = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| usage("--store needs a path")),
                ));
            }
            "--trace" => config.trace = true,
            "--trace-out" => {
                config.trace = true;
                trace_out = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--trace-out needs a path")),
                ));
            }
            "--expect-warm" => expect_warm = true,
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    if expect_warm && config.store.is_none() {
        usage("--expect-warm needs a store (--store or ATLAS_STORE)");
    }
    eprintln!(
        "batch: {} samples/cluster, {} apps, threads={}{}",
        config.samples,
        config.app_config.count,
        config.threads,
        match &config.store {
            Some(dir) => format!(", store={}", dir.display()),
            None => String::new(),
        }
    );
    let report = match atlas_bench::run_batch(&config) {
        Ok(report) => report,
        Err(e) => {
            // Store trouble (unwritable directory, corrupt artifact) is an
            // operational error with a position, not a crash.
            eprintln!("batch: store error: {e}");
            std::process::exit(1);
        }
    };
    eprint!("{}", report.summary);
    atlas_bench::emit_report("batch", &report.json.render(), "ATLAS_BATCH_OUT");
    atlas_bench::export_trace(&report.recorder, trace_out);
    if expect_warm {
        verify_warm_start(&report.json);
    }
}

/// The `--expect-warm` contract: everything a cross-process warm start
/// promises, checked from the report itself.  Failure messages name the
/// store files involved, so a cold store is diagnosable from the CI log
/// alone.
fn verify_warm_start(report: &Json) {
    let store = report.get("store").unwrap_or(&Json::Null);
    let inference = report.get("inference").unwrap_or(&Json::Null);
    let cache_file = store
        .get("cache_file")
        .and_then(Json::as_str)
        .unwrap_or("<no store configured>");
    let spec_file = store
        .get("spec_file")
        .and_then(Json::as_str)
        .unwrap_or("<no store configured>");
    let mut failures = Vec::new();
    if store.get("warm_started_from_disk").and_then(Json::as_bool) != Some(true) {
        failures.push(format!(
            "the store held no cache to warm-start from (expected {cache_file})"
        ));
    }
    match store.get("reload_hit_rate").and_then(Json::as_f64) {
        Some(rate) if rate > 0.0 => {}
        rate => failures.push(format!(
            "reload hit rate from {cache_file} is not positive: {rate:?}"
        )),
    }
    if store.get("cross_process_identical").and_then(Json::as_bool) != Some(true) {
        failures.push(format!(
            "inferred spec set differs from the previous process's export at {spec_file}"
        ));
    }
    match inference.get("cold_executions").and_then(Json::as_int) {
        Some(0) => {}
        n => failures.push(format!(
            "first leg re-executed unit tests despite {cache_file}: {n:?}"
        )),
    }
    if failures.is_empty() {
        eprintln!("batch: cross-process warm start verified (identical specs, 0 re-executions)");
    } else {
        for failure in &failures {
            eprintln!("batch: --expect-warm failed: {failure}");
        }
        std::process::exit(1);
    }
}
