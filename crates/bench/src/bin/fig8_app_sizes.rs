//! Regenerates Figure 8: benchmark app sizes in Jimple LoC.
fn main() {
    let ctx = atlas_bench::EvalContext::build(
        atlas_bench::context::sample_budget(),
        atlas_bench::context::app_count(),
    );
    print!("{}", atlas_bench::experiments::fig8_app_sizes(&ctx));
}
