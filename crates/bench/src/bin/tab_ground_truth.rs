//! Regenerates the §6.2 ground-truth precision/recall comparison.
fn main() {
    let ctx = atlas_bench::EvalContext::build(
        atlas_bench::context::sample_budget(),
        atlas_bench::context::app_count(),
    );
    print!("{}", atlas_bench::experiments::tab_ground_truth(&ctx));
}
