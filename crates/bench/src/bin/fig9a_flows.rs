//! Regenerates Figure 9(a): information flows, Atlas vs handwritten specs.
fn main() {
    let ctx = atlas_bench::EvalContext::build(
        atlas_bench::context::sample_budget(),
        atlas_bench::context::app_count(),
    );
    print!("{}", atlas_bench::experiments::fig9a_flows(&ctx));
}
