//! The incremental-inference pipeline: seed a closure-sharded store cold,
//! apply one deterministic library edit, re-analyze incrementally, and
//! compare against the cold baseline.  One `atlas-incr/1` JSON report.
//!
//! ```sh
//! cargo run --release -p atlas-bench --bin incr > report.json
//! # the CI smoke gate:
//! ATLAS_INCR_STORE=target/atlas-incr cargo run --release -p atlas-bench --bin incr -- \
//!     --mutation body-edit --target TreeMap.put --expect-incremental
//! ```
//!
//! The human summary goes to stderr, the JSON document to stdout (and to
//! `ATLAS_INCR_OUT` when set).  Budgets come from the usual knobs
//! (`ATLAS_SAMPLES`, `ATLAS_THREADS`) plus `ATLAS_INCR_STORE` for the
//! store root.
//!
//! Flags:
//!
//! * `--library NAME` — registry name of the library under edit (default
//!   `javalib`).
//! * `--samples N` / `--threads N` — budgets, overriding the environment.
//! * `--store ROOT` — closure-sharded store root, overriding
//!   `ATLAS_INCR_STORE`.
//! * `--mutation KIND` — `rename-local` | `body-edit` | `add-method` |
//!   `signature-change` (default `body-edit`).
//! * `--target NAME` — explicit `Class.method` (or class, for add-method).
//! * `--seed N` — mutation seed.
//! * `--trace` — record span events (overriding `ATLAS_TRACE`); never
//!   changes results.
//! * `--trace-out PATH` — write the run's Chrome trace-event JSON to
//!   `PATH` (implies `--trace`; overrides `ATLAS_TRACE_OUT`).
//! * `--expect-incremental` — assert the incremental contract: fewer than
//!   all clusters dirty, no forced re-runs, byte-identical splice, and
//!   fewer re-executions than the cold baseline.  Exits `1` otherwise.

use atlas_bench::{IncrConfig, Json};
use atlas_ir::MutationKind;
use std::path::PathBuf;

fn usage(message: &str) -> ! {
    eprintln!(
        "incremental: {message}\nusage: incremental [--library NAME] [--samples N] [--threads N] \
         [--store ROOT] [--mutation KIND] [--target NAME] [--seed N] [--trace] \
         [--trace-out PATH] [--expect-incremental]"
    );
    std::process::exit(1);
}

fn parse_kind(raw: &str) -> MutationKind {
    match raw {
        "rename-local" => MutationKind::RenameLocal,
        "body-edit" => MutationKind::BodyEdit,
        "add-method" => MutationKind::AddMethod,
        "signature-change" => MutationKind::SignatureChange,
        other => usage(&format!("unknown mutation kind '{other}'")),
    }
}

fn main() {
    let mut config = IncrConfig::from_env();
    let mut expect_incremental = false;
    let mut trace_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--library" => {
                config.library = args
                    .next()
                    .unwrap_or_else(|| usage("--library needs a name"));
            }
            "--samples" => {
                config.samples = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--samples needs a number"));
            }
            "--threads" => {
                config.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a number"));
            }
            "--store" => {
                config.store =
                    PathBuf::from(args.next().unwrap_or_else(|| usage("--store needs a path")));
            }
            "--mutation" => {
                config.mutation = parse_kind(
                    &args
                        .next()
                        .unwrap_or_else(|| usage("--mutation needs a kind")),
                );
            }
            "--target" => {
                config.target = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--target needs a name")),
                );
            }
            "--seed" => {
                config.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--trace" => config.trace = true,
            "--trace-out" => {
                config.trace = true;
                trace_out = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--trace-out needs a path")),
                ));
            }
            "--expect-incremental" => expect_incremental = true,
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    eprintln!(
        "incremental: {} ({} samples/cluster, threads={}, mutation={}, store={})",
        config.library,
        config.samples,
        config.threads,
        config.mutation,
        config.store.display()
    );
    let report = match atlas_bench::run_incremental(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("incremental: {e}");
            std::process::exit(1);
        }
    };
    eprint!("{}", report.summary);
    atlas_bench::emit_report("incremental", &report.json.render(), "ATLAS_INCR_OUT");
    atlas_bench::export_trace(&report.recorder, trace_out);
    if expect_incremental {
        verify_incremental(&report.json, &config);
    }
}

/// The `--expect-incremental` contract, checked from the report itself.
/// Failure messages name the store root, so a cold/missing shard is
/// diagnosable from the CI log alone.
fn verify_incremental(report: &Json, config: &IncrConfig) {
    let store = config.store.display();
    let clusters = report.get("clusters").unwrap_or(&Json::Null);
    let executions = report.get("executions").unwrap_or(&Json::Null);
    let mut failures = Vec::new();
    let total = clusters.get("total").and_then(Json::as_int).unwrap_or(0);
    let dirty = clusters.get("dirty").and_then(Json::as_int).unwrap_or(-1);
    let clean = clusters.get("clean").and_then(Json::as_int).unwrap_or(0);
    if !(0 < dirty && dirty < total) {
        failures.push(format!(
            "the edit must dirty some but not all clusters (dirty {dirty} of {total})"
        ));
    }
    if clean == 0 {
        failures.push(format!(
            "no cluster spliced from the store at {store} — was it seeded cold?"
        ));
    }
    match clusters.get("forced_dirty").and_then(Json::as_int) {
        Some(0) => {}
        n => failures.push(format!(
            "clean clusters re-ran because their shard under {store} was missing: {n:?}"
        )),
    }
    if report.get("splice_identical").and_then(Json::as_bool) != Some(true) {
        failures.push(format!(
            "spliced artifacts from {store} are not byte-identical to the cold baseline"
        ));
    }
    let cold = executions
        .get("cold_new")
        .and_then(Json::as_int)
        .unwrap_or(0);
    let incr = executions
        .get("incremental")
        .and_then(Json::as_int)
        .unwrap_or(i64::MAX);
    if incr >= cold {
        failures.push(format!(
            "incremental re-executed as much as cold ({incr} vs {cold})"
        ));
    }
    if failures.is_empty() {
        eprintln!(
            "incremental: contract verified ({dirty}/{total} clusters dirty, \
             {incr} vs {cold} executions, byte-identical splice from {store})"
        );
    } else {
        for failure in &failures {
            eprintln!("incremental: --expect-incremental failed: {failure}");
        }
        std::process::exit(1);
    }
}
