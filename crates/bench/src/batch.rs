//! The batch evaluation pipeline: one self-contained run that measures
//! everything future benchmark trajectories consume.
//!
//! One [`run_batch`] call:
//!
//! 1. runs full inference **cold**, harvests the verdict cache via
//!    `Session::into_cache`, then re-runs **warm** via `Engine::warm_start`
//!    — demonstrating the cache subsystem end to end (identical results,
//!    reported hit rate, wall-clock speedup);
//! 2. generates the benchmark app suite (with the diversity knobs of
//!    `atlas-apps` opened up beyond the historical defaults);
//! 3. analyzes every app under all three specification variants —
//!    *inferred*, *handwritten*, *ground truth* — recording per-app
//!    timings, flow counts, non-trivial points-to edges, and
//!    precision/recall against the constructed leaks;
//! 4. emits a machine-readable JSON report ([`BatchReport::json`], schema
//!    `atlas-batch/1`) plus a short human summary.
//!
//! With a persistent store configured (`ATLAS_STORE=dir` or
//! [`BatchConfig::store`]), the first leg additionally reloads the
//! registry's verdict cache — warm-starting *across processes* — persists
//! its own verdicts back, exports the inferred specification set
//! (`specs.json`, schema `atlas-spec/1`), and byte-compares it against the
//! previous process's export: the report's `store` section records the
//! reload hit rate and the `cross_process_identical` verdict that CI's
//! warm-start smoke step asserts.
//!
//! The `batch` binary prints the JSON to stdout (and the summary to
//! stderr): `cargo run --release -p atlas-bench --bin batch > report.json`.

use crate::config::{app_count, env_parse, sample_budget, store_dir, thread_budget, trace_enabled};
use crate::context::{EvalContext, SpecSet};
use crate::json::Json;
use atlas_apps::{generate_suite, AppConfig};
use atlas_core::{AtlasConfig, Engine, InferenceOutcome, StoreError, VerdictCache};
use atlas_ir::LibraryInterface;
use atlas_javalib::{class_ids, library_program, CLASS_CLUSTERS};
use atlas_obs::Recorder;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The three specification variants every app is analyzed under.
pub const VARIANTS: [(&str, SpecSet); 3] = [
    ("inferred", SpecSet::Inferred),
    ("handwritten", SpecSet::Handwritten),
    ("ground_truth", SpecSet::GroundTruth),
];

/// Configuration of a batch run.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Phase-one sampling budget per class cluster.
    pub samples: usize,
    /// Engine worker threads (`0` = one per core).
    pub threads: usize,
    /// Shape of the generated app suite.  The batch defaults open the
    /// diversity knobs wider than the historical suite: more patterns per
    /// app, more benign-payload sinks (precision bait), larger size spread.
    pub app_config: AppConfig,
    /// Persistent store directory (`ATLAS_STORE`).  When set, the run
    /// reads/writes `cache.json` (`atlas-cache/1`) and `specs.json`
    /// (`atlas-spec/1`) in this directory: an existing cache warm-starts
    /// the inference leg *across processes*, the run's verdicts are
    /// persisted back (first-entry-wins merge), and the report gains a
    /// `store` section with the reload hit rate and the cross-process
    /// determinism verdict.
    pub store: Option<PathBuf>,
    /// Record span events (`ATLAS_TRACE`).  Metrics counters are always
    /// collected; tracing additionally buffers the event stream a
    /// `--trace-out` / `ATLAS_TRACE_OUT` sink renders as Chrome trace
    /// JSON.  Never changes results — only observes them.
    pub trace: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            samples: sample_budget(),
            threads: thread_budget(),
            app_config: AppConfig {
                count: app_count(),
                seed: 0xBA7C4,
                min_patterns: 2,
                max_patterns: 16,
                leak_rate: 0.55,
                benign_sink_rate: 0.25,
                size_factor: 2,
            },
            store: None,
            trace: false,
        }
    }
}

impl BatchConfig {
    /// Reads the configuration from the environment: `ATLAS_SAMPLES`,
    /// `ATLAS_APPS`, `ATLAS_THREADS` as everywhere in the harness,
    /// `ATLAS_STORE` for the persistent store directory, plus
    /// `ATLAS_BATCH_SEED`, `ATLAS_BATCH_MAX_PATTERNS`, and
    /// `ATLAS_BATCH_SIZE_FACTOR` for the suite shape.
    pub fn from_env() -> BatchConfig {
        let mut config = BatchConfig::default();
        if let Some(seed) = env_parse("ATLAS_BATCH_SEED") {
            config.app_config.seed = seed;
        }
        if let Some(max) = env_parse("ATLAS_BATCH_MAX_PATTERNS") {
            config.app_config.max_patterns = max;
        }
        if let Some(factor) = env_parse("ATLAS_BATCH_SIZE_FACTOR") {
            config.app_config.size_factor = factor;
        }
        config.store = store_dir();
        config.trace = trace_enabled();
        config
    }

    /// A small configuration suitable for tests.
    pub fn small() -> BatchConfig {
        BatchConfig {
            samples: 400,
            threads: 0,
            app_config: AppConfig {
                count: 3,
                ..BatchConfig::default().app_config
            },
            store: None,
            trace: false,
        }
    }
}

/// Precision/recall bookkeeping for one app under one variant.
#[derive(Debug, Clone, Copy, Default)]
struct Confusion {
    tp: usize,
    fp: usize,
    fn_: usize,
}

impl Confusion {
    fn of(found: &BTreeSet<(String, String)>, truth: &BTreeSet<(String, String)>) -> Confusion {
        let tp = found.intersection(truth).count();
        Confusion {
            tp,
            fp: found.len() - tp,
            fn_: truth.len() - tp,
        }
    }

    fn merge(&mut self, other: Confusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }

    fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }
}

/// Per-variant running totals across the suite.
#[derive(Debug, Clone, Default)]
struct VariantTotals {
    flows: usize,
    edges: usize,
    analysis: Duration,
    confusion: Confusion,
}

/// The outcome of a batch run: the JSON document plus a human summary.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// The machine-readable report (schema `atlas-batch/1`).
    pub json: Json,
    /// A short human-readable summary (one line per headline number).
    pub summary: String,
    /// The run's observability session (span events when
    /// [`BatchConfig::trace`] was set) — feed it to
    /// [`atlas_obs::write_chrome_trace`] for the `--trace-out` sink.
    pub recorder: Recorder,
}

/// Resolved store file locations inside the `ATLAS_STORE` directory.
struct StorePaths {
    dir: PathBuf,
    cache: PathBuf,
    specs: PathBuf,
}

/// Runs the full batch pipeline.  See the [module docs](self).
///
/// # Errors
/// Returns the positioned `atlas-store` error when the configured store is
/// unreadable/unwritable or holds a corrupt artifact — the `batch` binary
/// turns this into a nonzero exit with a human-readable message instead of
/// a panic.
pub fn run_batch(config: &BatchConfig) -> Result<BatchReport, StoreError> {
    // One observability session spans both inference legs: the cold leg
    // records on the base lane stripe, the warm leg 4096 lanes up, so
    // their cluster tracks never interleave in the exported trace.
    let recorder = if config.trace {
        Recorder::tracing()
    } else {
        Recorder::metrics()
    };
    let library = library_program();
    let interface = LibraryInterface::from_program(&library);
    let clusters: Vec<_> = CLASS_CLUSTERS
        .iter()
        .map(|names| class_ids(&library, names))
        .filter(|ids| !ids.is_empty())
        .collect();
    let atlas_config = AtlasConfig {
        samples_per_cluster: config.samples,
        clusters,
        num_threads: config.threads,
        engine: crate::config::oracle_engine(),
        ..AtlasConfig::default()
    };

    // The persistent store: an existing cache warm-starts the first leg
    // *across processes*; the leg's verdicts are persisted back afterwards.
    let store = config.store.as_ref().map(|dir| StorePaths {
        dir: dir.clone(),
        cache: dir.join("cache.json"),
        specs: dir.join("specs.json"),
    });
    let mut loaded_entries = 0usize;
    let mut disk_cache: Option<VerdictCache> = None;
    if let Some(paths) = &store {
        if let Some((entries, cache)) = crate::storeleg::reload_cache(&paths.cache)? {
            loaded_entries = entries;
            disk_cache = Some(cache);
        }
    }
    let warm_started_from_disk = disk_cache.is_some();

    // 1. First inference leg, harvesting the verdict cache.  Cold — unless
    //    the store held a cache, in which case this is a cross-process warm
    //    run and every cached word skips its oracle execution.
    let cold_start = Instant::now();
    let mut engine =
        Engine::new(&library, &interface, atlas_config.clone()).with_recorder(recorder.clone());
    if let Some(cache) = disk_cache {
        engine = engine.warm_start(cache);
    }
    let mut session = engine.session();
    let cold = session.run();
    let cold_time = cold_start.elapsed();
    let reload_hit_rate = cold.cache_stats.warm_hit_rate();
    let persist = match &store {
        Some(paths) => Some(session.persist(&paths.cache)?),
        None => None,
    };
    let cache: VerdictCache = session.into_cache();
    let cache_entries = cache.len();

    // Export the inferred specification set.  When a previous process left
    // one behind, byte-compare before overwriting: identical bytes mean the
    // warm-started run inferred the *exact* same specifications — the
    // cross-process determinism check.
    let mut cross_process_identical = Json::Null;
    if let Some(paths) = &store {
        cross_process_identical = crate::storeleg::export_specs(
            &library,
            &interface,
            &cold,
            &paths.specs,
            warm_started_from_disk,
        )?
        .identical;
    }

    // 2. Warm re-run: same configuration, cache-fed.  Results must be
    //    bit-identical; only executions (and wall-clock) drop.
    let warm_start = Instant::now();
    let warm = Engine::new(&library, &interface, atlas_config)
        .with_recorder(recorder.with_lane_base(4096))
        .warm_start(cache)
        .run();
    let warm_time = warm_start.elapsed();
    let identical = outcomes_identical(&cold, &warm);

    // Memoization already pays off within the cold run itself (sampling
    // re-draws candidates); the warm-start hit rate is reported separately.
    let cold_memo_hit_rate = cold.cache_stats.hit_rate();

    // 3. The app suite, analyzed under all three variants.
    let apps = generate_suite(&config.app_config);
    let ctx = EvalContext {
        library,
        interface,
        outcome: cold,
        apps,
    };

    let mut app_rows = Vec::new();
    let mut totals: Vec<VariantTotals> = vec![VariantTotals::default(); VARIANTS.len()];
    for app in &ctx.apps {
        let trivial = ctx.analyze(app, SpecSet::Empty);
        let mut variants_json = Json::obj();
        for (i, (variant_name, spec_set)) in VARIANTS.iter().enumerate() {
            let t = Instant::now();
            let analysis = ctx.analyze(app, *spec_set);
            let elapsed = t.elapsed();
            let found: BTreeSet<(String, String)> = analysis
                .flows
                .flows
                .iter()
                .map(|f| {
                    (
                        app.program.qualified_name(f.source),
                        app.program.qualified_name(f.sink),
                    )
                })
                .collect();
            let confusion = Confusion::of(&found, &app.leaky_pairs);
            let edges = analysis.stats.nontrivial(&trivial.stats);
            totals[i].flows += analysis.flows.len();
            totals[i].edges += edges;
            totals[i].analysis += elapsed;
            totals[i].confusion.merge(confusion);
            variants_json = variants_json.set(
                variant_name,
                Json::obj()
                    .set("flows", analysis.flows.len())
                    .set("nontrivial_edges", edges)
                    .set("analysis_ms", elapsed.as_secs_f64() * 1e3)
                    .set("tp", confusion.tp)
                    .set("fp", confusion.fp)
                    .set("fn", confusion.fn_)
                    .set("precision", confusion.precision())
                    .set("recall", confusion.recall()),
            );
        }
        app_rows.push(
            Json::obj()
                .set("name", app.name.as_str())
                .set("client_loc", app.client_loc)
                .set("patterns", app.patterns.len())
                .set("known_leaks", app.leaky_pairs.len())
                .set("variants", variants_json),
        );
    }

    // 4. Assemble the report.
    let cache_stats = warm.cache_stats;
    let speedup = if warm_time.as_secs_f64() > 0.0 {
        cold_time.as_secs_f64() / warm_time.as_secs_f64()
    } else {
        f64::INFINITY
    };
    let mut totals_json = Json::obj();
    for ((name, _), total) in VARIANTS.iter().zip(&totals) {
        totals_json = totals_json.set(
            name,
            Json::obj()
                .set("flows", total.flows)
                .set("nontrivial_edges", total.edges)
                .set("analysis_ms", total.analysis.as_secs_f64() * 1e3)
                .set("tp", total.confusion.tp)
                .set("fp", total.confusion.fp)
                .set("fn", total.confusion.fn_)
                .set("precision", total.confusion.precision())
                .set("recall", total.confusion.recall()),
        );
    }
    let json = Json::obj()
        .set("schema", "atlas-batch/1")
        .set(
            "config",
            Json::obj()
                .set("samples_per_cluster", config.samples)
                .set("threads", config.threads)
                .set("apps", config.app_config.count)
                .set("app_seed", config.app_config.seed as i64)
                .set("min_patterns", config.app_config.min_patterns)
                .set("max_patterns", config.app_config.max_patterns)
                .set("leak_rate", config.app_config.leak_rate)
                .set("benign_sink_rate", config.app_config.benign_sink_rate)
                .set("size_factor", config.app_config.size_factor),
        )
        .set(
            "inference",
            Json::obj()
                .set("clusters", ctx.outcome.clusters.len())
                .set("positive_examples", ctx.outcome.total_positive_examples())
                .set("oracle_queries", ctx.outcome.oracle_queries)
                .set("cold_executions", ctx.outcome.oracle_executions)
                .set("warm_executions", warm.oracle_executions)
                .set("cold_ms", cold_time.as_secs_f64() * 1e3)
                .set("warm_ms", warm_time.as_secs_f64() * 1e3)
                .set("warm_speedup", speedup)
                .set("results_identical", identical)
                .set("cold_memo_hit_rate", cold_memo_hit_rate)
                .set(
                    "cache",
                    Json::obj()
                        .set("entries", cache_entries)
                        .set("lookups", cache_stats.lookups)
                        .set("hits", cache_stats.hits)
                        .set("warm_hits", cache_stats.warm_hits)
                        .set("misses", cache_stats.misses)
                        .set("evictions", cache_stats.evictions)
                        .set("hit_rate", cache_stats.hit_rate())
                        .set("warm_hit_rate", cache_stats.warm_hit_rate()),
                ),
        )
        .set(
            "store",
            match (&store, &persist) {
                (Some(paths), Some(persisted)) => Json::obj()
                    .set("path", paths.dir.display().to_string())
                    .set("cache_file", paths.cache.display().to_string())
                    .set("spec_file", paths.specs.display().to_string())
                    .set("warm_started_from_disk", warm_started_from_disk)
                    .set("loaded_entries", loaded_entries)
                    .set("reload_hit_rate", reload_hit_rate)
                    .set("persisted_entries", persisted.total_entries)
                    .set("new_entries", persisted.new_entries)
                    .set(
                        "library_fingerprint",
                        atlas_store::hex64_string(persisted.fingerprint),
                    )
                    .set("cross_process_identical", cross_process_identical.clone()),
                _ => Json::Null,
            },
        )
        .set("apps", Json::Arr(app_rows))
        .set("totals", totals_json)
        .set("metrics", atlas_obs::metrics_snapshot(&recorder));

    let mut summary = String::new();
    let _ = writeln!(
        summary,
        "inference: cold {:.2?} -> warm {:.2?} ({speedup:.1}x, {} -> {} executions, \
         {:.1}% warm-hit rate, identical={identical})",
        cold_time,
        warm_time,
        ctx.outcome.oracle_executions,
        warm.oracle_executions,
        100.0 * cache_stats.warm_hit_rate(),
    );
    let _ = writeln!(
        summary,
        "cache: {cache_entries} entries, {} lookups, {} hits",
        cache_stats.lookups, cache_stats.hits
    );
    if let (Some(paths), Some(persisted)) = (&store, &persist) {
        if warm_started_from_disk {
            let _ = writeln!(
                summary,
                "store: warm-started from {} ({loaded_entries} entries, {:.1}% reload hit rate, \
                 {} new verdicts persisted, specs identical={})",
                paths.dir.display(),
                100.0 * reload_hit_rate,
                persisted.new_entries,
                match &cross_process_identical {
                    Json::Bool(b) => b.to_string(),
                    _ => "n/a".to_string(),
                },
            );
        } else {
            let _ = writeln!(
                summary,
                "store: cold run persisted {} verdicts and {} spec cluster(s) to {}",
                persisted.total_entries,
                ctx.outcome.clusters.len(),
                paths.dir.display(),
            );
        }
    }
    for ((name, _), total) in VARIANTS.iter().zip(&totals) {
        let _ = writeln!(
            summary,
            "{name:>12}: {} flows, {} edges, precision {:.2}, recall {:.2}, {:.2?} analysis",
            total.flows,
            total.edges,
            total.confusion.precision(),
            total.confusion.recall(),
            total.analysis,
        );
    }

    Ok(BatchReport {
        json,
        summary,
        recorder,
    })
}

/// Result-identity check between two inference outcomes: same automata
/// (via extracted specs), same positives, same state counts.  Timings and
/// execution counts are intentionally ignored — they are *supposed* to
/// differ between cold and warm runs.
fn outcomes_identical(a: &InferenceOutcome, b: &InferenceOutcome) -> bool {
    a.clusters.len() == b.clusters.len()
        && a.oracle_queries == b.oracle_queries
        && a.state_counts() == b.state_counts()
        && a.specs(8, 64) == b.specs(8, 64)
        && a.clusters
            .iter()
            .zip(&b.clusters)
            .all(|(x, y)| x.positives == y.positives && x.fsa == y.fsa)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_pipeline_produces_a_consistent_report() {
        let report = run_batch(&BatchConfig::small()).expect("no store configured");
        let json = &report.json;
        assert_eq!(json.get("schema"), Some(&Json::str("atlas-batch/1")));

        let inference = json.get("inference").expect("inference section");
        assert_eq!(inference.get("results_identical"), Some(&Json::Bool(true)));
        assert_eq!(inference.get("warm_executions"), Some(&Json::Int(0)));
        let cache = inference.get("cache").expect("cache section");
        let Some(Json::Float(warm_rate)) = cache.get("warm_hit_rate") else {
            panic!("warm_hit_rate missing: {cache:?}");
        };
        assert!(*warm_rate > 0.99, "warm run should hit on every query");
        let Some(Json::Int(entries)) = cache.get("entries") else {
            panic!("entries missing");
        };
        assert!(*entries > 0);

        let Some(Json::Arr(apps)) = json.get("apps") else {
            panic!("apps missing");
        };
        assert_eq!(apps.len(), 3);
        for app in apps {
            let variants = app.get("variants").expect("variants");
            for (name, _) in VARIANTS {
                let v = variants.get(name).expect("variant row");
                for metric in ["flows", "precision", "recall", "analysis_ms"] {
                    assert!(v.get(metric).is_some(), "{name}.{metric} missing");
                }
            }
        }

        // Ground truth finds every constructed leak (recall 1.0 by
        // construction; see context.rs for the precision caveat).
        let totals = json.get("totals").expect("totals");
        let truth = totals.get("ground_truth").expect("ground_truth totals");
        assert_eq!(truth.get("recall"), Some(&Json::Float(1.0)));
        assert_eq!(truth.get("fn"), Some(&Json::Int(0)));

        // The summary mentions the headline numbers and the JSON renders.
        assert!(report.summary.contains("identical=true"));
        assert!(report.json.render().contains("warm_speedup"));
        // Without a store configured, the store section is explicitly null.
        assert_eq!(json.get("store"), Some(&Json::Null));
    }

    #[test]
    fn store_failures_are_positioned_errors_not_panics() {
        let dir = std::env::temp_dir().join(format!("atlas-batch-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("cache.json"), "{ not json").unwrap();
        let mut config = BatchConfig::small();
        config.samples = 50;
        config.app_config.count = 1;
        config.store = Some(dir.clone());

        // A corrupt artifact surfaces as a positioned parse error carrying
        // the offending file, before any inference runs.
        let err = run_batch(&config).unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, StoreError::Parse { .. }), "{msg}");
        assert!(
            msg.contains("cache.json") && msg.contains("line 1"),
            "{msg}"
        );

        // An unwritable store location (here: the parent is a regular
        // file, which even root cannot mkdir into) surfaces as an I/O
        // error carrying the path.
        let blocker = dir.join("blocker");
        std::fs::write(&blocker, "x").unwrap();
        config.store = Some(blocker.join("store"));
        let err = run_batch(&config).unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, StoreError::Io { .. }), "{msg}");
        assert!(msg.contains("blocker"), "{msg}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_leg_reloads_across_runs_and_reports_it() {
        let dir = std::env::temp_dir().join(format!("atlas-batch-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = BatchConfig::small();
        config.samples = 250;
        config.app_config.count = 1;
        config.store = Some(dir.clone());

        // First run: cold, persists cache + specs.
        let first = run_batch(&config).expect("writable store");
        let store = first.json.get("store").expect("store section");
        assert_eq!(
            store.get("warm_started_from_disk"),
            Some(&Json::Bool(false))
        );
        assert_eq!(store.get("loaded_entries"), Some(&Json::Int(0)));
        assert_eq!(store.get("cross_process_identical"), Some(&Json::Null));
        let persisted = store.get("persisted_entries").and_then(Json::as_int);
        assert!(persisted.unwrap_or(0) > 0);
        assert!(dir.join("cache.json").exists());
        assert!(dir.join("specs.json").exists());
        assert!(first.summary.contains("store: cold run persisted"));

        // Second run (fresh engine, same process — the binary-spawning
        // cross-process variant lives in tests/cross_process.rs): reloads
        // the registry, re-executes nothing, reproduces the spec file
        // byte-for-byte, contributes no new entries.
        let second = run_batch(&config).expect("readable store");
        let store = second.json.get("store").expect("store section");
        assert_eq!(store.get("warm_started_from_disk"), Some(&Json::Bool(true)));
        assert_eq!(
            store.get("loaded_entries").and_then(Json::as_int),
            persisted
        );
        assert_eq!(
            store.get("cross_process_identical"),
            Some(&Json::Bool(true))
        );
        assert_eq!(store.get("new_entries"), Some(&Json::Int(0)));
        let rate = store.get("reload_hit_rate").and_then(Json::as_f64).unwrap();
        assert!(
            rate > 0.99,
            "every first-leg query reloads from disk: {rate}"
        );
        let inference = second.json.get("inference").expect("inference");
        assert_eq!(
            inference.get("cold_executions"),
            Some(&Json::Int(0)),
            "first leg re-executed nothing after the reload"
        );
        assert!(second.summary.contains("store: warm-started from"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
