//! The one place environment knobs are parsed.
//!
//! Every binary and module of the harness reads its budgets through these
//! helpers, so a knob means the same thing everywhere:
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `ATLAS_SAMPLES` | phase-one sampling budget per class cluster | 4000 |
//! | `ATLAS_APPS` | generated benchmark app count | 46 |
//! | `ATLAS_THREADS` | total worker-thread budget (0 = one per core) | 0 |
//! | `ATLAS_STORE` | persistent store directory (batch: flat layout) | unset |
//! | `ATLAS_FLEET_STORE` | fingerprint-sharded fleet store root | unset |
//! | `ATLAS_FLEET_SEED` | base seed of the synthetic fleet libraries | `0x5EED` |
//! | `ATLAS_FLEET_LIBS` | comma-separated fleet library names | registry default |
//! | `ATLAS_ENGINE` | oracle execution engine (`bytecode` / `tree-walk`) | `bytecode` |
//! | `ATLAS_SERVE_EDITS` | serve-leg edit-stream length | 1000 |
//! | `ATLAS_VM_PROFILE` | per-opcode VM execution counts in oracle legs | off |
//! | `ATLAS_TRACE` | record span events (`1`/`true`/`yes`/`on`) | off |
//! | `ATLAS_TRACE_OUT` | Chrome trace-event JSON output path | unset |
//!
//! The resident-service daemon reads its own `ATLAS_SERVE_*` family
//! (store root, shard budget, queue capacity, flush schedule, frame
//! bound) in `atlas_serve::config`; the serve leg combines those with the
//! shared budgets above.
//!
//! Malformed values fall back to the default rather than aborting — a CI
//! matrix that exports an empty string must not change behavior.  The
//! primitive parsers live in [`atlas_core::env`], shared with the serve
//! daemon's knob table, and are re-exported here; this module only adds
//! the knob *names* and their defaults.

use atlas_core::env::{env_flag, parse_u64};
pub use atlas_core::env::{env_parse, env_path};
use std::path::PathBuf;

/// Reads the per-cluster sampling budget from `ATLAS_SAMPLES` (default 4000).
pub fn sample_budget() -> usize {
    env_parse("ATLAS_SAMPLES").unwrap_or(4_000)
}

/// Reads the global worker-thread budget from `ATLAS_THREADS` (default 0 =
/// one per available core).  The thread count never changes results, only
/// wall-clock; in fleet runs it bounds the *total* worker count across the
/// outer scheduler and every engine (see `atlas_core::ThreadBudget`).
pub fn thread_budget() -> usize {
    env_parse("ATLAS_THREADS").unwrap_or(0)
}

/// Reads the app count from `ATLAS_APPS` (default 46).
pub fn app_count() -> usize {
    env_parse("ATLAS_APPS").unwrap_or(46)
}

/// Reads the batch pipeline's flat store directory from `ATLAS_STORE`.
pub fn store_dir() -> Option<PathBuf> {
    env_path("ATLAS_STORE")
}

/// Reads the fleet pipeline's sharded store root from `ATLAS_FLEET_STORE`.
pub fn fleet_store_root() -> Option<PathBuf> {
    env_path("ATLAS_FLEET_STORE")
}

/// Reads the synthetic-library base seed from `ATLAS_FLEET_SEED` —
/// decimal or `0x`-prefixed hex, matching how the default (`0x5EED`) and
/// the fingerprints in reports are written.
pub fn fleet_seed() -> u64 {
    std::env::var("ATLAS_FLEET_SEED")
        .ok()
        .and_then(|s| parse_u64(&s))
        .unwrap_or(0x5EED)
}

/// Reads the oracle execution engine from `ATLAS_ENGINE` (`bytecode` /
/// `tree-walk`; default bytecode).  Engine choice can never change
/// results — the two engines are observationally identical (see
/// `atlas_interp::vm`) — only throughput; the knob exists for the
/// differential pipelines and for measuring one engine against the other.
pub fn oracle_engine() -> atlas_core::OracleEngine {
    std::env::var("ATLAS_ENGINE")
        .ok()
        .and_then(|s| atlas_core::OracleEngine::parse(&s))
        .unwrap_or_default()
}

/// Whether `ATLAS_VM_PROFILE` asks the oracle legs for per-opcode (and
/// fused-pair) dynamic execution counts (`1`/`true`/`yes`/`on`,
/// case-insensitive).  Profiling never changes results — the counters
/// ride a dedicated untimed pass outside the measured slices — it only
/// adds a `profile` section to the `atlas-oracle/1` report.
pub fn vm_profile_enabled() -> bool {
    env_flag("ATLAS_VM_PROFILE")
}

/// Whether `ATLAS_TRACE` asks for span recording (`1`/`true`/`yes`/`on`,
/// case-insensitive).  Tracing never changes results — the recorder
/// observes the pipelines from outside every verdict and artifact path —
/// only adds the event stream behind `ATLAS_TRACE_OUT`.
pub fn trace_enabled() -> bool {
    env_flag("ATLAS_TRACE")
}

/// Reads the Chrome trace-event sink path from `ATLAS_TRACE_OUT`.
pub fn trace_out() -> Option<PathBuf> {
    env_path("ATLAS_TRACE_OUT")
}

/// Builds the recorder a pipeline leg should run under: span tracing when
/// [`trace_enabled`], bare metrics otherwise.  Metrics stay cheap enough
/// to keep on for every run — the report legs fold them into their JSON.
pub fn recorder_from_env() -> atlas_obs::Recorder {
    if trace_enabled() {
        atlas_obs::Recorder::tracing()
    } else {
        atlas_obs::Recorder::metrics()
    }
}

/// Writes the Chrome trace sink to `out` — or, when `out` is `None`, to
/// the path named by `ATLAS_TRACE_OUT` (a no-op when neither is set).
/// Logs (not fails) on I/O errors — a missing trace must never turn a
/// green benchmark red.
pub fn export_trace(recorder: &atlas_obs::Recorder, out: Option<PathBuf>) {
    let Some(path) = out.or_else(trace_out) else {
        return;
    };
    match atlas_obs::write_chrome_trace(recorder, &path) {
        Ok(()) => eprintln!("trace: wrote {}", path.display()),
        Err(e) => eprintln!("trace: failed to write {}: {e}", path.display()),
    }
}

/// Parses a comma-separated library-name list (the `ATLAS_FLEET_LIBS` /
/// `fleet --libraries` syntax): names are trimmed, empty segments dropped.
pub fn parse_library_list(raw: &str) -> Vec<String> {
    raw.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// Reads the fleet library selection from `ATLAS_FLEET_LIBS`
/// (comma-separated registry names); `None` means the registry default.
pub fn fleet_libraries() -> Option<Vec<String>> {
    let raw = std::env::var("ATLAS_FLEET_LIBS").ok()?;
    let names = parse_library_list(&raw);
    if names.is_empty() {
        None
    } else {
        Some(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_historical() {
        // The suite must not depend on ambient ATLAS_* values; these
        // helpers are exercised against explicitly absent variables.
        assert_eq!(env_parse::<usize>("ATLAS_DOES_NOT_EXIST"), None);
        assert!(env_path("ATLAS_DOES_NOT_EXIST").is_none());
    }
}
