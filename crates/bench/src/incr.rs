//! The incremental-inference leg: measure — not assert — that editing one
//! library method re-analyzes only the clusters whose dependency closure
//! contains it.
//!
//! One [`run_incremental`] call:
//!
//! 1. builds a registered library (a `javalib` variant or a synthetic
//!    member, exactly like the fleet registry) and runs full inference
//!    **cold** over the *old* content, persisting one closure shard per
//!    cluster into the store root (`Session::persist_shards`);
//! 2. applies one deterministic mutation (`atlas-apps`' generator:
//!    rename-local / body-edit / add-method / signature-change knobs);
//! 3. opens `Engine::incremental_session` on the *new* content against the
//!    old run's provenance and runs it against the store: dirty clusters
//!    re-run, clean clusters splice;
//! 4. runs full inference cold over the new content as the baseline, and
//!    byte-compares its spec artifact against the incremental one — the
//!    **splice invariant**;
//! 5. emits an `atlas-incr/1` JSON report (dirty-cluster count,
//!    re-execution counts, spliced verdicts, end-to-end speedup vs. cold)
//!    plus a human summary.
//!
//! The `incr` binary adds `--expect-incremental`, which turns the
//! incremental contract into an exit code for CI: the mutation must dirty
//! *fewer than all* clusters, clean clusters must re-execute nothing (and
//! splice byte-identically), and the incremental run must re-execute fewer
//! unit tests than the cold baseline.

use crate::config::{env_path, sample_budget, thread_budget, trace_enabled};
use crate::fleet::{build_library, FleetError};
use crate::json::Json;
use crate::storeleg::{SPEC_LIMIT, SPEC_MAX_LEN};
use atlas_apps::{mutate_library, MutationConfig};
use atlas_core::{AtlasConfig, ClusterDisposition, Engine};
use atlas_ir::{LibraryInterface, MutationKind};
use atlas_obs::Recorder;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Configuration of an incremental run.
#[derive(Debug, Clone)]
pub struct IncrConfig {
    /// Registry name of the library under edit (fleet registry: `javalib`
    /// variants plus the synthetic members).
    pub library: String,
    /// Phase-one sampling budget per class cluster.
    pub samples: usize,
    /// Engine worker threads (`0` = one per core).
    pub threads: usize,
    /// Closure-sharded store root (`ATLAS_INCR_STORE`); the run seeds it
    /// cold and re-analyzes against it.
    pub store: PathBuf,
    /// The kind of library edit to model.
    pub mutation: MutationKind,
    /// Explicit mutation target (`Class.method`, or a class name for
    /// add-method); `None` picks deterministically by seed.
    pub target: Option<String>,
    /// Mutation seed (target selection + generated names).
    pub seed: u64,
    /// Record span events (`ATLAS_TRACE`); see `atlas-obs`.  Never
    /// changes results — only observes them.
    pub trace: bool,
}

impl IncrConfig {
    /// Reads the configuration from the environment: the usual
    /// `ATLAS_SAMPLES`/`ATLAS_THREADS` budgets plus `ATLAS_INCR_STORE` for
    /// the store root (default `target/atlas-incr`).
    pub fn from_env() -> IncrConfig {
        IncrConfig {
            library: "javalib".to_string(),
            samples: sample_budget(),
            threads: thread_budget(),
            store: env_path("ATLAS_INCR_STORE")
                .unwrap_or_else(|| PathBuf::from("target/atlas-incr")),
            mutation: MutationKind::BodyEdit,
            target: None,
            seed: 0x17C,
            trace: trace_enabled(),
        }
    }

    /// A small configuration suitable for tests.
    pub fn small(store: PathBuf) -> IncrConfig {
        IncrConfig {
            library: "javalib-lang".to_string(),
            samples: 250,
            threads: 1,
            store,
            mutation: MutationKind::BodyEdit,
            target: None,
            seed: 7,
            trace: false,
        }
    }
}

/// The outcome of an incremental run: the JSON document plus a human
/// summary.
#[derive(Debug, Clone)]
pub struct IncrReport {
    /// The machine-readable report (schema `atlas-incr/1`).
    pub json: Json,
    /// A short human-readable summary.
    pub summary: String,
    /// The run's observability session (span events when
    /// [`IncrConfig::trace`] was set) — feed it to
    /// [`atlas_obs::write_chrome_trace`] for the `--trace-out` sink.
    pub recorder: Recorder,
}

/// Runs the full incremental pipeline.  See the [module docs](self).
///
/// # Errors
/// Returns [`FleetError`] on an unknown library name, an ineligible
/// mutation target, or a store failure.
pub fn run_incremental(config: &IncrConfig) -> Result<IncrReport, FleetError> {
    // One observability session spans all three legs, each on its own
    // 4096-lane stripe (cold-old / incremental / cold-new) so their
    // cluster tracks stay separate in the exported trace.
    let recorder = if config.trace {
        Recorder::tracing()
    } else {
        Recorder::metrics()
    };
    let extraction = (SPEC_MAX_LEN, SPEC_LIMIT);
    let lib = build_library(&config.library, 0x5EED)?;
    let old_interface = LibraryInterface::from_program(&lib.program);
    let atlas_config = AtlasConfig {
        samples_per_cluster: config.samples,
        clusters: lib.clusters.clone(),
        num_threads: config.threads,
        engine: crate::config::oracle_engine(),
        ..AtlasConfig::default()
    };

    // 1. Cold full run over the old content, persisted shard-per-closure.
    let t = Instant::now();
    let old_engine = Engine::new(&lib.program, &old_interface, atlas_config.clone())
        .with_recorder(recorder.clone());
    let mut session = old_engine.session();
    let old_outcome = session.run();
    let cold_old = t.elapsed();
    let persisted = session.persist_shards(&old_outcome, &config.store, extraction)?;
    let old_provenance = old_engine.run_provenance();

    // 2. One deterministic library edit.
    let mutated = mutate_library(
        &lib.program,
        &MutationConfig {
            kind: config.mutation,
            seed: config.seed,
            target: config.target.clone(),
        },
    )?;
    let new_program = mutated.program;
    let new_interface = LibraryInterface::from_program(&new_program);

    // 3. Incremental re-analysis against the seeded store.
    let t = Instant::now();
    let new_engine = Engine::new(&new_program, &new_interface, atlas_config.clone())
        .with_recorder(recorder.with_lane_base(4096));
    let mut incr_session = new_engine.incremental_session(&old_provenance);
    let incremental = incr_session.run_with_store(&config.store, extraction)?;
    let incr_time = t.elapsed();

    // 4. Cold baseline over the new content + the splice invariant.
    let t = Instant::now();
    let cold_outcome = Engine::new(&new_program, &new_interface, atlas_config)
        .with_recorder(recorder.with_lane_base(8192))
        .run();
    let cold_new = t.elapsed();
    let cold_artifact = cold_outcome
        .spec_artifact(&new_program, &new_interface, extraction.0, extraction.1)
        .encode(&new_program)
        .map_err(|e| atlas_core::StoreError::schema(&config.store, e))?
        .render();
    let incr_artifact = incremental
        .spec_artifact(&new_program)
        .encode(&new_program)
        .map_err(|e| atlas_core::StoreError::schema(&config.store, e))?
        .render();
    let splice_identical = cold_artifact == incr_artifact;
    let speedup = if incr_time.as_secs_f64() > 0.0 {
        cold_new.as_secs_f64() / incr_time.as_secs_f64()
    } else {
        f64::INFINITY
    };

    // 5. Assemble the report.
    let total_clusters = incremental.clusters.len();
    let cluster_rows: Vec<Json> = incremental
        .clusters
        .iter()
        .map(|cluster| {
            let (status, classes) = match &cluster.disposition {
                ClusterDisposition::Reran(outcome) => (
                    "reran",
                    outcome
                        .classes
                        .iter()
                        .map(|&id| new_program.class(id).name().to_string())
                        .collect::<Vec<_>>(),
                ),
                ClusterDisposition::Spliced { spec, .. } => ("spliced", spec.classes.clone()),
            };
            Json::obj()
                .set("index", cluster.index)
                .set(
                    "classes",
                    classes.iter().map(Json::str).collect::<Vec<Json>>(),
                )
                .set("closure", atlas_store::hex64_string(cluster.closure))
                .set("status", status)
        })
        .collect();
    let json = Json::obj()
        .set("schema", "atlas-incr/1")
        .set(
            "config",
            Json::obj()
                .set("library", config.library.as_str())
                .set("samples_per_cluster", config.samples)
                .set("threads", config.threads)
                .set("store", config.store.display().to_string())
                .set("mutation_kind", config.mutation.to_string())
                .set("seed", config.seed as i64),
        )
        .set("mutation", mutated.outcome.description.as_str())
        .set(
            "clusters",
            Json::obj()
                .set("total", total_clusters)
                .set("dirty", incremental.dirty_clusters)
                .set("clean", incremental.clean_clusters)
                .set("forced_dirty", incremental.forced_dirty)
                .set("rows", Json::Arr(cluster_rows)),
        )
        .set(
            "executions",
            Json::obj()
                .set("cold_old", old_outcome.oracle_executions)
                .set("cold_new", cold_outcome.oracle_executions)
                .set("incremental", incremental.oracle_executions)
                .set("spliced_verdicts", incremental.spliced_verdicts),
        )
        .set("store_shards_seeded", persisted.shards)
        .set("splice_identical", splice_identical)
        .set(
            "timings",
            Json::obj()
                .set("cold_old_ms", cold_old.as_secs_f64() * 1e3)
                .set("incremental_ms", incr_time.as_secs_f64() * 1e3)
                .set("cold_new_ms", cold_new.as_secs_f64() * 1e3)
                .set("speedup_vs_cold", speedup),
        )
        .set("metrics", atlas_obs::metrics_snapshot(&recorder));

    let mut summary = String::new();
    let _ = writeln!(summary, "mutation: {}", mutated.outcome.description);
    let _ = writeln!(
        summary,
        "clusters: {}/{} dirty ({} spliced clean, {} forced dirty)",
        incremental.dirty_clusters,
        total_clusters,
        incremental.clean_clusters,
        incremental.forced_dirty,
    );
    let _ = writeln!(
        summary,
        "executions: cold {} -> incremental {} ({} verdicts spliced from the store)",
        cold_outcome.oracle_executions, incremental.oracle_executions, incremental.spliced_verdicts,
    );
    let _ = writeln!(
        summary,
        "wall: cold {:.2?} -> incremental {:.2?} ({speedup:.1}x), splice identical={splice_identical}",
        cold_new, incr_time,
    );
    Ok(IncrReport {
        json,
        summary,
        recorder,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("atlas-incr-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn incremental_report_shows_partial_dirtying_and_splice_identity() {
        let store = scratch("report");
        let config = IncrConfig {
            target: Some("StringBuilder.append".to_string()),
            ..IncrConfig::small(store.clone())
        };
        let report = run_incremental(&config).expect("incremental run");
        let json = &report.json;
        assert_eq!(json.get("schema"), Some(&Json::str("atlas-incr/1")));
        assert_eq!(json.get("splice_identical"), Some(&Json::Bool(true)));

        let clusters = json.get("clusters").expect("clusters");
        let total = clusters.get("total").and_then(Json::as_int).unwrap();
        let dirty = clusters.get("dirty").and_then(Json::as_int).unwrap();
        let clean = clusters.get("clean").and_then(Json::as_int).unwrap();
        assert_eq!(clusters.get("forced_dirty"), Some(&Json::Int(0)));
        assert!(dirty >= 1, "the edited cluster must re-run");
        assert!(
            dirty < total,
            "a one-method edit must not dirty every cluster ({dirty}/{total})"
        );
        assert_eq!(dirty + clean, total);

        let executions = json.get("executions").expect("executions");
        let cold = executions.get("cold_new").and_then(Json::as_int).unwrap();
        let incr = executions
            .get("incremental")
            .and_then(Json::as_int)
            .unwrap();
        assert!(incr > 0, "the dirty cluster executes");
        assert!(
            incr < cold,
            "splicing must save executions: {incr} vs {cold}"
        );
        assert!(
            executions
                .get("spliced_verdicts")
                .and_then(Json::as_int)
                .unwrap()
                > 0
        );
        assert!(report.summary.contains("splice identical=true"));
        std::fs::remove_dir_all(&store).unwrap();
    }

    #[test]
    fn unknown_libraries_and_targets_error_cleanly() {
        let store = scratch("errors");
        let bad_lib = IncrConfig {
            library: "no-such-library".to_string(),
            ..IncrConfig::small(store.clone())
        };
        assert!(run_incremental(&bad_lib).is_err());
        let bad_target = IncrConfig {
            target: Some("No.such".to_string()),
            ..IncrConfig::small(store.clone())
        };
        assert!(run_incremental(&bad_target).is_err());
        let _ = std::fs::remove_dir_all(&store);
    }
}
