//! JSON support for the report pipeline.
//!
//! The value type and writer were born here; when the persistent store
//! (`atlas-store`) needed the matching parser, the whole implementation
//! moved there so both crates share one JSON dialect.  This module remains
//! as the report-facing path (`atlas_bench::json::Json`) and re-exports the
//! shared machinery.

pub use atlas_store::json::{Json, JsonError};

#[cfg(test)]
mod tests {
    use super::*;

    /// The report writer's contract, exercised through the re-export: what
    /// `atlas-batch/1` consumers read back must equal what was written.
    #[test]
    fn report_documents_round_trip_through_the_shared_parser() {
        let doc = Json::obj()
            .set("schema", "atlas-batch/1")
            .set("ratio", 0.5)
            .set("name", "line\nbreak \"quoted\"")
            .set("items", vec![Json::Int(1), Json::Null, Json::str("x")]);
        let parsed = Json::parse(&doc.render()).expect("valid");
        assert_eq!(parsed, doc);
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("atlas-batch/1")
        );
    }
}
