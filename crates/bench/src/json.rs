//! A minimal JSON document builder.
//!
//! The batch evaluation pipeline emits machine-readable reports, but the
//! build environment has no crates.io access, so `serde_json` is not an
//! option.  This module implements exactly what the reports need: a value
//! tree ([`Json`]) and a deterministic pretty printer with correct string
//! escaping.  Object keys keep their insertion order, so reports diff
//! cleanly across runs.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float; non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be filled with [`Json::set`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Inserts (or replaces) a key in an object and returns `self` for
    /// chaining.  Panics when called on a non-object.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(entries) => {
                let value = value.into();
                match entries.iter_mut().find(|(k, _)| k == key) {
                    Some(slot) => slot.1 = value,
                    None => entries.push((key.to_string(), value)),
                }
            }
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Looks a key up in an object (for tests and report consumers).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serializes the value as pretty-printed JSON (2-space indent).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // Shortest round-trip form; force a decimal point so
                    // consumers always see a float.
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        let _ = write!(out, "{f:.1}");
                    } else {
                        let _ = write!(out, "{f}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents_with_escaping() {
        let doc = Json::obj()
            .set("schema", "atlas-batch/1")
            .set("count", 3usize)
            .set("ratio", 0.5)
            .set("whole", 2.0)
            .set("ok", true)
            .set("name", "line\nbreak \"quoted\"")
            .set("items", vec![Json::Int(1), Json::Null, Json::str("x")])
            .set("empty_arr", Vec::<Json>::new())
            .set("nested", Json::obj().set("inner", 7usize));
        let text = doc.render();
        assert!(text.contains("\"schema\": \"atlas-batch/1\""));
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("\"ratio\": 0.5"));
        assert!(text.contains("\"whole\": 2.0"));
        assert!(text.contains("\"line\\nbreak \\\"quoted\\\""));
        assert!(text.contains("\"empty_arr\": []"));
        assert!(text.contains("\"inner\": 7"));
        assert!(text.ends_with("}\n"));
        // set() replaces, get() finds.
        let doc = doc.set("count", 4usize);
        assert_eq!(doc.get("count"), Some(&Json::Int(4)));
        assert_eq!(doc.get("missing"), None);
        // Non-finite floats degrade to null.
        assert_eq!(Json::Float(f64::NAN).render().trim(), "null");
    }
}
