//! The multi-library fleet pipeline: specification inference over a
//! *population* of libraries at once.
//!
//! Where [`crate::batch`] evaluates the one handwritten `javalib`, a fleet
//! run takes a list of registered libraries — `atlas-javalib` variants
//! (module subsets with their own clusters) and deterministic synthetic
//! libraries from `atlas-apps` — and runs the full inference pipeline over
//! every one of them concurrently:
//!
//! * an outer work-stealing scheduler hands libraries to workers, while
//!   each library's [`Engine`] keeps its per-cluster parallelism; the two
//!   levels share one [`ThreadBudget`], so `ATLAS_THREADS` bounds the
//!   *total* worker count (`outer × inner ≤ budget`);
//! * with a store root configured, every library warm-starts from and
//!   persists back to its own *fingerprint-sharded* directory
//!   (`<root>/0x<fingerprint>/cache.json` + `specs.json`, see
//!   `atlas_store::shard_entry`) — shards never race because fleet members
//!   are distinct library contents;
//! * each library's inferred fragments are scored against its ground-truth
//!   corpus (statement-level precision/recall via
//!   [`atlas_core::compare_fragments`]), restricted to the classes its
//!   clusters cover;
//! * the run emits a versioned `atlas-fleet/1` JSON report with
//!   per-library rows (in configuration order, independent of scheduling)
//!   and a parallel-efficiency summary.
//!
//! **Determinism.**  Per-library results are a pure function of the
//! library, the sampling budget, and the seed — never of the thread budget
//! or which worker ran them (inherited from the Engine's determinism
//! guarantee, and property-tested in `tests/fleet.rs`).  [`normalized`]
//! strips the timing-derived fields from a report; two same-seed runs
//! against the same store state render byte-identically after
//! normalization, which CI asserts.

use crate::config;
use crate::json::Json;
use atlas_core::{
    compare_fragments, AtlasConfig, Engine, InferenceOutcome, PersistSummary, StoreError,
    ThreadBudget,
};
use atlas_ir::{ClassId, LibraryInterface, MethodId, Stmt};
use atlas_obs::Recorder;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::storeleg::{SPEC_LIMIT, SPEC_MAX_LEN};

/// An error raised by a fleet (or incremental) run.
#[derive(Debug)]
pub enum FleetError {
    /// A configured library name is not in the registry.
    UnknownLibrary(String),
    /// The configuration selects no libraries at all.
    EmptyFleet,
    /// A store operation failed (carries the file and position).
    Store(StoreError),
    /// A library mutation could not be generated (incremental pipeline:
    /// unknown or ineligible target).
    Mutation(atlas_apps::MutationError),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::UnknownLibrary(name) => write!(
                f,
                "unknown library '{name}' (registered: {})",
                registry_names().join(", ")
            ),
            FleetError::EmptyFleet => write!(f, "the fleet needs at least one library"),
            FleetError::Store(e) => write!(f, "{e}"),
            FleetError::Mutation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<StoreError> for FleetError {
    fn from(e: StoreError) -> FleetError {
        FleetError::Store(e)
    }
}

impl From<atlas_apps::MutationError> for FleetError {
    fn from(e: atlas_apps::MutationError) -> FleetError {
        FleetError::Mutation(e)
    }
}

impl From<atlas_apps::RegistryError> for FleetError {
    fn from(e: atlas_apps::RegistryError) -> FleetError {
        match e {
            atlas_apps::RegistryError::UnknownLibrary(name) => FleetError::UnknownLibrary(name),
        }
    }
}

/// One library of the fleet, built and ready for inference.  The registry
/// itself now lives in `atlas_apps::registry` (shared with `atlas-serve`);
/// this is its library type under the historical fleet name.
pub type FleetLibrary = atlas_apps::RegistryLibrary;

pub use atlas_apps::registry_names;

/// Builds one registered library by name.
///
/// # Errors
/// Returns [`FleetError::UnknownLibrary`] for a name outside the registry.
pub fn build_library(name: &str, synth_seed: u64) -> Result<FleetLibrary, FleetError> {
    Ok(atlas_apps::build_library(name, synth_seed)?)
}

/// Configuration of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Registry names of the fleet members, in report order.  Duplicates
    /// are dropped (they would race on the same store shard).
    pub libraries: Vec<String>,
    /// Phase-one sampling budget per class cluster.
    pub samples: usize,
    /// Global worker-thread budget (`0` = one per core), split between the
    /// outer scheduler and the per-library engines.
    pub threads: usize,
    /// Fingerprint-sharded store root (`ATLAS_FLEET_STORE`).
    pub store_root: Option<PathBuf>,
    /// Base seed of the synthetic libraries (`ATLAS_FLEET_SEED`).
    pub synth_seed: u64,
    /// Record span events (`ATLAS_TRACE`); see `atlas-obs`.  Never
    /// changes results — only observes them.
    pub trace: bool,
}

/// The default fleet: two javalib subsets and two synthetic libraries —
/// four distinct library contents, enough to exercise the sharded store
/// and the two-level scheduler without the full javalib's cost.
pub const DEFAULT_FLEET: &[&str] = &[
    "javalib-lang",
    "javalib-android",
    "synth-small",
    "synth-aliasing",
];

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            libraries: DEFAULT_FLEET.iter().map(|s| s.to_string()).collect(),
            samples: config::sample_budget(),
            threads: config::thread_budget(),
            store_root: None,
            synth_seed: 0x5EED,
            trace: false,
        }
    }
}

impl FleetConfig {
    /// Reads the configuration from the environment (`ATLAS_SAMPLES`,
    /// `ATLAS_THREADS`, `ATLAS_FLEET_STORE`, `ATLAS_FLEET_SEED`,
    /// `ATLAS_FLEET_LIBS`).
    pub fn from_env() -> FleetConfig {
        let libraries = config::fleet_libraries()
            .unwrap_or_else(|| DEFAULT_FLEET.iter().map(|s| s.to_string()).collect());
        FleetConfig {
            libraries,
            store_root: config::fleet_store_root(),
            synth_seed: config::fleet_seed(),
            trace: config::trace_enabled(),
            ..FleetConfig::default()
        }
    }

    /// A small configuration suitable for tests.
    pub fn small() -> FleetConfig {
        FleetConfig {
            libraries: vec![
                "javalib-lang".to_string(),
                "synth-small".to_string(),
                "synth-aliasing".to_string(),
            ],
            samples: 250,
            threads: 2,
            store_root: None,
            synth_seed: 0x5EED,
            trace: false,
        }
    }
}

/// The outcome of a fleet run: the JSON document plus a human summary.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The machine-readable report (schema `atlas-fleet/1`).
    pub json: Json,
    /// A short human-readable summary (one line per library).
    pub summary: String,
    /// The run's observability session (span events when
    /// [`FleetConfig::trace`] was set) — feed it to
    /// [`atlas_obs::write_chrome_trace`] for the `--trace-out` sink.
    pub recorder: Recorder,
}

/// What one worker produced for one library.
struct LibraryRun {
    name: String,
    fingerprint: u64,
    outcome: InferenceOutcome,
    interface_methods: usize,
    num_classes: usize,
    wall_time: Duration,
    // Store leg (None without a store root).
    shard_dir: Option<PathBuf>,
    loaded_entries: usize,
    warm_started: bool,
    persisted: Option<PersistSummary>,
    specs_identical: Json,
    // Scoring.
    precision: f64,
    recall: f64,
    exact: usize,
    reference_methods: usize,
    inferred_methods: usize,
    num_specs: usize,
}

use atlas_store::hex64_string as hex;

/// Runs the full inference pipeline for one library: warm-start from its
/// shard, infer, persist back, byte-compare the spec export, score against
/// ground truth.
fn run_library(
    lib: &FleetLibrary,
    fleet: &FleetConfig,
    inner_threads: usize,
    recorder: &Recorder,
    index: usize,
) -> Result<LibraryRun, FleetError> {
    let interface = LibraryInterface::from_program(&lib.program);
    let atlas_config = AtlasConfig {
        samples_per_cluster: fleet.samples,
        clusters: lib.clusters.clone(),
        num_threads: inner_threads,
        engine: crate::config::oracle_engine(),
        ..AtlasConfig::default()
    };
    // Library `i` records on lane stripe `i * 4096`: stripes are keyed by
    // the *configuration order*, not the worker that happened to run the
    // library, so the exported event stream is schedule-independent.
    let mut engine = Engine::new(&lib.program, &interface, atlas_config)
        .with_recorder(recorder.with_lane_base(index as u64 * 4096));
    let fingerprint = engine.provenance().fingerprint;
    let shard = fleet
        .store_root
        .as_ref()
        .map(|root| atlas_store::shard_entry(root, fingerprint));

    let mut loaded_entries = 0usize;
    let mut warm_started = false;
    if let Some(shard) = &shard {
        if let Some((entries, cache)) = crate::storeleg::reload_cache(&shard.cache)? {
            loaded_entries = entries;
            engine = engine.warm_start(cache);
            warm_started = true;
        }
    }

    let wall = Instant::now();
    let mut session = engine.session();
    let outcome = session.run();
    let wall_time = wall.elapsed();

    let mut persisted = None;
    let mut specs_identical = Json::Null;
    let num_specs;
    if let Some(shard) = &shard {
        persisted = Some(session.persist(&shard.cache)?);
        let export = crate::storeleg::export_specs(
            &lib.program,
            &interface,
            &outcome,
            &shard.specs,
            warm_started,
        )?;
        specs_identical = export.identical;
        num_specs = export.num_specs;
    } else {
        num_specs = outcome.specs(SPEC_MAX_LEN, SPEC_LIMIT).len();
    }

    // Score the inferred fragments against the ground truth of the classes
    // the clusters actually cover (the corpus may describe more).
    let cluster_classes: BTreeSet<ClassId> = lib.clusters.iter().flatten().copied().collect();
    let reference: BTreeMap<MethodId, Vec<Stmt>> = lib
        .ground_truth
        .iter()
        .filter(|(m, _)| cluster_classes.contains(&lib.program.method(**m).class()))
        .map(|(m, body)| (*m, body.clone()))
        .collect();
    let comparison = compare_fragments(&lib.program, &outcome.fragments(&lib.program), &reference);

    Ok(LibraryRun {
        name: lib.name.clone(),
        fingerprint,
        interface_methods: interface.num_methods(),
        num_classes: lib.program.num_classes(),
        wall_time,
        shard_dir: shard.map(|s| s.dir),
        loaded_entries,
        warm_started,
        persisted,
        specs_identical,
        precision: comparison.precision(),
        recall: comparison.recall(),
        exact: comparison.exact_matches(),
        reference_methods: comparison.reference_methods(),
        inferred_methods: comparison.inferred_methods(),
        num_specs,
        outcome,
    })
}

/// Runs the full fleet pipeline.  See the [module docs](self).
///
/// # Errors
/// Returns [`FleetError`] on an unknown library name, an empty selection,
/// or a store failure (positioned, human-readable — the `fleet` binary
/// exits nonzero instead of panicking).
pub fn run_fleet(fleet: &FleetConfig) -> Result<FleetReport, FleetError> {
    let recorder = if fleet.trace {
        Recorder::tracing()
    } else {
        Recorder::metrics()
    };
    let total_wall = Instant::now();
    // Deduplicate while preserving order: duplicate members would race on
    // the same store shard and say nothing new.
    let mut names: Vec<&str> = Vec::new();
    for name in &fleet.libraries {
        if !names.contains(&name.as_str()) {
            names.push(name);
        }
    }
    if names.is_empty() {
        return Err(FleetError::EmptyFleet);
    }
    let libraries: Vec<FleetLibrary> = names
        .iter()
        .map(|name| build_library(name, fleet.synth_seed))
        .collect::<Result<_, _>>()?;

    let budget = ThreadBudget::resolve(fleet.threads);
    let split = budget.split(libraries.len());

    // The outer work-stealing scheduler: a lock-free cursor hands library
    // indices to workers; results land in per-library slots, so the report
    // order is the configuration order regardless of scheduling.
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Result<LibraryRun, FleetError>>>> =
        Mutex::new((0..libraries.len()).map(|_| None).collect());
    if split.outer <= 1 {
        // Inline fast path: identical pipeline, no thread spawn.
        for (i, lib) in libraries.iter().enumerate() {
            let run = run_library(lib, fleet, split.inner, &recorder, i);
            slots.lock().expect("slot lock poisoned")[i] = Some(run);
        }
    } else {
        std::thread::scope(|scope| {
            for _ in 0..split.outer {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(lib) = libraries.get(i) else { break };
                    let run = run_library(lib, fleet, split.inner, &recorder, i);
                    slots.lock().expect("slot lock poisoned")[i] = Some(run);
                });
            }
        });
    }
    let runs: Vec<LibraryRun> = slots
        .into_inner()
        .expect("slot lock poisoned")
        .into_iter()
        .map(|slot| slot.expect("every library was scheduled"))
        .collect::<Result<_, _>>()?;
    let wall_time = total_wall.elapsed();

    // Assemble the report.
    let mut rows = Vec::new();
    let mut summary = String::new();
    let mut total_queries = 0usize;
    let mut total_executions = 0usize;
    let mut total_warm_hits = 0usize;
    let mut total_positives = 0usize;
    let mut total_specs = 0usize;
    let mut cpu_time = Duration::ZERO;
    for run in &runs {
        let stats = run.outcome.cache_stats;
        total_queries += run.outcome.oracle_queries;
        total_executions += run.outcome.oracle_executions;
        total_warm_hits += stats.warm_hits;
        total_positives += run.outcome.total_positive_examples();
        total_specs += run.num_specs;
        cpu_time += run.outcome.phase1_time + run.outcome.phase2_time;
        let store_json = match &run.shard_dir {
            None => Json::Null,
            Some(dir) => {
                let persisted = run.persisted.as_ref().expect("persisted with a store");
                Json::obj()
                    .set("shard", dir.display().to_string())
                    .set("warm_started_from_disk", run.warm_started)
                    .set("loaded_entries", run.loaded_entries)
                    .set("reload_hit_rate", stats.warm_hit_rate())
                    .set("persisted_entries", persisted.total_entries)
                    .set("new_entries", persisted.new_entries)
                    .set("specs_identical", run.specs_identical.clone())
            }
        };
        rows.push(
            Json::obj()
                .set("name", run.name.as_str())
                .set("library_fingerprint", hex(run.fingerprint))
                .set("classes", run.num_classes)
                .set("interface_methods", run.interface_methods)
                .set("clusters", run.outcome.clusters.len())
                .set("positive_examples", run.outcome.total_positive_examples())
                .set("oracle_queries", run.outcome.oracle_queries)
                .set("executions", run.outcome.oracle_executions)
                .set(
                    "cache",
                    Json::obj()
                        .set("lookups", stats.lookups)
                        .set("hits", stats.hits)
                        .set("warm_hits", stats.warm_hits)
                        .set("misses", stats.misses)
                        .set("hit_rate", stats.hit_rate())
                        .set("warm_hit_rate", stats.warm_hit_rate()),
                )
                .set("store", store_json)
                .set(
                    "specs",
                    Json::obj()
                        .set("extracted", run.num_specs)
                        .set("inferred_methods", run.inferred_methods)
                        .set("reference_methods", run.reference_methods)
                        .set("exact", run.exact)
                        .set("precision", run.precision)
                        .set("recall", run.recall),
                )
                .set(
                    "timings",
                    Json::obj()
                        .set("wall_ms", run.wall_time.as_secs_f64() * 1e3)
                        .set("phase1_ms", run.outcome.phase1_time.as_secs_f64() * 1e3)
                        .set("phase2_ms", run.outcome.phase2_time.as_secs_f64() * 1e3),
                ),
        );
        let _ = writeln!(
            summary,
            "{:>18}: {} clusters, {} positives, {} specs, precision {:.2}, recall {:.2}, \
             {} executions{} in {:.2?}",
            run.name,
            run.outcome.clusters.len(),
            run.outcome.total_positive_examples(),
            run.num_specs,
            run.precision,
            run.recall,
            run.outcome.oracle_executions,
            if run.warm_started {
                format!(" (warm, {} reloaded)", run.loaded_entries)
            } else {
                String::new()
            },
            run.wall_time,
        );
    }

    // Efficiency is measured against the workers actually granted
    // (`outer × inner`), which the split maximizes within the budget.
    let granted = (split.outer * split.inner) as f64;
    let efficiency = if wall_time.is_zero() {
        1.0
    } else {
        cpu_time.as_secs_f64() / wall_time.as_secs_f64() / granted
    };
    let json = Json::obj()
        .set("schema", "atlas-fleet/1")
        .set(
            "config",
            Json::obj()
                .set("samples_per_cluster", fleet.samples)
                .set("thread_budget", budget.total())
                .set("outer_workers", split.outer)
                .set("threads_per_library", split.inner)
                .set("synth_seed", fleet.synth_seed as i64)
                .set(
                    "store_root",
                    match &fleet.store_root {
                        Some(root) => Json::str(root.display().to_string()),
                        None => Json::Null,
                    },
                )
                .set(
                    "libraries",
                    names.iter().map(|n| Json::str(*n)).collect::<Vec<Json>>(),
                ),
        )
        .set("libraries", Json::Arr(rows))
        .set(
            "totals",
            Json::obj()
                .set("libraries", runs.len())
                .set("oracle_queries", total_queries)
                .set("executions", total_executions)
                .set("warm_hits", total_warm_hits)
                .set("positive_examples", total_positives)
                .set("specs", total_specs),
        )
        .set(
            "parallelism",
            Json::obj()
                .set("thread_budget", budget.total())
                .set("outer_workers", split.outer)
                .set("threads_per_library", split.inner)
                .set("wall_ms", wall_time.as_secs_f64() * 1e3)
                .set("cpu_ms", cpu_time.as_secs_f64() * 1e3)
                .set("efficiency", efficiency),
        )
        .set("metrics", atlas_obs::metrics_snapshot(&recorder));
    let _ = writeln!(
        summary,
        "fleet: {} libraries, {} workers x {} threads (budget {}), {:.2?} wall / {:.2?} cpu \
         ({:.0}% efficiency)",
        runs.len(),
        split.outer,
        split.inner,
        budget.total(),
        wall_time,
        cpu_time,
        100.0 * efficiency,
    );

    Ok(FleetReport {
        json,
        summary,
        recorder,
    })
}

/// Strips the timing-derived fields from a report: object keys ending in
/// `_ms`, `speedup` and `efficiency`, plus the whole `metrics` section
/// (its histograms are wall-clock nanoseconds).  Everything that remains
/// is a pure function of the configuration and the store state, so two
/// same-seed fleet runs render byte-identically after normalization — the
/// determinism invariant CI asserts.
pub fn normalized(json: &Json) -> Json {
    fn is_timing_key(key: &str) -> bool {
        key.ends_with("_ms") || key == "speedup" || key == "efficiency" || key == "metrics"
    }
    match json {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .filter(|(k, _)| !is_timing_key(k))
                .map(|(k, v)| (k.clone(), normalized(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(normalized).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_knows_all_names_and_rejects_strangers() {
        let names = registry_names();
        assert!(names.len() >= 7, "{names:?}");
        for name in &names {
            let lib = build_library(name, 7).expect(name);
            assert!(!lib.clusters.is_empty(), "{name} has no clusters");
            assert!(!lib.ground_truth.is_empty(), "{name} has no ground truth");
        }
        assert!(matches!(
            build_library("no-such-library", 7),
            Err(FleetError::UnknownLibrary(_))
        ));
        let message = FleetError::UnknownLibrary("x".to_string()).to_string();
        assert!(message.contains("synth-small"), "{message}");
        assert!(
            run_fleet(&FleetConfig {
                libraries: vec![],
                ..FleetConfig::small()
            })
            .is_err(),
            "empty fleets are a configuration error"
        );
    }

    #[test]
    fn normalization_strips_exactly_the_timing_fields() {
        let doc = Json::obj()
            .set("wall_ms", 1.5)
            .set("efficiency", 0.7)
            .set("speedup", 2.0)
            .set("metrics", Json::obj().set("counters", Json::obj()))
            .set(
                "nested",
                Json::Arr(vec![Json::obj().set("phase1_ms", 3.0).set("keep", 1usize)]),
            )
            .set("keep", "x");
        let norm = normalized(&doc);
        assert_eq!(
            norm,
            Json::obj()
                .set("nested", Json::Arr(vec![Json::obj().set("keep", 1usize)]))
                .set("keep", "x")
        );
    }
}
