//! One function per table/figure of the paper's evaluation.  Each returns a
//! printable report; the binaries in `src/bin/` just call these.

use crate::context::{EvalContext, SpecSet};
use atlas_core::compare_fragments;
use atlas_ir::LibraryInterface;
use atlas_javalib::{class_ids, ground_truth_specs, handwritten_specs, COLLECTION_CLASSES};
use atlas_learn::{
    sample_positive_examples, Oracle, OracleConfig, SamplerConfig, SamplingStrategy,
};
use atlas_pointsto::result::RatioSeries;
use atlas_spec::CodeFragments;
use atlas_synth::InitStrategy;
use std::fmt::Write as _;

/// Figure 8: Jimple lines of code of the benchmark apps.
pub fn fig8_app_sizes(ctx: &EvalContext) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Figure 8 — benchmark app sizes (client Jimple LoC)");
    let mut sizes: Vec<(String, usize)> = ctx
        .apps
        .iter()
        .map(|a| (a.name.clone(), a.client_loc))
        .collect();
    sizes.sort_by_key(|(_, loc)| std::cmp::Reverse(*loc));
    for (name, loc) in &sizes {
        let _ = writeln!(out, "{name:>8}  {loc:>8}");
    }
    let total: usize = sizes.iter().map(|(_, l)| l).sum();
    let _ = writeln!(
        out,
        "apps: {}  min: {}  max: {}  total: {}",
        sizes.len(),
        sizes.iter().map(|(_, l)| *l).min().unwrap_or(0),
        sizes.iter().map(|(_, l)| *l).max().unwrap_or(0),
        total
    );
    out
}

/// Section 6.1 coverage table: inferred specifications versus the
/// handwritten corpus (coverage ratio, fraction of handwritten recovered,
/// automaton sizes, phase timings).
pub fn tab_coverage(ctx: &EvalContext) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# §6.1 — inferred vs handwritten specifications");
    let inferred = ctx.inferred_fragments(&ctx.library);
    let handwritten = handwritten_specs(&ctx.library);
    let cmp = compare_fragments(&ctx.library, &inferred, &handwritten);
    let inferred_methods = inferred.num_methods();
    let handwritten_methods = handwritten.len();
    let recovered = cmp
        .per_method
        .iter()
        .filter(|m| m.reference_stmts > 0 && m.matched > 0)
        .count();
    let (before, after) = ctx.outcome.state_counts();
    let _ = writeln!(
        out,
        "methods with inferred specifications : {inferred_methods}"
    );
    let _ = writeln!(
        out,
        "methods with handwritten specifications: {handwritten_methods}"
    );
    let _ = writeln!(
        out,
        "coverage ratio (inferred / handwritten): {:.2}x",
        inferred_methods as f64 / handwritten_methods.max(1) as f64
    );
    let _ = writeln!(
        out,
        "handwritten methods recovered by Atlas : {recovered} ({:.0}%)",
        100.0 * recovered as f64 / handwritten_methods.max(1) as f64
    );
    let _ = writeln!(
        out,
        "statement-level recall vs handwritten  : {:.2}",
        cmp.recall()
    );
    let _ = writeln!(
        out,
        "statement-level precision vs handwritten: {:.2}",
        cmp.precision()
    );
    let _ = writeln!(
        out,
        "phase 1: {} samples, {} positive examples, {:.1}s",
        ctx.outcome
            .clusters
            .iter()
            .map(|c| c.num_samples)
            .sum::<usize>(),
        ctx.outcome.total_positive_examples(),
        ctx.outcome.phase1_time.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "phase 2: {} -> {} automaton states, {:.1}s",
        before,
        after,
        ctx.outcome.phase2_time.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "oracle: {} queries, {} unit tests executed",
        ctx.outcome.oracle_queries, ctx.outcome.oracle_executions
    );
    out
}

/// Figure 9(a): ratio of information flows found with Atlas specifications
/// versus the handwritten specifications, per app.
pub fn fig9a_flows(ctx: &EvalContext) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Figure 9(a) — flows: Atlas vs handwritten specifications"
    );
    let mut series = RatioSeries::new();
    let mut total_atlas = 0usize;
    let mut total_hand = 0usize;
    let mut rows = Vec::new();
    for app in &ctx.apps {
        let atlas = ctx.analyze(app, SpecSet::Inferred).flows.len();
        let hand = ctx.analyze(app, SpecSet::Handwritten).flows.len();
        total_atlas += atlas;
        total_hand += hand;
        let ratio = if hand == 0 {
            if atlas == 0 {
                1.0
            } else {
                atlas as f64
            }
        } else {
            atlas as f64 / hand as f64
        };
        series.push(ratio);
        rows.push((app.name.clone(), atlas, hand, ratio));
    }
    rows.sort_by(|a, b| b.3.partial_cmp(&a.3).unwrap_or(std::cmp::Ordering::Equal));
    let _ = writeln!(
        out,
        "{:>8} {:>7} {:>7} {:>7}",
        "app", "atlas", "hand", "ratio"
    );
    for (name, atlas, hand, ratio) in &rows {
        let _ = writeln!(out, "{name:>8} {atlas:>7} {hand:>7} {ratio:>7.2}");
    }
    let improvement = if total_hand == 0 {
        0.0
    } else {
        100.0 * (total_atlas as f64 - total_hand as f64) / total_hand as f64
    };
    let _ = writeln!(
        out,
        "total flows: atlas={total_atlas} handwritten={total_hand} (+{improvement:.0}%)  mean ratio={:.2} median={:.2}",
        series.mean(),
        series.median()
    );
    out
}

/// Figure 9(b): ratio of non-trivial points-to edges with Atlas
/// specifications versus ground truth, per app (a recall measure).
pub fn fig9b_recall(ctx: &EvalContext) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Figure 9(b) — points-to edges: Atlas vs ground truth"
    );
    let mut series = RatioSeries::new();
    let mut rows = Vec::new();
    for app in &ctx.apps {
        let trivial = ctx.analyze(app, SpecSet::Empty);
        let atlas = ctx
            .analyze(app, SpecSet::Inferred)
            .stats
            .nontrivial(&trivial.stats);
        let truth = ctx
            .analyze(app, SpecSet::GroundTruth)
            .stats
            .nontrivial(&trivial.stats);
        let ratio = if truth == 0 {
            1.0
        } else {
            atlas as f64 / truth as f64
        };
        series.push(ratio);
        rows.push((app.name.clone(), atlas, truth, ratio));
    }
    rows.sort_by(|a, b| b.3.partial_cmp(&a.3).unwrap_or(std::cmp::Ordering::Equal));
    let _ = writeln!(
        out,
        "{:>8} {:>7} {:>7} {:>7}",
        "app", "atlas", "truth", "ratio"
    );
    for (name, atlas, truth, ratio) in &rows {
        let _ = writeln!(out, "{name:>8} {atlas:>7} {truth:>7} {ratio:>7.2}");
    }
    let _ = writeln!(
        out,
        "mean recall: {:.3}  median recall: {:.3}  apps at 1.0: {:.0}%",
        series.mean(),
        series.median(),
        100.0 * series.fraction_at_least(0.999)
    );
    out
}

/// Figure 9(c): ratio of non-trivial points-to edges when analyzing the
/// library implementation versus ground-truth specifications, per app
/// (values above 1 are false positives caused by the implementation's deep
/// call chains; values below 1 are false negatives from native code).
pub fn fig9c_impl_fp(ctx: &EvalContext) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Figure 9(c) — points-to edges: implementation vs ground truth"
    );
    let mut series = RatioSeries::new();
    let mut rows = Vec::new();
    for app in &ctx.apps {
        let trivial = ctx.analyze(app, SpecSet::Empty);
        let impl_edges = ctx
            .analyze(app, SpecSet::Implementation)
            .stats
            .nontrivial(&trivial.stats);
        let truth = ctx
            .analyze(app, SpecSet::GroundTruth)
            .stats
            .nontrivial(&trivial.stats);
        let ratio = if truth == 0 {
            1.0
        } else {
            impl_edges as f64 / truth as f64
        };
        series.push(ratio);
        rows.push((app.name.clone(), impl_edges, truth, ratio));
    }
    rows.sort_by(|a, b| b.3.partial_cmp(&a.3).unwrap_or(std::cmp::Ordering::Equal));
    let _ = writeln!(
        out,
        "{:>8} {:>7} {:>7} {:>7}",
        "app", "impl", "truth", "ratio"
    );
    for (name, impl_edges, truth, ratio) in &rows {
        let _ = writeln!(out, "{name:>8} {impl_edges:>7} {truth:>7} {ratio:>7.2}");
    }
    let _ = writeln!(
        out,
        "mean ratio: {:.2}  median: {:.2}  apps with ratio >= 2: {:.0}%  average false-positive rate: {:.0}%",
        series.mean(),
        series.median(),
        100.0 * series.fraction_at_least(2.0),
        100.0 * (series.mean() - 1.0).max(0.0)
    );
    out
}

/// Section 6.2: precision/recall of the inferred specifications against the
/// ground-truth corpus, over the collection-class methods that the benchmark
/// apps actually call (the paper's "most frequently called functions").
pub fn tab_ground_truth(ctx: &EvalContext) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# §6.2 — inferred specifications vs ground truth (Collections API)"
    );
    let inferred = ctx.inferred_fragments(&ctx.library);
    let truth = ground_truth_specs(&ctx.library);
    // Restrict the reference to collection-class methods called by the apps.
    let collection_ids = class_ids(&ctx.library, COLLECTION_CLASSES);
    let called = called_library_methods(ctx);
    let truth_collections: std::collections::BTreeMap<_, _> = truth
        .into_iter()
        .filter(|(m, _)| {
            collection_ids.contains(&ctx.library.method(*m).class())
                && called.contains(&ctx.library.qualified_name(*m))
        })
        .collect();
    let cmp = compare_fragments(&ctx.library, &inferred, &truth_collections);
    let exact = cmp.exact_matches();
    let covered = cmp.reference_methods();
    let _ = writeln!(out, "ground-truth methods (collections)     : {covered}");
    let _ = writeln!(
        out,
        "inferred exactly (ground-truth recall) : {exact} ({:.0}%)",
        100.0 * exact as f64 / covered.max(1) as f64
    );
    let _ = writeln!(
        out,
        "statement-level recall                 : {:.2}",
        cmp.recall()
    );
    let _ = writeln!(
        out,
        "statement-level precision              : {:.2}",
        cmp.precision()
    );
    // List the misses for inspection (the paper discusses subList/set).
    let mut misses: Vec<&str> = cmp
        .per_method
        .iter()
        .filter(|m| m.reference_stmts > 0 && m.matched < m.reference_stmts)
        .map(|m| m.name.as_str())
        .collect();
    misses.sort();
    let _ = writeln!(
        out,
        "methods not fully recovered            : {}",
        misses.join(", ")
    );
    out
}

/// Section 6.3, first comparison: random sampling versus MCTS with equal
/// budgets.
pub fn tab_sampling(
    library: &atlas_ir::Program,
    interface: &LibraryInterface,
    samples: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# §6.3 — positive examples: random sampling vs MCTS ({samples} samples)"
    );
    let collections = class_ids(library, COLLECTION_CLASSES);
    let restricted = interface.restrict_to_classes(&collections);
    for (name, strategy) in [
        ("random", SamplingStrategy::Random),
        ("mcts", SamplingStrategy::Mcts),
    ] {
        let mut oracle = Oracle::new(library, interface, OracleConfig::default());
        let result = sample_positive_examples(
            &restricted,
            &mut oracle,
            strategy,
            samples,
            &SamplerConfig::default(),
        );
        let _ = writeln!(
            out,
            "{name:>7}: {} positive samples, {} distinct positive examples ({:.2}% positive rate)",
            result.num_positive_samples,
            result.positives.len(),
            100.0 * result.positive_rate()
        );
    }
    out
}

/// Section 6.3, second comparison: null versus instantiation initialization.
/// Re-checks every positive example found by the main inference run (which
/// uses instantiation) with unit tests whose unconstrained references are
/// initialized to `null` instead.
pub fn tab_init(ctx: &EvalContext) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# §6.3 — object initialization: null vs instantiation");
    let mut null_oracle = Oracle::new(
        &ctx.library,
        &ctx.interface,
        OracleConfig {
            strategy: InitStrategy::Null,
            ..OracleConfig::default()
        },
    );
    let mut total = 0usize;
    let mut with_null = 0usize;
    for cluster in &ctx.outcome.clusters {
        for spec in &cluster.positives {
            total += 1;
            if null_oracle.check(spec) {
                with_null += 1;
            }
        }
    }
    let _ = writeln!(out, "positive examples with instantiation : {total}");
    let _ = writeln!(out, "of those, still positive under null  : {with_null}");
    if with_null > 0 {
        let _ = writeln!(
            out,
            "instantiation finds {:.0}% more specifications",
            100.0 * (total as f64 - with_null as f64) / with_null as f64
        );
    }
    out
}

/// The set of library methods (by qualified name) called directly by the
/// client code of the benchmark apps — the reproduction's analogue of the
/// paper's "most frequently called functions".
fn called_library_methods(ctx: &EvalContext) -> std::collections::BTreeSet<String> {
    let mut called = std::collections::BTreeSet::new();
    for app in &ctx.apps {
        let program = &app.program;
        for method in program.methods() {
            if program.class(method.class()).is_library() {
                continue;
            }
            atlas_ir::stmt::visit_block(method.body(), &mut |stmt| {
                if let atlas_ir::Stmt::Call { method: target, .. } = stmt {
                    called.insert(program.qualified_name(*target));
                }
            });
        }
    }
    called
}

/// A short report on the inferred fragments themselves (useful context in
/// EXPERIMENTS.md).
pub fn inferred_summary(ctx: &EvalContext) -> String {
    let mut out = String::new();
    let inferred: CodeFragments = ctx.inferred_fragments(&ctx.library);
    let _ = writeln!(out, "# Inferred specification summary");
    let _ = writeln!(out, "methods covered: {}", inferred.num_methods());
    let _ = writeln!(out, "fragment statements: {}", inferred.num_statements());
    let specs = ctx.outcome.specs(8, 16);
    let _ = writeln!(out, "sample of inferred path specifications:");
    for spec in specs.iter().take(12) {
        let _ = writeln!(out, "  {}", spec.display(&ctx.interface));
    }
    out
}

/// Runs every experiment and concatenates the reports.
pub fn run_all(samples: usize, num_apps: usize) -> String {
    let ctx = EvalContext::build(samples, num_apps);
    let mut out = String::new();
    out.push_str(&fig8_app_sizes(&ctx));
    out.push('\n');
    out.push_str(&tab_coverage(&ctx));
    out.push('\n');
    out.push_str(&fig9a_flows(&ctx));
    out.push('\n');
    out.push_str(&fig9b_recall(&ctx));
    out.push('\n');
    out.push_str(&fig9c_impl_fp(&ctx));
    out.push('\n');
    out.push_str(&tab_ground_truth(&ctx));
    out.push('\n');
    out.push_str(&tab_sampling(&ctx.library, &ctx.interface, samples));
    out.push('\n');
    out.push_str(&tab_init(&ctx));
    out.push('\n');
    out.push_str(&inferred_summary(&ctx));
    out
}
