//! The resident-service leg: replay a long mutation-generator edit stream
//! against a warm `atlas-serve` daemon and measure what a resident engine
//! buys over batch re-analysis — then prove it changed nothing.
//!
//! One [`run_serve_bench`] call:
//!
//! 1. spawns an in-process [`atlas_serve::Service`] (the same daemon the
//!    `serve` binary runs behind stdio/socket frames) over a closure-sharded
//!    store root; startup seeds the store cold or splices it warm;
//! 2. streams `edits` deterministic mutations through the daemon, cycling
//!    the generator kinds (`body-edit` / `rename-local` / `add-method` /
//!    `signature-change`) with per-edit seeds, measuring client-side
//!    latency per request; ineligible edits come back as structured
//!    `bad-edit` errors and are skipped — identically — on both sides;
//! 3. replays the *accepted* edits locally to reconstruct the final
//!    library content, runs a cold batch `Engine` over it, and
//!    byte-compares the daemon's final `specs` artifact against the cold
//!    baseline — the service-equivalence invariant;
//! 4. emits an `atlas-serve/1` JSON report: throughput, p50/p99/max
//!    latency, cumulative re-execution counts, shard-cache counters, and
//!    the equivalence verdict.
//!
//! [`run_serve_multi_bench`] is the `atlas-serve/2` variant: it opens
//! `sessions` named sessions on one daemon and drives each from its own
//! client thread with its own deterministic stream, so the worker pool
//! runs edits from different sessions concurrently.  Every session gets
//! the full per-stream treatment — lock-step local replay, then a cold
//! batch baseline byte-compared against *that session's* final `specs`
//! artifact — which makes the report a cross-session isolation check as
//! well as a concurrency benchmark.  Throughput is aggregate: all
//! accepted edits over the wall-clock of the parallel replay.
//!
//! The `serve_bench` binary adds `--expect-throughput N`, which turns the
//! contract into an exit code for CI: the final artifact(s) must be
//! byte-identical to the cold baseline(s) and the edit stream must sustain
//! at least `N` edits per second.

use crate::config::{env_parse, sample_budget, thread_budget, trace_enabled};
use crate::fleet::FleetError;
use crate::json::Json;
use atlas_apps::{mutate_library, MutationConfig};
use atlas_core::{AtlasConfig, Engine, ThreadBudget};
use atlas_ir::hash::library_fingerprint;
use atlas_ir::{ClassId, LibraryInterface, MutationKind, Program};
use atlas_obs::{Histogram, Recorder};
use atlas_serve::{Envelope, Request, ServeConfig, ServeError, ServeHandle, Service, EXTRACTION};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Configuration of a service-replay run.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// The daemon configuration: library under service, budgets, store
    /// root, worker/session/shard/queue/flush knobs (`ATLAS_SERVE_*`).
    pub serve: ServeConfig,
    /// Length of the edit stream (`ATLAS_SERVE_EDITS`).  In the
    /// multi-session leg this is the *per-session* stream length.
    pub edits: usize,
    /// Concurrent sessions for [`run_serve_multi_bench`]
    /// (`ATLAS_SERVE_SESSIONS`, default 1 — the single-session leg).
    pub sessions: usize,
    /// Base mutation seed; edit `i` of session `s` uses
    /// `seed + (s << 20) + i`.
    pub seed: u64,
}

impl ServeBenchConfig {
    /// Reads the configuration from the environment: the `ATLAS_SERVE_*`
    /// family (see `atlas_serve::config`) plus the shared
    /// `ATLAS_SAMPLES`/`ATLAS_THREADS` budgets, `ATLAS_SERVE_EDITS`
    /// for the stream length (default 1000), and `ATLAS_SERVE_SESSIONS`
    /// for the multi-session leg's width (default 1).
    pub fn from_env() -> ServeBenchConfig {
        let mut serve = ServeConfig::from_env();
        serve.samples = sample_budget();
        serve.threads = thread_budget();
        serve.trace = trace_enabled();
        ServeBenchConfig {
            serve,
            edits: env_parse("ATLAS_SERVE_EDITS").unwrap_or(1_000),
            sessions: env_parse("ATLAS_SERVE_SESSIONS").unwrap_or(1),
            seed: 0xA77A5,
        }
    }

    /// A small configuration suitable for tests.
    pub fn small(store: PathBuf) -> ServeBenchConfig {
        ServeBenchConfig {
            serve: ServeConfig::small(store),
            edits: 24,
            sessions: 1,
            seed: 7,
        }
    }
}

/// The outcome of a service-replay run: the JSON document plus a human
/// summary.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// The machine-readable report (schema `atlas-serve/1`, or
    /// `atlas-serve/2` from the multi-session leg).
    pub json: Json,
    /// A short human-readable summary.
    pub summary: String,
    /// The daemon's observability session (metrics always, span events
    /// when the config traced) — feed it to
    /// [`atlas_obs::write_chrome_trace`] for the `--trace-out` sink.
    pub recorder: Recorder,
}

impl From<ServeError> for FleetError {
    fn from(e: ServeError) -> FleetError {
        match e {
            ServeError::Registry(e) => e.into(),
            ServeError::Store(e) => FleetError::Store(e),
        }
    }
}

/// The generator rotation of the edit stream.
const EDIT_KINDS: [MutationKind; 4] = [
    MutationKind::BodyEdit,
    MutationKind::RenameLocal,
    MutationKind::AddMethod,
    MutationKind::SignatureChange,
];

/// Nanoseconds to milliseconds, for report fields.
fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// What one client-side stream replay accumulated: the reconstructed
/// library content plus the request-level counters.
struct StreamReplay {
    program: Program,
    latency: Histogram,
    accepted: usize,
    rejected: usize,
    oracle_executions: i64,
    spliced_verdicts: i64,
}

/// Streams `edits` deterministic mutations into one session (`None` =
/// the default session, plain `atlas-serve/1` frames), mirroring every
/// accepted edit on a local copy of the library.  Lock-step invariant: an
/// accepted edit must be locally applicable, a rejected one locally
/// ineligible — the daemon's stream and the client's never diverge.
fn replay_stream(
    handle: &ServeHandle,
    session: Option<&str>,
    mut program: Program,
    edits: usize,
    seed: u64,
) -> Result<StreamReplay, String> {
    let mut latency = Histogram::new();
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut oracle_executions = 0i64;
    let mut spliced_verdicts = 0i64;
    for i in 0..edits {
        let mutation = MutationConfig {
            kind: EDIT_KINDS[i % EDIT_KINDS.len()],
            seed: seed + i as u64,
            target: None,
        };
        let mut request = Envelope::with_id(
            i as i64,
            Request::Edit(atlas_serve::EditRequest {
                kind: mutation.kind,
                seed: mutation.seed,
                target: None,
            }),
        );
        if let Some(name) = session {
            request = request.in_session(name);
        }
        let t_edit = Instant::now();
        let response = handle.request(request);
        latency.record(u64::try_from(t_edit.elapsed().as_nanos()).unwrap_or(u64::MAX));
        let local = mutate_library(&program, &mutation);
        match (&response.outcome, local) {
            (Ok(result), Ok(mutated)) => {
                program = mutated.program;
                accepted += 1;
                let executions = result.get("executions").unwrap_or(&Json::Null);
                oracle_executions += executions.get("oracle").and_then(Json::as_int).unwrap_or(0);
                spliced_verdicts += executions
                    .get("spliced_verdicts")
                    .and_then(Json::as_int)
                    .unwrap_or(0);
            }
            (Err(error), Err(_)) => {
                rejected += 1;
                if error.code != atlas_serve::ErrorCode::BadEdit {
                    return Err(format!(
                        "edit {i} failed outside the protocol: {}",
                        error.message
                    ));
                }
            }
            (Ok(_), Err(e)) => {
                return Err(format!(
                    "edit {i} accepted by the daemon but locally ineligible: {e}"
                ));
            }
            (Err(error), Ok(_)) => {
                return Err(format!(
                    "edit {i} locally eligible but rejected by the daemon: {}",
                    error.message
                ));
            }
        }
    }
    Ok(StreamReplay {
        program,
        latency,
        accepted,
        rejected,
        oracle_executions,
        spliced_verdicts,
    })
}

/// The cold batch baseline over one replayed final content — the other
/// side of the service-equivalence invariant.
struct ColdBaseline {
    artifact: String,
    fingerprint: String,
    oracle_executions: usize,
    elapsed: Duration,
}

/// Runs a cold batch `Engine` over `program` under the serve budgets and
/// renders the specs artifact the daemon should have produced.
fn cold_baseline(
    program: &Program,
    clusters: &[Vec<ClassId>],
    serve: &ServeConfig,
) -> Result<ColdBaseline, FleetError> {
    let interface = LibraryInterface::from_program(program);
    let atlas_config = AtlasConfig {
        samples_per_cluster: serve.samples,
        clusters: clusters.to_vec(),
        num_threads: ThreadBudget::resolve(serve.threads).total(),
        ..AtlasConfig::default()
    };
    let t = Instant::now();
    let outcome = Engine::new(program, &interface, atlas_config).run();
    let elapsed = t.elapsed();
    let artifact = outcome
        .spec_artifact(program, &interface, EXTRACTION.0, EXTRACTION.1)
        .encode(program)
        .map_err(|e| atlas_core::StoreError::schema(&serve.store, e))?
        .render();
    Ok(ColdBaseline {
        artifact,
        fingerprint: atlas_store::hex64_string(library_fingerprint(program, &interface)),
        oracle_executions: outcome.oracle_executions,
        elapsed,
    })
}

/// Queries the final `specs` state of one session (`None` = default):
/// `(library_fingerprint, rendered artifact)`.
fn final_specs(handle: &ServeHandle, session: Option<&str>) -> Result<(String, String), String> {
    let mut request = Envelope::of(Request::Specs);
    if let Some(name) = session {
        request = request.in_session(name);
    }
    let specs = handle
        .request(request)
        .outcome
        .map_err(|e| format!("specs query failed: {}", e.message))?;
    let fingerprint = specs
        .get("library_fingerprint")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    let artifact = specs.get("artifact").map(Json::render).unwrap_or_default();
    Ok((fingerprint, artifact))
}

/// Runs the full single-session service-replay pipeline.  See the
/// [module docs](self).
///
/// # Errors
/// Returns [`FleetError`] on an unknown library name or a store failure.
/// An unexpected daemon response (a failure mode the protocol should have
/// mapped to a structured error) is reported as a schema violation.
pub fn run_serve_bench(config: &ServeBenchConfig) -> Result<ServeBenchReport, FleetError> {
    let schema_err = |message: String| {
        FleetError::Store(atlas_core::StoreError::schema(
            &config.serve.store,
            atlas_store::SchemaError(message),
        ))
    };

    // 1. Resident daemon over the store root (cold seed or warm splice).
    let t = Instant::now();
    let mut service = Service::spawn(config.serve.clone())?;
    let startup = t.elapsed();
    let handle = service.handle();

    // The client-side replay state: the same library content the daemon
    // is editing, reconstructed from the accepted mutations.
    let lib = atlas_apps::build_library(&config.serve.library, config.serve.synth_seed)
        .map_err(FleetError::from)?;

    // 2. Stream the edits, measuring per-request latency client-side.
    // Latencies go straight into the shared log-linear histogram (ns
    // resolution) — constant memory and O(buckets) quantiles instead of
    // the full sort-per-report the leg used to do.
    let t = Instant::now();
    let replayed =
        replay_stream(&handle, None, lib.program, config.edits, config.seed).map_err(schema_err)?;
    let replay = t.elapsed();

    // 3. Final daemon state: specs artifact, fingerprint, counters.
    let (served_fingerprint, served_artifact) = final_specs(&handle, None).map_err(schema_err)?;
    let stats = handle
        .request(Envelope::of(Request::Stats))
        .outcome
        .map_err(|e| schema_err(format!("stats query failed: {}", e.message)))?;
    let shutdown = handle.request(Envelope::of(Request::Shutdown));
    if shutdown.outcome.is_err() {
        return Err(schema_err("shutdown was rejected".to_string()));
    }
    let recorder = service.recorder().clone();
    service.join();

    // 4. Cold batch baseline over the replayed final content — the
    // service-equivalence invariant.
    let cold = cold_baseline(&replayed.program, &lib.clusters, &config.serve)?;
    let identical = served_artifact == cold.artifact;
    let fingerprints_match = served_fingerprint == cold.fingerprint;

    // 5. Assemble the report.  Quantiles come from the histogram
    // (bounded ~1.6% bucketing error); min/max/mean are exact.
    let latency = &replayed.latency;
    let p50 = ns_to_ms(latency.percentile(50));
    let p99 = ns_to_ms(latency.percentile(99));
    let max = ns_to_ms(latency.max());
    let mean = latency.mean() / 1e6;
    let throughput = if replay.as_secs_f64() > 0.0 {
        config.edits as f64 / replay.as_secs_f64()
    } else {
        f64::INFINITY
    };
    let json = Json::obj()
        .set("schema", "atlas-serve/1")
        .set("config", config_doc(config))
        .set(
            "edits",
            Json::obj()
                .set("requested", config.edits)
                .set("accepted", replayed.accepted)
                .set("rejected", replayed.rejected),
        )
        .set(
            "latency_ms",
            Json::obj()
                .set("p50", p50)
                .set("p99", p99)
                .set("max", max)
                .set("mean", mean),
        )
        .set("throughput_edits_per_sec", throughput)
        .set(
            "executions",
            Json::obj()
                .set("oracle", replayed.oracle_executions)
                .set("spliced_verdicts", replayed.spliced_verdicts)
                .set("cold_baseline", cold.oracle_executions),
        )
        .set("shards", stats.get("shards").cloned().unwrap_or(Json::Null))
        .set("budget", stats.get("budget").cloned().unwrap_or(Json::Null))
        .set(
            "metrics",
            stats.get("metrics").cloned().unwrap_or(Json::Null),
        )
        .set(
            "equivalence",
            Json::obj()
                .set("identical", identical)
                .set("fingerprints_match", fingerprints_match)
                .set("library_fingerprint", cold.fingerprint.as_str()),
        )
        .set(
            "timings",
            Json::obj()
                .set("startup_ms", startup.as_secs_f64() * 1e3)
                .set("replay_ms", replay.as_secs_f64() * 1e3)
                .set("cold_ms", cold.elapsed.as_secs_f64() * 1e3),
        );

    let mut summary = String::new();
    let _ = writeln!(
        summary,
        "edits: {} accepted, {} rejected of {}",
        replayed.accepted, replayed.rejected, config.edits
    );
    let _ = writeln!(
        summary,
        "latency: p50 {p50:.2}ms p99 {p99:.2}ms max {max:.2}ms ({throughput:.1} edits/s)"
    );
    let _ = writeln!(
        summary,
        "executions: {} oracle across the stream \
         ({} verdicts spliced), cold baseline {}",
        replayed.oracle_executions, replayed.spliced_verdicts, cold.oracle_executions
    );
    let _ = writeln!(
        summary,
        "equivalence: identical={identical} fingerprints_match={fingerprints_match}"
    );
    Ok(ServeBenchReport {
        json,
        summary,
        recorder,
    })
}

/// The shared `config` block of both report schemas.
fn config_doc(config: &ServeBenchConfig) -> Json {
    Json::obj()
        .set("library", config.serve.library.as_str())
        .set("samples_per_cluster", config.serve.samples)
        .set("threads", config.serve.threads)
        .set("workers", config.serve.workers)
        .set("store", config.serve.store.display().to_string())
        .set("shard_budget", config.serve.shard_budget)
        .set("queue_capacity", config.serve.queue_capacity)
        .set("flush_every", config.serve.flush_every)
        .set("edits", config.edits)
        .set("sessions", config.sessions)
        .set("seed", config.seed as i64)
}

/// Runs the multi-session service-replay pipeline: `config.sessions`
/// named sessions on one daemon, each driven by its own client thread
/// with its own deterministic edit stream, each byte-compared against its
/// own cold batch baseline.  See the [module docs](self).
///
/// # Errors
/// As [`run_serve_bench`], plus a schema violation when a session cannot
/// be opened or a client thread observes a lock-step divergence.
pub fn run_serve_multi_bench(config: &ServeBenchConfig) -> Result<ServeBenchReport, FleetError> {
    let schema_err = |message: String| {
        FleetError::Store(atlas_core::StoreError::schema(
            &config.serve.store,
            atlas_store::SchemaError(message),
        ))
    };
    let sessions = config.sessions.max(1);

    // 1. One daemon, `sessions` namespaces seeded from its base state.
    let t = Instant::now();
    let mut service = Service::spawn(config.serve.clone())?;
    let startup = t.elapsed();
    let handle = service.handle();
    let lib = atlas_apps::build_library(&config.serve.library, config.serve.synth_seed)
        .map_err(FleetError::from)?;
    let names: Vec<String> = (0..sessions).map(|s| format!("c{s}")).collect();
    for (s, name) in names.iter().enumerate() {
        handle
            .request(Envelope::with_id(s as i64, Request::Open).in_session(name))
            .outcome
            .map_err(|e| schema_err(format!("open {name} failed: {}", e.message)))?;
    }

    // 2. Parallel replay: one client thread per session, each stream
    // seeded `seed + (s << 20)` so the sessions genuinely diverge.  The
    // daemon's worker pool runs the sessions concurrently; within one
    // session the stream stays serialized, so the lock-step invariant
    // holds per thread exactly as in the single-session leg.
    let t = Instant::now();
    let replays: Vec<Result<StreamReplay, String>> = std::thread::scope(|scope| {
        let threads: Vec<_> = names
            .iter()
            .enumerate()
            .map(|(s, name)| {
                let handle = handle.clone();
                let program = lib.program.clone();
                let edits = config.edits;
                let seed = config.seed + ((s as u64) << 20);
                scope.spawn(move || replay_stream(&handle, Some(name), program, edits, seed))
            })
            .collect();
        threads
            .into_iter()
            .map(|t| {
                t.join()
                    .unwrap_or_else(|_| Err("a client thread panicked".to_string()))
            })
            .collect()
    });
    let replay = t.elapsed();

    // 3. Per-session final state, then global counters and shutdown.
    let mut finals = Vec::with_capacity(sessions);
    for name in &names {
        finals.push(
            final_specs(&handle, Some(name))
                .map_err(|e| schema_err(format!("session {name}: {e}")))?,
        );
    }
    let stats = handle
        .request(Envelope::of(Request::Stats))
        .outcome
        .map_err(|e| schema_err(format!("stats query failed: {}", e.message)))?;
    let shutdown = handle.request(Envelope::of(Request::Shutdown));
    if shutdown.outcome.is_err() {
        return Err(schema_err("shutdown was rejected".to_string()));
    }
    let recorder = service.recorder().clone();
    service.join();

    // 4. Per-session cold baselines over each replayed final content.
    let mut latency = Histogram::new();
    let mut rows = Vec::with_capacity(sessions);
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut oracle_executions = 0i64;
    let mut spliced_verdicts = 0i64;
    let mut cold_executions = 0usize;
    let mut cold_elapsed = Duration::ZERO;
    let mut all_identical = true;
    let mut all_fingerprints = true;
    for ((name, replayed), (served_fingerprint, served_artifact)) in
        names.iter().zip(replays).zip(finals)
    {
        let replayed = replayed.map_err(|e| schema_err(format!("session {name}: {e}")))?;
        let cold = cold_baseline(&replayed.program, &lib.clusters, &config.serve)?;
        let identical = served_artifact == cold.artifact;
        let fingerprints_match = served_fingerprint == cold.fingerprint;
        all_identical &= identical;
        all_fingerprints &= fingerprints_match;
        latency.merge(&replayed.latency);
        accepted += replayed.accepted;
        rejected += replayed.rejected;
        oracle_executions += replayed.oracle_executions;
        spliced_verdicts += replayed.spliced_verdicts;
        cold_executions += cold.oracle_executions;
        cold_elapsed += cold.elapsed;
        rows.push(
            Json::obj()
                .set("session", name.as_str())
                .set("accepted", replayed.accepted)
                .set("rejected", replayed.rejected)
                .set(
                    "executions",
                    Json::obj()
                        .set("oracle", replayed.oracle_executions)
                        .set("spliced_verdicts", replayed.spliced_verdicts)
                        .set("cold_baseline", cold.oracle_executions),
                )
                .set("identical", identical)
                .set("fingerprints_match", fingerprints_match)
                .set("library_fingerprint", cold.fingerprint.as_str()),
        );
    }

    // 5. The aggregate report: one `atlas-serve/2` document with a
    // per-session breakdown next to the fleet-level counters.
    let total_edits = config.edits * sessions;
    let p50 = ns_to_ms(latency.percentile(50));
    let p99 = ns_to_ms(latency.percentile(99));
    let max = ns_to_ms(latency.max());
    let mean = latency.mean() / 1e6;
    let throughput = if replay.as_secs_f64() > 0.0 {
        total_edits as f64 / replay.as_secs_f64()
    } else {
        f64::INFINITY
    };
    let json = Json::obj()
        .set("schema", "atlas-serve/2")
        .set("config", config_doc(config))
        .set("sessions", Json::from(rows))
        .set(
            "edits",
            Json::obj()
                .set("requested", total_edits)
                .set("accepted", accepted)
                .set("rejected", rejected),
        )
        .set(
            "latency_ms",
            Json::obj()
                .set("p50", p50)
                .set("p99", p99)
                .set("max", max)
                .set("mean", mean),
        )
        .set("throughput_edits_per_sec", throughput)
        .set(
            "executions",
            Json::obj()
                .set("oracle", oracle_executions)
                .set("spliced_verdicts", spliced_verdicts)
                .set("cold_baseline", cold_executions),
        )
        .set("shards", stats.get("shards").cloned().unwrap_or(Json::Null))
        .set("budget", stats.get("budget").cloned().unwrap_or(Json::Null))
        .set(
            "metrics",
            stats.get("metrics").cloned().unwrap_or(Json::Null),
        )
        .set(
            "equivalence",
            Json::obj()
                .set("identical", all_identical)
                .set("fingerprints_match", all_fingerprints),
        )
        .set(
            "timings",
            Json::obj()
                .set("startup_ms", startup.as_secs_f64() * 1e3)
                .set("replay_ms", replay.as_secs_f64() * 1e3)
                .set("cold_ms", cold_elapsed.as_secs_f64() * 1e3),
        );

    let mut summary = String::new();
    let _ = writeln!(
        summary,
        "sessions: {sessions} concurrent, {accepted} accepted, {rejected} rejected of {total_edits}"
    );
    let _ = writeln!(
        summary,
        "latency: p50 {p50:.2}ms p99 {p99:.2}ms max {max:.2}ms ({throughput:.1} edits/s aggregate)"
    );
    let _ = writeln!(
        summary,
        "executions: {oracle_executions} oracle across all streams \
         ({spliced_verdicts} verdicts spliced), cold baselines {cold_executions}"
    );
    let _ = writeln!(
        summary,
        "equivalence: identical={all_identical} fingerprints_match={all_fingerprints}"
    );
    Ok(ServeBenchReport {
        json,
        summary,
        recorder,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("atlas-servebench-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn replay_report_is_equivalent_and_counts_add_up() {
        let store = scratch("report");
        let config = ServeBenchConfig::small(store.clone());
        let report = run_serve_bench(&config).expect("serve bench run");
        let json = &report.json;
        assert_eq!(json.get("schema"), Some(&Json::str("atlas-serve/1")));
        let equivalence = json.get("equivalence").expect("equivalence");
        assert_eq!(equivalence.get("identical"), Some(&Json::Bool(true)));
        assert_eq!(
            equivalence.get("fingerprints_match"),
            Some(&Json::Bool(true))
        );

        let edits = json.get("edits").expect("edits");
        let accepted = edits.get("accepted").and_then(Json::as_int).unwrap();
        let rejected = edits.get("rejected").and_then(Json::as_int).unwrap();
        assert_eq!(accepted + rejected, config.edits as i64);
        assert!(accepted > 0, "the stream must accept some edits");

        // The resident engine must splice: a 24-edit stream over two
        // clusters cannot re-execute as much as 24 cold runs.
        let executions = json.get("executions").expect("executions");
        let oracle = executions.get("oracle").and_then(Json::as_int).unwrap();
        let cold = executions
            .get("cold_baseline")
            .and_then(Json::as_int)
            .unwrap();
        assert!(
            oracle < accepted * cold.max(1),
            "resident replay re-executed like cold batch ({oracle} vs {accepted}x{cold})"
        );
        assert!(
            executions
                .get("spliced_verdicts")
                .and_then(Json::as_int)
                .unwrap()
                > 0
        );
        assert!(report.summary.contains("identical=true"));
        // The resolved thread-budget split travels with the report.
        let budget = json.get("budget").expect("budget");
        assert!(budget.get("outer_workers").and_then(Json::as_int).unwrap() >= 1);
        assert!(budget.get("inner_threads").and_then(Json::as_int).unwrap() >= 1);
        std::fs::remove_dir_all(&store).unwrap();
    }

    #[test]
    fn multi_session_report_isolates_every_session() {
        let store = scratch("multi");
        let mut config = ServeBenchConfig::small(store.clone());
        config.sessions = 2;
        config.edits = 12;
        // Two workers so the two session streams genuinely interleave.
        config.serve.threads = 2;
        config.serve.workers = 2;
        let report = run_serve_multi_bench(&config).expect("multi serve bench run");
        let json = &report.json;
        assert_eq!(json.get("schema"), Some(&Json::str("atlas-serve/2")));
        let equivalence = json.get("equivalence").expect("equivalence");
        assert_eq!(equivalence.get("identical"), Some(&Json::Bool(true)));
        assert_eq!(
            equivalence.get("fingerprints_match"),
            Some(&Json::Bool(true))
        );
        let rows = match json.get("sessions").expect("sessions") {
            Json::Arr(rows) => rows,
            other => panic!("sessions must be an array, got {other:?}"),
        };
        assert_eq!(rows.len(), 2);
        let mut fingerprints = Vec::new();
        for row in rows {
            assert_eq!(row.get("identical"), Some(&Json::Bool(true)));
            assert!(row.get("accepted").and_then(Json::as_int).unwrap() > 0);
            fingerprints.push(row.get("library_fingerprint").cloned().unwrap());
        }
        // Different seeds per stream: the sessions must end on different
        // library contents — shared state would collapse them.
        assert_ne!(
            fingerprints[0], fingerprints[1],
            "both sessions converged to one fingerprint — cross-session leakage"
        );
        let edits = json.get("edits").expect("edits");
        let accepted = edits.get("accepted").and_then(Json::as_int).unwrap();
        let rejected = edits.get("rejected").and_then(Json::as_int).unwrap();
        assert_eq!(accepted + rejected, (config.edits * config.sessions) as i64);
        assert!(report.summary.contains("2 concurrent"));
        std::fs::remove_dir_all(&store).unwrap();
    }

    #[test]
    fn histogram_latency_math_matches_nearest_rank_within_bucket_error() {
        // 1..=100 ms recorded as ns: the log-linear buckets guarantee
        // ≤1/64 relative error around the nearest-rank answer, and
        // min/max/mean stay exact.
        let mut hist = Histogram::new();
        for ms in 1..=100u64 {
            hist.record(ms * 1_000_000);
        }
        let p50 = ns_to_ms(hist.percentile(50));
        let p99 = ns_to_ms(hist.percentile(99));
        assert!((p50 - 50.0).abs() / 50.0 <= 1.0 / 64.0, "p50 was {p50}");
        assert!((p99 - 99.0).abs() / 99.0 <= 1.0 / 64.0, "p99 was {p99}");
        assert_eq!(ns_to_ms(hist.max()), 100.0);
        assert_eq!(ns_to_ms(hist.min()), 1.0);
        assert!((hist.mean() / 1e6 - 50.5).abs() < 1.0);
        // Degenerate shapes keep the old conventions.
        let mut one = Histogram::new();
        one.record(7_000_000);
        assert_eq!(ns_to_ms(one.percentile(50)), 7.0);
        assert_eq!(Histogram::new().percentile(99), 0);
    }
}
