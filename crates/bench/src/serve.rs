//! The resident-service leg: replay a long mutation-generator edit stream
//! against a warm `atlas-serve` daemon and measure what a resident engine
//! buys over batch re-analysis — then prove it changed nothing.
//!
//! One [`run_serve_bench`] call:
//!
//! 1. spawns an in-process [`atlas_serve::Service`] (the same daemon the
//!    `serve` binary runs behind stdio/socket frames) over a closure-sharded
//!    store root; startup seeds the store cold or splices it warm;
//! 2. streams `edits` deterministic mutations through the daemon, cycling
//!    the generator kinds (`body-edit` / `rename-local` / `add-method` /
//!    `signature-change`) with per-edit seeds, measuring client-side
//!    latency per request; ineligible edits come back as structured
//!    `bad-edit` errors and are skipped — identically — on both sides;
//! 3. replays the *accepted* edits locally to reconstruct the final
//!    library content, runs a cold batch `Engine` over it, and
//!    byte-compares the daemon's final `specs` artifact against the cold
//!    baseline — the service-equivalence invariant;
//! 4. emits an `atlas-serve/1` JSON report: throughput, p50/p99/max
//!    latency, cumulative re-execution counts, shard-cache counters, and
//!    the equivalence verdict.
//!
//! The `serve_bench` binary adds `--expect-throughput N`, which turns the
//! contract into an exit code for CI: the final artifact must be
//! byte-identical to the cold baseline and the edit stream must sustain at
//! least `N` edits per second.

use crate::config::{env_parse, sample_budget, thread_budget, trace_enabled};
use crate::fleet::FleetError;
use crate::json::Json;
use atlas_apps::{mutate_library, MutationConfig};
use atlas_core::{AtlasConfig, Engine, ThreadBudget};
use atlas_ir::hash::library_fingerprint;
use atlas_ir::{LibraryInterface, MutationKind};
use atlas_obs::{Histogram, Recorder};
use atlas_serve::{Envelope, Request, ServeConfig, ServeError, Service, EXTRACTION};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Configuration of a service-replay run.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// The daemon configuration: library under service, budgets, store
    /// root, shard/queue/flush knobs (`ATLAS_SERVE_*`).
    pub serve: ServeConfig,
    /// Length of the edit stream (`ATLAS_SERVE_EDITS`).
    pub edits: usize,
    /// Base mutation seed; edit `i` uses `seed + i`.
    pub seed: u64,
}

impl ServeBenchConfig {
    /// Reads the configuration from the environment: the `ATLAS_SERVE_*`
    /// family (see `atlas_serve::config`) plus the shared
    /// `ATLAS_SAMPLES`/`ATLAS_THREADS` budgets and `ATLAS_SERVE_EDITS`
    /// for the stream length (default 1000).
    pub fn from_env() -> ServeBenchConfig {
        let mut serve = ServeConfig::from_env();
        serve.samples = sample_budget();
        serve.threads = thread_budget();
        serve.trace = trace_enabled();
        ServeBenchConfig {
            serve,
            edits: env_parse("ATLAS_SERVE_EDITS").unwrap_or(1_000),
            seed: 0xA77A5,
        }
    }

    /// A small configuration suitable for tests.
    pub fn small(store: PathBuf) -> ServeBenchConfig {
        ServeBenchConfig {
            serve: ServeConfig::small(store),
            edits: 24,
            seed: 7,
        }
    }
}

/// The outcome of a service-replay run: the JSON document plus a human
/// summary.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// The machine-readable report (schema `atlas-serve/1`).
    pub json: Json,
    /// A short human-readable summary.
    pub summary: String,
    /// The daemon's observability session (metrics always, span events
    /// when the config traced) — feed it to
    /// [`atlas_obs::write_chrome_trace`] for the `--trace-out` sink.
    pub recorder: Recorder,
}

impl From<ServeError> for FleetError {
    fn from(e: ServeError) -> FleetError {
        match e {
            ServeError::Registry(e) => e.into(),
            ServeError::Store(e) => FleetError::Store(e),
        }
    }
}

/// The generator rotation of the edit stream.
const EDIT_KINDS: [MutationKind; 4] = [
    MutationKind::BodyEdit,
    MutationKind::RenameLocal,
    MutationKind::AddMethod,
    MutationKind::SignatureChange,
];

/// Nanoseconds to milliseconds, for report fields.
fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Runs the full service-replay pipeline.  See the [module docs](self).
///
/// # Errors
/// Returns [`FleetError`] on an unknown library name or a store failure.
/// An unexpected daemon response (a failure mode the protocol should have
/// mapped to a structured error) is reported as a schema violation.
pub fn run_serve_bench(config: &ServeBenchConfig) -> Result<ServeBenchReport, FleetError> {
    let schema_err = |message: String| {
        FleetError::Store(atlas_core::StoreError::schema(
            &config.serve.store,
            atlas_store::SchemaError(message),
        ))
    };

    // 1. Resident daemon over the store root (cold seed or warm splice).
    let t = Instant::now();
    let mut service = Service::spawn(config.serve.clone())?;
    let startup = t.elapsed();
    let handle = service.handle();

    // The client-side replay state: the same library content the daemon
    // is editing, reconstructed from the accepted mutations.
    let lib = atlas_apps::build_library(&config.serve.library, config.serve.synth_seed)
        .map_err(FleetError::from)?;
    let mut program = lib.program;

    // 2. Stream the edits, measuring per-request latency client-side.
    // Latencies go straight into the shared log-linear histogram (ns
    // resolution) — constant memory and O(buckets) quantiles instead of
    // the full sort-per-report the leg used to do.
    let mut latency = Histogram::new();
    let mut edits_ok = 0usize;
    let mut edits_failed = 0usize;
    let mut oracle_executions = 0i64;
    let mut spliced_verdicts = 0i64;
    let t = Instant::now();
    for i in 0..config.edits {
        let mutation = MutationConfig {
            kind: EDIT_KINDS[i % EDIT_KINDS.len()],
            seed: config.seed + i as u64,
            target: None,
        };
        let request = Envelope {
            id: Some(Json::Int(i as i64)),
            request: Request::Edit(atlas_serve::EditRequest {
                kind: mutation.kind,
                seed: mutation.seed,
                target: None,
            }),
        };
        let t_edit = Instant::now();
        let response = handle.request(request);
        latency.record(u64::try_from(t_edit.elapsed().as_nanos()).unwrap_or(u64::MAX));
        // Lock-step replay: an accepted edit must be locally applicable,
        // a rejected one locally ineligible — the streams never diverge.
        let local = mutate_library(&program, &mutation);
        match (&response.outcome, local) {
            (Ok(result), Ok(mutated)) => {
                program = mutated.program;
                edits_ok += 1;
                let executions = result.get("executions").unwrap_or(&Json::Null);
                oracle_executions += executions.get("oracle").and_then(Json::as_int).unwrap_or(0);
                spliced_verdicts += executions
                    .get("spliced_verdicts")
                    .and_then(Json::as_int)
                    .unwrap_or(0);
            }
            (Err(error), Err(_)) => {
                edits_failed += 1;
                if error.code != atlas_serve::ErrorCode::BadEdit {
                    return Err(schema_err(format!(
                        "edit {i} failed outside the protocol: {}",
                        error.message
                    )));
                }
            }
            (Ok(_), Err(e)) => {
                return Err(schema_err(format!(
                    "edit {i} accepted by the daemon but locally ineligible: {e}"
                )));
            }
            (Err(error), Ok(_)) => {
                return Err(schema_err(format!(
                    "edit {i} locally eligible but rejected by the daemon: {}",
                    error.message
                )));
            }
        }
    }
    let replay = t.elapsed();

    // 3. Final daemon state: specs artifact, fingerprint, counters.
    let specs = handle
        .request(Envelope::of(Request::Specs))
        .outcome
        .map_err(|e| schema_err(format!("specs query failed: {}", e.message)))?;
    let served_fingerprint = specs
        .get("library_fingerprint")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    let served_artifact = specs.get("artifact").map(Json::render).unwrap_or_default();
    let stats = handle
        .request(Envelope::of(Request::Stats))
        .outcome
        .map_err(|e| schema_err(format!("stats query failed: {}", e.message)))?;
    let shutdown = handle.request(Envelope::of(Request::Shutdown));
    if shutdown.outcome.is_err() {
        return Err(schema_err("shutdown was rejected".to_string()));
    }
    let recorder = service.recorder().clone();
    service.join();

    // 4. Cold batch baseline over the replayed final content — the
    // service-equivalence invariant.
    let interface = LibraryInterface::from_program(&program);
    let atlas_config = AtlasConfig {
        samples_per_cluster: config.serve.samples,
        clusters: lib.clusters.clone(),
        num_threads: ThreadBudget::resolve(config.serve.threads).total(),
        ..AtlasConfig::default()
    };
    let t = Instant::now();
    let cold_outcome = Engine::new(&program, &interface, atlas_config).run();
    let cold = t.elapsed();
    let cold_artifact = cold_outcome
        .spec_artifact(&program, &interface, EXTRACTION.0, EXTRACTION.1)
        .encode(&program)
        .map_err(|e| atlas_core::StoreError::schema(&config.serve.store, e))?
        .render();
    let identical = served_artifact == cold_artifact;
    let fingerprint = atlas_store::hex64_string(library_fingerprint(&program, &interface));
    let fingerprints_match = served_fingerprint == fingerprint;

    // 5. Assemble the report.  Quantiles come from the histogram
    // (bounded ~1.6% bucketing error); min/max/mean are exact.
    let p50 = ns_to_ms(latency.percentile(50));
    let p99 = ns_to_ms(latency.percentile(99));
    let max = ns_to_ms(latency.max());
    let mean = latency.mean() / 1e6;
    let throughput = if replay.as_secs_f64() > 0.0 {
        config.edits as f64 / replay.as_secs_f64()
    } else {
        f64::INFINITY
    };
    let json = Json::obj()
        .set("schema", "atlas-serve/1")
        .set(
            "config",
            Json::obj()
                .set("library", config.serve.library.as_str())
                .set("samples_per_cluster", config.serve.samples)
                .set("threads", config.serve.threads)
                .set("store", config.serve.store.display().to_string())
                .set("shard_budget", config.serve.shard_budget)
                .set("queue_capacity", config.serve.queue_capacity)
                .set("flush_every", config.serve.flush_every)
                .set("edits", config.edits)
                .set("seed", config.seed as i64),
        )
        .set(
            "edits",
            Json::obj()
                .set("requested", config.edits)
                .set("accepted", edits_ok)
                .set("rejected", edits_failed),
        )
        .set(
            "latency_ms",
            Json::obj()
                .set("p50", p50)
                .set("p99", p99)
                .set("max", max)
                .set("mean", mean),
        )
        .set("throughput_edits_per_sec", throughput)
        .set(
            "executions",
            Json::obj()
                .set("oracle", oracle_executions)
                .set("spliced_verdicts", spliced_verdicts)
                .set("cold_baseline", cold_outcome.oracle_executions),
        )
        .set("shards", stats.get("shards").cloned().unwrap_or(Json::Null))
        .set(
            "metrics",
            stats.get("metrics").cloned().unwrap_or(Json::Null),
        )
        .set(
            "equivalence",
            Json::obj()
                .set("identical", identical)
                .set("fingerprints_match", fingerprints_match)
                .set("library_fingerprint", fingerprint.as_str()),
        )
        .set(
            "timings",
            Json::obj()
                .set("startup_ms", startup.as_secs_f64() * 1e3)
                .set("replay_ms", replay.as_secs_f64() * 1e3)
                .set("cold_ms", cold.as_secs_f64() * 1e3),
        );

    let mut summary = String::new();
    let _ = writeln!(
        summary,
        "edits: {edits_ok} accepted, {edits_failed} rejected of {}",
        config.edits
    );
    let _ = writeln!(
        summary,
        "latency: p50 {p50:.2}ms p99 {p99:.2}ms max {max:.2}ms ({throughput:.1} edits/s)"
    );
    let _ = writeln!(
        summary,
        "executions: {oracle_executions} oracle across the stream \
         ({spliced_verdicts} verdicts spliced), cold baseline {}",
        cold_outcome.oracle_executions
    );
    let _ = writeln!(
        summary,
        "equivalence: identical={identical} fingerprints_match={fingerprints_match}"
    );
    Ok(ServeBenchReport {
        json,
        summary,
        recorder,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("atlas-servebench-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn replay_report_is_equivalent_and_counts_add_up() {
        let store = scratch("report");
        let config = ServeBenchConfig::small(store.clone());
        let report = run_serve_bench(&config).expect("serve bench run");
        let json = &report.json;
        assert_eq!(json.get("schema"), Some(&Json::str("atlas-serve/1")));
        let equivalence = json.get("equivalence").expect("equivalence");
        assert_eq!(equivalence.get("identical"), Some(&Json::Bool(true)));
        assert_eq!(
            equivalence.get("fingerprints_match"),
            Some(&Json::Bool(true))
        );

        let edits = json.get("edits").expect("edits");
        let accepted = edits.get("accepted").and_then(Json::as_int).unwrap();
        let rejected = edits.get("rejected").and_then(Json::as_int).unwrap();
        assert_eq!(accepted + rejected, config.edits as i64);
        assert!(accepted > 0, "the stream must accept some edits");

        // The resident engine must splice: a 24-edit stream over two
        // clusters cannot re-execute as much as 24 cold runs.
        let executions = json.get("executions").expect("executions");
        let oracle = executions.get("oracle").and_then(Json::as_int).unwrap();
        let cold = executions
            .get("cold_baseline")
            .and_then(Json::as_int)
            .unwrap();
        assert!(
            oracle < accepted * cold.max(1),
            "resident replay re-executed like cold batch ({oracle} vs {accepted}x{cold})"
        );
        assert!(
            executions
                .get("spliced_verdicts")
                .and_then(Json::as_int)
                .unwrap()
                > 0
        );
        assert!(report.summary.contains("identical=true"));
        std::fs::remove_dir_all(&store).unwrap();
    }

    #[test]
    fn histogram_latency_math_matches_nearest_rank_within_bucket_error() {
        // 1..=100 ms recorded as ns: the log-linear buckets guarantee
        // ≤1/64 relative error around the nearest-rank answer, and
        // min/max/mean stay exact.
        let mut hist = Histogram::new();
        for ms in 1..=100u64 {
            hist.record(ms * 1_000_000);
        }
        let p50 = ns_to_ms(hist.percentile(50));
        let p99 = ns_to_ms(hist.percentile(99));
        assert!((p50 - 50.0).abs() / 50.0 <= 1.0 / 64.0, "p50 was {p50}");
        assert!((p99 - 99.0).abs() / 99.0 <= 1.0 / 64.0, "p99 was {p99}");
        assert_eq!(ns_to_ms(hist.max()), 100.0);
        assert_eq!(ns_to_ms(hist.min()), 1.0);
        assert!((hist.mean() / 1e6 - 50.5).abs() < 1.0);
        // Degenerate shapes keep the old conventions.
        let mut one = Histogram::new();
        one.record(7_000_000);
        assert_eq!(ns_to_ms(one.percentile(50)), 7.0);
        assert_eq!(Histogram::new().percentile(99), 0);
    }
}
