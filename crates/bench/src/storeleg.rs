//! The store leg shared by the batch and fleet pipelines: reloading a
//! persisted verdict cache, and exporting the inferred specification set
//! with the cross-process byte-identity check.  One implementation, so the
//! warm-start protocol cannot desynchronize between the two pipelines.

use crate::json::Json;
use atlas_core::{InferenceOutcome, StoreError, VerdictCache};
use atlas_ir::{LibraryInterface, Program};
use std::path::Path;

/// The spec-extraction bounds every pipeline uses (`specs(8, 64)`), so
/// spec artifacts from different runs are comparable byte-for-byte.
pub(crate) const SPEC_MAX_LEN: usize = 8;
/// See [`SPEC_MAX_LEN`].
pub(crate) const SPEC_LIMIT: usize = 64;

/// Reloads a persisted verdict cache, returning the persisted entry count
/// alongside the live cache (`None` when the file does not exist yet).
pub(crate) fn reload_cache(path: &Path) -> Result<Option<(usize, VerdictCache)>, StoreError> {
    if !path.exists() {
        return Ok(None);
    }
    let artifact = atlas_store::load_cache(path)?;
    Ok(Some((artifact.num_entries(), artifact.to_cache())))
}

/// What the spec-export half of the store leg produced.
pub(crate) struct SpecExport {
    /// Whether the export matched the previous run's bytes (`Null` when
    /// there was nothing to compare against).
    pub identical: Json,
    /// Extracted specifications in the artifact.
    pub num_specs: usize,
}

/// Exports the outcome's spec artifact to `path` (atomic write).  When
/// `compare` is set and a previous export exists, the rendered bytes are
/// compared first: identical bytes mean the (warm-started) run inferred
/// the *exact* same specifications — the cross-process determinism check.
pub(crate) fn export_specs(
    program: &Program,
    interface: &LibraryInterface,
    outcome: &InferenceOutcome,
    path: &Path,
    compare: bool,
) -> Result<SpecExport, StoreError> {
    let artifact = outcome.spec_artifact(program, interface, SPEC_MAX_LEN, SPEC_LIMIT);
    let rendered = artifact
        .encode(program)
        .map_err(|e| StoreError::schema(path, e))?
        .render();
    let mut identical = Json::Null;
    if compare && path.exists() {
        // A read failure must fail loudly, not masquerade as a
        // determinism violation.
        let existing = std::fs::read_to_string(path).map_err(|source| StoreError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        identical = Json::Bool(existing == rendered);
    }
    atlas_store::atomic_write(path, &rendered)?;
    Ok(SpecExport {
        identical,
        num_specs: artifact.num_specs(),
    })
}
