//! # atlas-bench
//!
//! The experiment harness of the reproduction.  Every table and figure of
//! the paper's evaluation has a corresponding function here (and a binary in
//! `src/bin/` that prints it); `exp_all` regenerates everything at once.
//!
//! | Paper artifact | Function | Binary |
//! |---|---|---|
//! | Figure 8 (app sizes) | [`experiments::fig8_app_sizes`] | `fig8_app_sizes` |
//! | §6.1 coverage table | [`experiments::tab_coverage`] | `tab_coverage` |
//! | Figure 9(a) | [`experiments::fig9a_flows`] | `fig9a_flows` |
//! | Figure 9(b) | [`experiments::fig9b_recall`] | `fig9b_recall` |
//! | Figure 9(c) | [`experiments::fig9c_impl_fp`] | `fig9c_impl_fp` |
//! | §6.2 ground-truth table | [`experiments::tab_ground_truth`] | `tab_ground_truth` |
//! | §6.3 sampling table | [`experiments::tab_sampling`] | `tab_sampling` |
//! | §6.3 initialization table | [`experiments::tab_init`] | `tab_init` |
//!
//! Beyond the per-figure binaries, the [`batch`] module is the
//! machine-readable pipeline: one `batch` run performs cold + warm-started
//! inference (exercising the verdict cache end to end) and analyzes the
//! whole generated-app suite under the inferred, handwritten, and
//! ground-truth specification variants, emitting a JSON report
//! (`atlas-batch/1`) with per-app timings, cache hit rates, and
//! precision/recall.  With `ATLAS_STORE=dir` (or `--store`), the pipeline
//! additionally persists its verdict cache and inferred specification set
//! through the `atlas-store` registry and warm-starts from them on the
//! next invocation — *across processes*; `--expect-warm` turns the
//! invariants (nonzero reload hit rate, zero re-executions, byte-identical
//! spec export) into an exit code for CI.
//!
//! The [`fleet`] module scales the pipeline from one library to a
//! *population*: registered `atlas-javalib` variants plus deterministic
//! synthetic libraries run concurrently under an outer work-stealing
//! scheduler (two-level parallelism under one `ATLAS_THREADS` budget),
//! each warm-starting from and persisting to its own fingerprint-sharded
//! store directory, scored against its ground truth, and reported as one
//! `atlas-fleet/1` document (the `fleet` binary).
//!
//! The [`incr`] module measures the incremental-inference pipeline: seed
//! a closure-sharded store cold, apply one deterministic library edit
//! (`atlas-apps`' mutation generator), re-analyze via
//! `Engine::incremental_session`, and emit an `atlas-incr/1` report with
//! the dirty-cluster count, re-execution counts, and end-to-end speedup
//! versus the cold baseline (the `incr` binary; `--expect-incremental`
//! gates the contract in CI).
//!
//! The [`serve`] module benchmarks the *resident* deployment mode: spawn
//! an in-process `atlas-serve` daemon over a closure-sharded store,
//! replay a long mutation-generator edit stream through its wire-level
//! request queue, measure throughput and p50/p99 edit latency, and
//! byte-compare the daemon's final specification artifact against a cold
//! batch run over the equivalently edited program — one `atlas-serve/1`
//! report (the `serve_bench` binary; `--expect-throughput` gates
//! equivalence plus a minimum edit rate in CI).  With `--sessions N` the
//! leg switches to the `atlas-serve/2` multi-session variant: `N` named
//! sessions on one daemon, replayed concurrently, each byte-compared
//! against its own cold baseline.
//!
//! The [`oracle`] module measures the oracle's two execution engines —
//! the bytecode VM against the tree-walking interpreter — on a
//! deterministic witness workload, cross-checks that verdicts, step
//! counts, and inferred specifications are identical under both, and
//! emits an `atlas-oracle/1` report (the `oracle` binary;
//! `--expect-speedup` gates the performance contract in CI).
//!
//! The environment knobs (`ATLAS_SAMPLES`, `ATLAS_APPS`, `ATLAS_THREADS`,
//! `ATLAS_STORE`, `ATLAS_FLEET_*`, `ATLAS_INCR_STORE`) are parsed in one
//! place: [`config`].
//!
//! Every pipeline leg carries an `atlas-obs` recorder: reports embed an
//! `atlas-metrics/1` counter/histogram snapshot under `"metrics"`, and
//! with `ATLAS_TRACE=1` (or the binaries' `--trace` flag) the run also
//! buffers span events which `ATLAS_TRACE_OUT` / `--trace-out PATH`
//! renders as Chrome trace-event JSON (`chrome://tracing`, Perfetto).
//! Recording never changes results — the determinism tests in
//! `tests/trace_determinism.rs` byte-compare traced and untraced
//! artifacts.

pub mod batch;
pub mod config;
pub mod context;
pub mod experiments;
pub mod fleet;
pub mod incr;
pub mod json;
pub mod oracle;
pub mod serve;
mod storeleg;

pub use batch::{run_batch, BatchConfig, BatchReport};
pub use config::export_trace;
pub use context::{EvalContext, SpecSet};
pub use fleet::{run_fleet, FleetConfig, FleetError, FleetReport};
pub use incr::{run_incremental, IncrConfig, IncrReport};
pub use json::Json;
pub use oracle::{run_oracle_bench, OracleBenchConfig, OracleBenchReport};
pub use serve::{run_serve_bench, run_serve_multi_bench, ServeBenchConfig, ServeBenchReport};

/// Emits a pipeline report from a report binary: the JSON goes to stdout
/// first (the primary output — a bad file path must never lose the run),
/// then a copy is written to the path named by the `out_env` environment
/// variable when it is set.  Exits `1` with a `{tag}: cannot write …`
/// message on a failed file write.
pub fn emit_report(tag: &str, rendered: &str, out_env: &str) {
    print!("{rendered}");
    if let Ok(path) = std::env::var(out_env) {
        match std::fs::write(&path, rendered) {
            Ok(()) => eprintln!("{tag}: report written to {path}"),
            Err(e) => {
                eprintln!("{tag}: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
