//! # atlas-bench
//!
//! The experiment harness of the reproduction.  Every table and figure of
//! the paper's evaluation has a corresponding function here (and a binary in
//! `src/bin/` that prints it); `exp_all` regenerates everything at once.
//!
//! | Paper artifact | Function | Binary |
//! |---|---|---|
//! | Figure 8 (app sizes) | [`experiments::fig8_app_sizes`] | `fig8_app_sizes` |
//! | §6.1 coverage table | [`experiments::tab_coverage`] | `tab_coverage` |
//! | Figure 9(a) | [`experiments::fig9a_flows`] | `fig9a_flows` |
//! | Figure 9(b) | [`experiments::fig9b_recall`] | `fig9b_recall` |
//! | Figure 9(c) | [`experiments::fig9c_impl_fp`] | `fig9c_impl_fp` |
//! | §6.2 ground-truth table | [`experiments::tab_ground_truth`] | `tab_ground_truth` |
//! | §6.3 sampling table | [`experiments::tab_sampling`] | `tab_sampling` |
//! | §6.3 initialization table | [`experiments::tab_init`] | `tab_init` |
//!
//! Beyond the per-figure binaries, the [`batch`] module is the
//! machine-readable pipeline: one `batch` run performs cold + warm-started
//! inference (exercising the verdict cache end to end) and analyzes the
//! whole generated-app suite under the inferred, handwritten, and
//! ground-truth specification variants, emitting a JSON report
//! (`atlas-batch/1`) with per-app timings, cache hit rates, and
//! precision/recall.  With `ATLAS_STORE=dir` (or `--store`), the pipeline
//! additionally persists its verdict cache and inferred specification set
//! through the `atlas-store` registry and warm-starts from them on the
//! next invocation — *across processes*; `--expect-warm` turns the
//! invariants (nonzero reload hit rate, zero re-executions, byte-identical
//! spec export) into an exit code for CI.
//!
//! The sampling budget is controlled by the `ATLAS_SAMPLES` environment
//! variable (default 4000 candidates per class cluster), the number of
//! benchmark apps by `ATLAS_APPS` (default 46), and the inference engine's
//! worker-thread count by `ATLAS_THREADS` (default 0 = one per core; the
//! thread count changes wall-clock only, never results).

pub mod batch;
pub mod context;
pub mod experiments;
pub mod json;

pub use batch::{run_batch, BatchConfig, BatchReport};
pub use context::{EvalContext, SpecSet};
pub use json::Json;
