//! The oracle-throughput leg: measure the bytecode VM against the
//! tree-walking interpreter on the oracle's actual inner loop, and verify
//! on the way that the two engines are observationally identical.
//!
//! One [`run_oracle_bench`] call:
//!
//! 1. builds a registered library (same fleet registry as the other legs)
//!    and enumerates a deterministic workload of two-step candidate path
//!    specifications over its interface — the `in → receiver, receiver →
//!    out` shape that dominates phase one — keeping those whose witness
//!    synthesizes;
//! 2. lowers the program to bytecode once ([`CompiledProgram::compile`]),
//!    timing the compilation and counting instructions (fused
//!    superinstructions reported separately), and lowers every witness
//!    prologue to a [`CompiledWitness`] once — the per-workload *setup*
//!    cost, timed apart from execution;
//! 3. executes every witness for the configured number of rounds under
//!    each engine — one [`Vm`] [`reset`](Vm::reset) plus
//!    [`run_witness`](Vm::run_witness) per execution (the [`VmScratch`]
//!    and its inline-cache table carried across slices), versus a fresh
//!    [`Interpreter`] per execution as the tree-walker has always run —
//!    and records wall-clock, verdicts, and interpreter step counts.  The
//!    rounds are split into interleaved timed slices and each engine is
//!    scored by its fastest slice, so scheduler steal on a shared host
//!    cannot be misattributed to either engine.  Each engine's report
//!    splits `setup_ns` (one-time witness lowering; zero for the
//!    tree-walker, which re-marshals every round by design) from
//!    `exec_ns` (the timed slices), so a lowering win can never be
//!    mistaken for an execution win: the headline `execs_per_sec_best`
//!    is computed from `exec_ns` alone;
//! 4. cross-checks the engines: per-witness verdicts and total step
//!    counts must agree, and a small end-to-end inference run under each
//!    engine must produce byte-identical spec artifacts;
//! 5. emits an `atlas-oracle/1` JSON report (executions/sec and steps/sec
//!    per engine, compile cost, speedup) plus a human summary.  Under
//!    `ATLAS_VM_PROFILE` (or [`OracleBenchConfig::profile`]) a dedicated
//!    untimed pass additionally records per-opcode dynamic execution
//!    counts, inline-cache hit rates, and the static adjacent-pair
//!    frequencies that justify the fused superinstruction selection —
//!    reported under `profile`, never touching the timed slices.
//!
//! The `oracle` binary adds `--expect-speedup N`, which turns the
//! performance contract (bytecode at least `N`x the tree-walker's
//! executions/sec) and the equivalence contract into an exit code for CI.

use crate::config::{env_parse, sample_budget, trace_enabled, vm_profile_enabled};
use crate::fleet::{build_library, FleetError};
use crate::json::Json;
use crate::storeleg::{SPEC_LIMIT, SPEC_MAX_LEN};
use atlas_core::{AtlasConfig, Engine, OracleEngine};
use atlas_interp::{
    BuiltinRegistry, CompiledProgram, CompiledWitness, ExecLimits, Interpreter, OpKind, Vm,
    VmScratch,
};
use atlas_ir::{LibraryInterface, ParamSlot};
use atlas_obs::{ArgValue, Recorder};
use atlas_spec::PathSpec;
use atlas_synth::{
    synthesize_witness, InitStrategy, InstantiationPlanner, WitnessScratch, WitnessTest,
};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Configuration of an oracle-throughput run.
#[derive(Debug, Clone)]
pub struct OracleBenchConfig {
    /// Registry name of the library under measurement.
    pub library: String,
    /// Maximum number of distinct witnesses in the workload.
    pub words: usize,
    /// Executions per witness per engine.
    pub rounds: usize,
    /// Phase-one sampling budget of the cross-engine identity check.
    pub identity_samples: usize,
    /// Record span events (`ATLAS_TRACE`); see `atlas-obs`.  Spans cover
    /// compilation, the timed slices, and the identity check — never the
    /// measured inner loop, and never the results.
    pub trace: bool,
    /// Record per-opcode dynamic execution counts (`ATLAS_VM_PROFILE`).
    /// Off by default; the counts come from a dedicated untimed pass, so
    /// enabling the knob never disturbs the timed slices or the results.
    pub profile: bool,
}

impl OracleBenchConfig {
    /// Reads the configuration from the environment: `ATLAS_ORACLE_WORDS`
    /// and `ATLAS_ORACLE_ROUNDS` size the workload, `ATLAS_SAMPLES` (as
    /// everywhere) budgets the identity check.
    pub fn from_env() -> OracleBenchConfig {
        OracleBenchConfig {
            library: "javalib".to_string(),
            words: env_parse("ATLAS_ORACLE_WORDS").unwrap_or(64),
            rounds: env_parse("ATLAS_ORACLE_ROUNDS").unwrap_or(200),
            identity_samples: sample_budget().min(1_000),
            trace: trace_enabled(),
            profile: vm_profile_enabled(),
        }
    }

    /// A small configuration suitable for tests.
    pub fn small() -> OracleBenchConfig {
        OracleBenchConfig {
            library: "javalib-lang".to_string(),
            words: 8,
            rounds: 3,
            identity_samples: 250,
            trace: false,
            profile: false,
        }
    }
}

/// The outcome of an oracle-throughput run: the JSON document plus a human
/// summary.
#[derive(Debug, Clone)]
pub struct OracleBenchReport {
    /// The machine-readable report (schema `atlas-oracle/1`).
    pub json: Json,
    /// A short human-readable summary.
    pub summary: String,
    /// The run's observability session (span events when
    /// [`OracleBenchConfig::trace`] was set) — feed it to
    /// [`atlas_obs::write_chrome_trace`] for the `--trace-out` sink.
    pub recorder: Recorder,
}

/// One engine's aggregate over the workload.
#[derive(Debug, Clone, Default)]
struct EngineRun {
    executions: usize,
    steps: usize,
    positives: usize,
    /// One-time per-workload preparation: witness lowering for the
    /// bytecode engine, zero for the tree-walker (whose marshalling is
    /// inherently per-round — the asymmetry this leg measures).  Never
    /// part of `wall`, so throughput figures are pure execution.
    setup: Duration,
    /// Pure execution time: the sum of the timed slices.
    wall: Duration,
    /// Per-slice throughput samples (executions/sec), one per timed slice.
    slice_rates: Vec<f64>,
}

impl EngineRun {
    fn execs_per_sec(&self) -> f64 {
        per_sec(self.executions, self.wall)
    }

    /// The fastest slice's throughput — the noise-robust figure.  A timed
    /// slice can only ever be *slowed down* by the host (scheduler steal,
    /// cache pollution from neighbors), never sped up, so on a shared
    /// machine the best of several interleaved slices is the measurement
    /// closest to the code's true cost.
    fn best_execs_per_sec(&self) -> f64 {
        self.slice_rates
            .iter()
            .copied()
            .fold(self.execs_per_sec(), f64::max)
    }

    fn json(&self) -> Json {
        Json::obj()
            .set("executions", self.executions)
            .set("steps", self.steps)
            .set("positive_verdicts", self.positives)
            .set("setup_ns", self.setup.as_nanos() as usize)
            .set("exec_ns", self.wall.as_nanos() as usize)
            .set("wall_ms", self.wall.as_secs_f64() * 1e3)
            .set("execs_per_sec", self.execs_per_sec())
            .set("execs_per_sec_best", self.best_execs_per_sec())
            .set("steps_per_sec", per_sec(self.steps, self.wall))
    }
}

fn per_sec(count: usize, wall: Duration) -> f64 {
    if wall.as_secs_f64() > 0.0 {
        count as f64 / wall.as_secs_f64()
    } else {
        f64::INFINITY
    }
}

/// Counts the fused superinstructions in the compiled program — the
/// `Load+Branch`, `Call+RetFall`, and `Const+Store` pairs selected by the
/// static frequency pass (see `atlas_interp::compile`).
fn count_fused(compiled: &CompiledProgram) -> usize {
    (0..compiled.num_methods() as u32)
        .map(|i| {
            compiled
                .method(atlas_ir::MethodId::from_index(i))
                .code()
                .iter()
                .filter(|instr| {
                    matches!(
                        instr.kind(),
                        OpKind::LoadBranch | OpKind::CallRetFall | OpKind::ConstStore
                    )
                })
                .count()
        })
        .sum()
}

/// Enumerates the workload: two-step candidates `(entry a → receiver a,
/// receiver b → return b)` over the interface, in canonical slot order,
/// keeping the first `max` whose witness synthesizes.
fn workload(
    program: &atlas_ir::Program,
    interface: &LibraryInterface,
    planner: &InstantiationPlanner,
    max: usize,
) -> Vec<WitnessTest> {
    let mut out = Vec::new();
    let sources: Vec<(ParamSlot, ParamSlot)> = interface
        .methods()
        .iter()
        .filter(|sig| !sig.is_constructor && sig.has_this)
        .flat_map(|sig| {
            let recv = ParamSlot::receiver(sig.method);
            sig.reference_slots()
                .into_iter()
                .filter(move |s| s.is_input() && *s != recv)
                .map(move |s| (s, recv))
        })
        .collect();
    let sinks: Vec<(ParamSlot, ParamSlot)> = interface
        .methods()
        .iter()
        .filter(|sig| !sig.is_constructor && sig.has_this && sig.returns_reference())
        .map(|sig| (ParamSlot::receiver(sig.method), ParamSlot::ret(sig.method)))
        .collect();
    'outer: for &(entry, mid) in &sources {
        for &(recv, exit) in &sinks {
            if out.len() >= max {
                break 'outer;
            }
            let Ok(spec) = PathSpec::new(vec![entry, mid, recv, exit]) else {
                continue;
            };
            if let Ok(witness) = synthesize_witness(
                program,
                interface,
                planner,
                &spec,
                InitStrategy::Instantiate,
            ) {
                out.push(witness);
            }
        }
    }
    out
}

/// Runs the full oracle-throughput pipeline.  See the [module docs](self).
///
/// # Errors
/// Returns [`FleetError`] on an unknown library name.
pub fn run_oracle_bench(config: &OracleBenchConfig) -> Result<OracleBenchReport, FleetError> {
    let recorder = if config.trace {
        Recorder::tracing()
    } else {
        Recorder::metrics()
    };
    let lib = build_library(&config.library, 0x5EED)?;
    let program = &lib.program;
    let interface = LibraryInterface::from_program(program);
    let planner = InstantiationPlanner::new(program, &interface);
    let witnesses = workload(program, &interface, &planner, config.words);
    let limits = ExecLimits::for_unit_tests();
    let builtins = BuiltinRegistry::with_defaults();

    // 2. One-time lowering, timed.
    let mut obs_lane = recorder.lane(0);
    let compile_span = obs_lane.begin();
    let t = Instant::now();
    let compiled = CompiledProgram::compile(program);
    let compile_time = t.elapsed();
    obs_lane.end(
        compile_span,
        "oracle",
        "compile",
        vec![
            ("methods", ArgValue::from(compiled.num_methods())),
            (
                "instructions",
                ArgValue::from(compiled.total_instructions()),
            ),
        ],
    );

    // 3. The measured loops: the bytecode engine runs each witness as a
    // compiled prologue (lowered once, below — the engine's `setup_ns`),
    // the tree-walker re-marshals per round as the oracle has always run
    // it.  Verdicts and steps are collected for the cross-check.
    let mut vm_run = EngineRun::default();
    let mut vm_verdicts = Vec::with_capacity(witnesses.len() * config.rounds);
    let mut scratch = VmScratch::default();
    let mut wscratch = WitnessScratch::default();

    // One-time witness lowering — the bytecode engine's setup cost,
    // timed apart from execution so the split is visible in the report.
    let t = Instant::now();
    let compiled_witnesses: Vec<CompiledWitness> =
        witnesses.iter().map(WitnessTest::compile).collect();
    vm_run.setup = t.elapsed();

    // Untimed warmup: one pass of the workload under each engine, so
    // first-run effects (allocator arenas, instruction cache, scratch
    // high-water marks, inline-cache installs, CPU frequency ramp) are
    // paid before either timer starts instead of being charged to
    // whichever engine runs first.
    {
        let mut vm = Vm::with_scratch(&compiled, &builtins, limits, scratch);
        for cw in &compiled_witnesses {
            vm.reset(limits);
            let _ = vm.run_witness(cw);
        }
        scratch = vm.into_scratch();
    }
    for witness in &witnesses {
        let mut interp = Interpreter::with_config(program, builtins.clone(), limits);
        let _ = witness.execute_with(program, &mut interp, &mut wscratch);
    }

    // The rounds are split into interleaved slices (VM, tree, VM, tree,
    // ...), each timed on its own, and every engine is additionally scored
    // by its *fastest* slice.  On a shared single-CPU host a timed region
    // can absorb arbitrary scheduler steal; one engine's bad luck would
    // otherwise masquerade as a speedup (or slowdown) of the other.
    // Interleaving spreads the luck and the best slice strips it.
    let mut tree_run = EngineRun::default();
    let mut tree_verdicts = Vec::with_capacity(witnesses.len() * config.rounds);
    let slices = config.rounds.clamp(1, 8);
    for slice in 0..slices {
        let slice_rounds = config.rounds / slices + usize::from(slice < config.rounds % slices);

        // One span per timed slice — outside the measured region's inner
        // loop, so recording cost never lands on an individual execution.
        let vm_span = obs_lane.begin();
        let t = Instant::now();
        let mut slice_execs = 0usize;
        let mut vm = Vm::with_scratch(&compiled, &builtins, limits, scratch);
        for cw in &compiled_witnesses {
            for _ in 0..slice_rounds {
                vm.reset(limits);
                let verdict = vm.run_witness(cw).unwrap_or(false);
                vm_verdicts.push(verdict);
                slice_execs += 1;
                vm_run.steps += vm.steps();
                vm_run.positives += usize::from(verdict);
            }
        }
        scratch = vm.into_scratch();
        let wall = t.elapsed();
        vm_run.executions += slice_execs;
        vm_run.wall += wall;
        vm_run.slice_rates.push(per_sec(slice_execs, wall));
        obs_lane.end(
            vm_span,
            "oracle",
            "slice.vm",
            vec![
                ("slice", ArgValue::from(slice)),
                ("executions", ArgValue::from(slice_execs)),
            ],
        );

        let tree_span = obs_lane.begin();
        let t = Instant::now();
        let mut slice_execs = 0usize;
        for witness in &witnesses {
            for _ in 0..slice_rounds {
                let mut interp = Interpreter::with_config(program, builtins.clone(), limits);
                let verdict = witness
                    .execute_with(program, &mut interp, &mut wscratch)
                    .unwrap_or(false);
                tree_verdicts.push(verdict);
                slice_execs += 1;
                tree_run.steps += interp.steps();
                tree_run.positives += usize::from(verdict);
            }
        }
        let wall = t.elapsed();
        tree_run.executions += slice_execs;
        tree_run.wall += wall;
        tree_run.slice_rates.push(per_sec(slice_execs, wall));
        obs_lane.end(
            tree_span,
            "oracle",
            "slice.tree",
            vec![
                ("slice", ArgValue::from(slice)),
                ("executions", ArgValue::from(slice_execs)),
            ],
        );
    }
    recorder.count("oracle.vm_executions", vm_run.executions as u64);
    recorder.count("oracle.tree_executions", tree_run.executions as u64);
    drop(obs_lane);

    // Optional profiling pass (`ATLAS_VM_PROFILE`): per-opcode dynamic
    // counts and inline-cache hit rates over one full workload pass, plus
    // the static adjacent-pair frequencies (measured on the *unfused*
    // lowering) that justify the superinstruction selection.  Runs after
    // the timed slices so the counter branch never executes inside a
    // measured region.
    let profile = if config.profile {
        let mut scratch = scratch;
        scratch.enable_profile();
        let mut vm = Vm::with_scratch(&compiled, &builtins, limits, scratch);
        for cw in &compiled_witnesses {
            vm.reset(limits);
            let _ = vm.run_witness(cw);
        }
        let mut scratch = vm.into_scratch();
        let prof = scratch.take_profile().expect("profile was enabled");
        let mut ops = Json::obj();
        for (kind, n) in prof.histogram() {
            ops = ops.set(kind.name(), n as usize);
        }
        let pairs: Vec<Json> = CompiledProgram::compile_unfused(program)
            .pair_frequencies()
            .into_iter()
            .take(8)
            .map(|((a, b), n)| Json::obj().set("pair", format!("{a}+{b}")).set("count", n))
            .collect();
        Some(
            Json::obj()
                .set("ops", ops)
                .set("dynamic_total", prof.total() as usize)
                .set("ic_hits", prof.ic_hits() as usize)
                .set("ic_misses", prof.ic_misses() as usize)
                .set("static_pairs", pairs),
        )
    } else {
        drop(scratch);
        None
    };

    let verdicts_identical = vm_verdicts == tree_verdicts;
    let steps_identical = vm_run.steps == tree_run.steps;
    // Best slice against best slice: compare the engines at their least
    // host-disturbed, not at their unluckiest.
    let speedup = if tree_run.best_execs_per_sec() > 0.0 {
        vm_run.best_execs_per_sec() / tree_run.best_execs_per_sec()
    } else {
        f64::INFINITY
    };

    // 4. Cross-engine inference identity: a full (small) run under each
    // engine must export byte-identical spec artifacts.
    let inference_identical = {
        let base = AtlasConfig {
            samples_per_cluster: config.identity_samples,
            clusters: lib.clusters.clone(),
            num_threads: 1,
            ..AtlasConfig::default()
        };
        let artifact = |engine: OracleEngine| {
            let cfg = AtlasConfig {
                engine,
                ..base.clone()
            };
            // Each identity leg records on its own 4096-lane stripe.
            let stripe = match engine {
                OracleEngine::Bytecode => 4096,
                OracleEngine::TreeWalk => 8192,
            };
            Engine::new(program, &interface, cfg)
                .with_recorder(recorder.with_lane_base(stripe))
                .run()
                .spec_artifact(program, &interface, SPEC_MAX_LEN, SPEC_LIMIT)
                .encode(program)
                .map(|doc| doc.render())
        };
        match (
            artifact(OracleEngine::Bytecode),
            artifact(OracleEngine::TreeWalk),
        ) {
            (Ok(a), Ok(b)) => a == b,
            _ => false,
        }
    };

    // 5. Assemble the report.
    let mut json = Json::obj()
        .set("schema", "atlas-oracle/1")
        .set(
            "config",
            Json::obj()
                .set("library", config.library.as_str())
                .set("words", witnesses.len())
                .set("rounds", config.rounds)
                .set("identity_samples", config.identity_samples),
        )
        .set(
            "compile",
            Json::obj()
                .set("methods", compiled.num_methods())
                .set("instructions", compiled.total_instructions())
                .set("fused_instructions", count_fused(&compiled))
                .set("compile_ms", compile_time.as_secs_f64() * 1e3),
        )
        .set(
            "engines",
            Json::obj()
                .set("bytecode", vm_run.json())
                .set("tree_walk", tree_run.json()),
        )
        .set("speedup", speedup)
        .set("verdicts_identical", verdicts_identical)
        .set("steps_identical", steps_identical)
        .set("inference_identical", inference_identical)
        .set("metrics", atlas_obs::metrics_snapshot(&recorder));
    if let Some(profile) = profile {
        json = json.set("profile", profile);
    }

    let mut summary = String::new();
    let _ = writeln!(
        summary,
        "workload: {} witnesses x {} rounds over {}",
        witnesses.len(),
        config.rounds,
        config.library,
    );
    let _ = writeln!(
        summary,
        "compile: {} methods -> {} instructions ({} fused) in {:.2?}",
        compiled.num_methods(),
        compiled.total_instructions(),
        count_fused(&compiled),
        compile_time,
    );
    let _ = writeln!(
        summary,
        "setup: {} witness prologues lowered in {:.2?} (excluded from throughput)",
        compiled_witnesses.len(),
        vm_run.setup,
    );
    let _ = writeln!(
        summary,
        "bytecode: {:.0} execs/sec, tree-walk: {:.0} execs/sec ({speedup:.1}x best-slice)",
        vm_run.best_execs_per_sec(),
        tree_run.best_execs_per_sec(),
    );
    let _ = writeln!(
        summary,
        "equivalence: verdicts identical={verdicts_identical}, steps identical={steps_identical}, \
         inference identical={inference_identical}",
    );
    Ok(OracleBenchReport {
        json,
        summary,
        recorder,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_report_shows_equivalent_engines() {
        let report = run_oracle_bench(&OracleBenchConfig::small()).expect("oracle bench");
        let json = &report.json;
        assert_eq!(json.get("schema"), Some(&Json::str("atlas-oracle/1")));
        assert_eq!(json.get("verdicts_identical"), Some(&Json::Bool(true)));
        assert_eq!(json.get("steps_identical"), Some(&Json::Bool(true)));
        assert_eq!(json.get("inference_identical"), Some(&Json::Bool(true)));
        let config = json.get("config").expect("config");
        let words = config.get("words").and_then(Json::as_int).unwrap();
        assert!(words > 0, "the workload must not be empty");
        let engines = json.get("engines").expect("engines");
        for engine in ["bytecode", "tree_walk"] {
            let run = engines.get(engine).expect(engine);
            let execs = run.get("executions").and_then(Json::as_int).unwrap();
            assert_eq!(execs, words * 3, "{engine} executes every round");
            assert!(run.get("steps").and_then(Json::as_int).unwrap() > 0);
            assert!(run.get("exec_ns").and_then(Json::as_int).unwrap() > 0);
            assert!(run.get("setup_ns").and_then(Json::as_int).is_some());
        }
        // The tree-walker has no separable setup; the bytecode engine's is
        // the one-time witness lowering.
        let tree_setup = engines
            .get("tree_walk")
            .and_then(|r| r.get("setup_ns"))
            .and_then(Json::as_int)
            .unwrap();
        assert_eq!(tree_setup, 0, "tree-walker setup is per-round by design");
        let compile = json.get("compile").expect("compile");
        assert!(compile.get("instructions").and_then(Json::as_int).unwrap() > 0);
        assert!(
            compile
                .get("fused_instructions")
                .and_then(Json::as_int)
                .unwrap()
                > 0,
            "the library lowering must contain fused superinstructions"
        );
        assert!(
            json.get("profile").is_none(),
            "profiling stays off by default"
        );
        assert!(report.summary.contains("inference identical=true"));
    }

    #[test]
    fn profiled_report_counts_opcodes() {
        let config = OracleBenchConfig {
            profile: true,
            ..OracleBenchConfig::small()
        };
        let report = run_oracle_bench(&config).expect("oracle bench");
        let profile = report.json.get("profile").expect("profile section");
        let total = profile.get("dynamic_total").and_then(Json::as_int).unwrap();
        assert!(total > 0, "the profiling pass must count executions");
        let ops = profile.get("ops").expect("ops histogram");
        // Every witness prologue issues calls and ends in a verdict.
        assert!(ops.get("WCall").and_then(Json::as_int).unwrap() > 0);
        assert!(ops.get("WVerdict").and_then(Json::as_int).unwrap() > 0);
        // Witnesses raw-allocate their receivers, so most field reads find
        // the field absent (nothing to install) — the hit *rate* is a
        // workload property, but every access must be counted.
        let hits = profile.get("ic_hits").and_then(Json::as_int).unwrap();
        let misses = profile.get("ic_misses").and_then(Json::as_int).unwrap();
        assert!(
            hits + misses > 0,
            "field accesses must flow through the inline caches"
        );
        match profile.get("static_pairs") {
            Some(Json::Arr(pairs)) => assert!(!pairs.is_empty(), "pair frequencies present"),
            other => panic!("static_pairs must be an array, got {other:?}"),
        }
    }

    #[test]
    fn unknown_library_errors_cleanly() {
        let config = OracleBenchConfig {
            library: "no-such-library".to_string(),
            ..OracleBenchConfig::small()
        };
        assert!(run_oracle_bench(&config).is_err());
    }
}
