//! The oracle-throughput leg: measure the bytecode VM against the
//! tree-walking interpreter on the oracle's actual inner loop, and verify
//! on the way that the two engines are observationally identical.
//!
//! One [`run_oracle_bench`] call:
//!
//! 1. builds a registered library (same fleet registry as the other legs)
//!    and enumerates a deterministic workload of two-step candidate path
//!    specifications over its interface — the `in → receiver, receiver →
//!    out` shape that dominates phase one — keeping those whose witness
//!    synthesizes;
//! 2. lowers the program to bytecode once ([`CompiledProgram::compile`]),
//!    timing the compilation and counting instructions;
//! 3. executes every witness for the configured number of rounds under
//!    each engine — one [`Vm`] [`reset`](Vm::reset) per execution (with
//!    its [`VmScratch`] carried across slices), versus a fresh
//!    [`Interpreter`] per execution as the tree-walker has always run —
//!    and records wall-clock, verdicts, and interpreter step counts.  The
//!    rounds are split into interleaved timed slices and each engine is
//!    scored by its fastest slice, so scheduler steal on a shared host
//!    cannot be misattributed to either engine;
//! 4. cross-checks the engines: per-witness verdicts and total step
//!    counts must agree, and a small end-to-end inference run under each
//!    engine must produce byte-identical spec artifacts;
//! 5. emits an `atlas-oracle/1` JSON report (executions/sec and steps/sec
//!    per engine, compile cost, speedup) plus a human summary.
//!
//! The `oracle` binary adds `--expect-speedup N`, which turns the
//! performance contract (bytecode at least `N`x the tree-walker's
//! executions/sec) and the equivalence contract into an exit code for CI.

use crate::config::{env_parse, sample_budget, trace_enabled};
use crate::fleet::{build_library, FleetError};
use crate::json::Json;
use crate::storeleg::{SPEC_LIMIT, SPEC_MAX_LEN};
use atlas_core::{AtlasConfig, Engine, OracleEngine};
use atlas_interp::{BuiltinRegistry, CompiledProgram, ExecLimits, Interpreter, Vm, VmScratch};
use atlas_ir::{LibraryInterface, ParamSlot};
use atlas_obs::{ArgValue, Recorder};
use atlas_spec::PathSpec;
use atlas_synth::{
    synthesize_witness, InitStrategy, InstantiationPlanner, WitnessScratch, WitnessTest,
};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Configuration of an oracle-throughput run.
#[derive(Debug, Clone)]
pub struct OracleBenchConfig {
    /// Registry name of the library under measurement.
    pub library: String,
    /// Maximum number of distinct witnesses in the workload.
    pub words: usize,
    /// Executions per witness per engine.
    pub rounds: usize,
    /// Phase-one sampling budget of the cross-engine identity check.
    pub identity_samples: usize,
    /// Record span events (`ATLAS_TRACE`); see `atlas-obs`.  Spans cover
    /// compilation, the timed slices, and the identity check — never the
    /// measured inner loop, and never the results.
    pub trace: bool,
}

impl OracleBenchConfig {
    /// Reads the configuration from the environment: `ATLAS_ORACLE_WORDS`
    /// and `ATLAS_ORACLE_ROUNDS` size the workload, `ATLAS_SAMPLES` (as
    /// everywhere) budgets the identity check.
    pub fn from_env() -> OracleBenchConfig {
        OracleBenchConfig {
            library: "javalib".to_string(),
            words: env_parse("ATLAS_ORACLE_WORDS").unwrap_or(64),
            rounds: env_parse("ATLAS_ORACLE_ROUNDS").unwrap_or(200),
            identity_samples: sample_budget().min(1_000),
            trace: trace_enabled(),
        }
    }

    /// A small configuration suitable for tests.
    pub fn small() -> OracleBenchConfig {
        OracleBenchConfig {
            library: "javalib-lang".to_string(),
            words: 8,
            rounds: 3,
            identity_samples: 250,
            trace: false,
        }
    }
}

/// The outcome of an oracle-throughput run: the JSON document plus a human
/// summary.
#[derive(Debug, Clone)]
pub struct OracleBenchReport {
    /// The machine-readable report (schema `atlas-oracle/1`).
    pub json: Json,
    /// A short human-readable summary.
    pub summary: String,
    /// The run's observability session (span events when
    /// [`OracleBenchConfig::trace`] was set) — feed it to
    /// [`atlas_obs::write_chrome_trace`] for the `--trace-out` sink.
    pub recorder: Recorder,
}

/// One engine's aggregate over the workload.
#[derive(Debug, Clone, Default)]
struct EngineRun {
    executions: usize,
    steps: usize,
    positives: usize,
    wall: Duration,
    /// Per-slice throughput samples (executions/sec), one per timed slice.
    slice_rates: Vec<f64>,
}

impl EngineRun {
    fn execs_per_sec(&self) -> f64 {
        per_sec(self.executions, self.wall)
    }

    /// The fastest slice's throughput — the noise-robust figure.  A timed
    /// slice can only ever be *slowed down* by the host (scheduler steal,
    /// cache pollution from neighbors), never sped up, so on a shared
    /// machine the best of several interleaved slices is the measurement
    /// closest to the code's true cost.
    fn best_execs_per_sec(&self) -> f64 {
        self.slice_rates
            .iter()
            .copied()
            .fold(self.execs_per_sec(), f64::max)
    }

    fn json(&self) -> Json {
        Json::obj()
            .set("executions", self.executions)
            .set("steps", self.steps)
            .set("positive_verdicts", self.positives)
            .set("wall_ms", self.wall.as_secs_f64() * 1e3)
            .set("execs_per_sec", self.execs_per_sec())
            .set("execs_per_sec_best", self.best_execs_per_sec())
            .set("steps_per_sec", per_sec(self.steps, self.wall))
    }
}

fn per_sec(count: usize, wall: Duration) -> f64 {
    if wall.as_secs_f64() > 0.0 {
        count as f64 / wall.as_secs_f64()
    } else {
        f64::INFINITY
    }
}

/// Enumerates the workload: two-step candidates `(entry a → receiver a,
/// receiver b → return b)` over the interface, in canonical slot order,
/// keeping the first `max` whose witness synthesizes.
fn workload(
    program: &atlas_ir::Program,
    interface: &LibraryInterface,
    planner: &InstantiationPlanner,
    max: usize,
) -> Vec<WitnessTest> {
    let mut out = Vec::new();
    let sources: Vec<(ParamSlot, ParamSlot)> = interface
        .methods()
        .iter()
        .filter(|sig| !sig.is_constructor && sig.has_this)
        .flat_map(|sig| {
            let recv = ParamSlot::receiver(sig.method);
            sig.reference_slots()
                .into_iter()
                .filter(move |s| s.is_input() && *s != recv)
                .map(move |s| (s, recv))
        })
        .collect();
    let sinks: Vec<(ParamSlot, ParamSlot)> = interface
        .methods()
        .iter()
        .filter(|sig| !sig.is_constructor && sig.has_this && sig.returns_reference())
        .map(|sig| (ParamSlot::receiver(sig.method), ParamSlot::ret(sig.method)))
        .collect();
    'outer: for &(entry, mid) in &sources {
        for &(recv, exit) in &sinks {
            if out.len() >= max {
                break 'outer;
            }
            let Ok(spec) = PathSpec::new(vec![entry, mid, recv, exit]) else {
                continue;
            };
            if let Ok(witness) = synthesize_witness(
                program,
                interface,
                planner,
                &spec,
                InitStrategy::Instantiate,
            ) {
                out.push(witness);
            }
        }
    }
    out
}

/// Runs the full oracle-throughput pipeline.  See the [module docs](self).
///
/// # Errors
/// Returns [`FleetError`] on an unknown library name.
pub fn run_oracle_bench(config: &OracleBenchConfig) -> Result<OracleBenchReport, FleetError> {
    let recorder = if config.trace {
        Recorder::tracing()
    } else {
        Recorder::metrics()
    };
    let lib = build_library(&config.library, 0x5EED)?;
    let program = &lib.program;
    let interface = LibraryInterface::from_program(program);
    let planner = InstantiationPlanner::new(program, &interface);
    let witnesses = workload(program, &interface, &planner, config.words);
    let limits = ExecLimits::for_unit_tests();
    let builtins = BuiltinRegistry::with_defaults();

    // 2. One-time lowering, timed.
    let mut obs_lane = recorder.lane(0);
    let compile_span = obs_lane.begin();
    let t = Instant::now();
    let compiled = CompiledProgram::compile(program);
    let compile_time = t.elapsed();
    obs_lane.end(
        compile_span,
        "oracle",
        "compile",
        vec![
            ("methods", ArgValue::from(compiled.num_methods())),
            (
                "instructions",
                ArgValue::from(compiled.total_instructions()),
            ),
        ],
    );

    // 3. The measured loops: a fresh engine per execution, as the oracle
    // runs them.  Verdicts and steps are collected for the cross-check.
    let mut vm_run = EngineRun::default();
    let mut vm_verdicts = Vec::with_capacity(witnesses.len() * config.rounds);
    let mut scratch = VmScratch::default();
    let mut wscratch = WitnessScratch::default();

    // Untimed warmup: one pass of the workload under each engine, so
    // first-run effects (allocator arenas, instruction cache, scratch
    // high-water marks, CPU frequency ramp) are paid before either timer
    // starts instead of being charged to whichever engine runs first.
    for witness in &witnesses {
        let mut vm = Vm::with_scratch(&compiled, &builtins, limits, scratch);
        let _ = witness.execute_with(program, &mut vm, &mut wscratch);
        scratch = vm.into_scratch();
        let mut interp = Interpreter::with_config(program, builtins.clone(), limits);
        let _ = witness.execute_with(program, &mut interp, &mut wscratch);
    }

    // The rounds are split into interleaved slices (VM, tree, VM, tree,
    // ...), each timed on its own, and every engine is additionally scored
    // by its *fastest* slice.  On a shared single-CPU host a timed region
    // can absorb arbitrary scheduler steal; one engine's bad luck would
    // otherwise masquerade as a speedup (or slowdown) of the other.
    // Interleaving spreads the luck and the best slice strips it.
    let mut tree_run = EngineRun::default();
    let mut tree_verdicts = Vec::with_capacity(witnesses.len() * config.rounds);
    let slices = config.rounds.clamp(1, 8);
    for slice in 0..slices {
        let slice_rounds = config.rounds / slices + usize::from(slice < config.rounds % slices);

        // One span per timed slice — outside the measured region's inner
        // loop, so recording cost never lands on an individual execution.
        let vm_span = obs_lane.begin();
        let t = Instant::now();
        let mut slice_execs = 0usize;
        let mut vm = Vm::with_scratch(&compiled, &builtins, limits, scratch);
        for witness in &witnesses {
            for _ in 0..slice_rounds {
                vm.reset(limits);
                let verdict = witness
                    .execute_with(program, &mut vm, &mut wscratch)
                    .unwrap_or(false);
                vm_verdicts.push(verdict);
                slice_execs += 1;
                vm_run.steps += vm.steps();
                vm_run.positives += usize::from(verdict);
            }
        }
        scratch = vm.into_scratch();
        let wall = t.elapsed();
        vm_run.executions += slice_execs;
        vm_run.wall += wall;
        vm_run.slice_rates.push(per_sec(slice_execs, wall));
        obs_lane.end(
            vm_span,
            "oracle",
            "slice.vm",
            vec![
                ("slice", ArgValue::from(slice)),
                ("executions", ArgValue::from(slice_execs)),
            ],
        );

        let tree_span = obs_lane.begin();
        let t = Instant::now();
        let mut slice_execs = 0usize;
        for witness in &witnesses {
            for _ in 0..slice_rounds {
                let mut interp = Interpreter::with_config(program, builtins.clone(), limits);
                let verdict = witness
                    .execute_with(program, &mut interp, &mut wscratch)
                    .unwrap_or(false);
                tree_verdicts.push(verdict);
                slice_execs += 1;
                tree_run.steps += interp.steps();
                tree_run.positives += usize::from(verdict);
            }
        }
        let wall = t.elapsed();
        tree_run.executions += slice_execs;
        tree_run.wall += wall;
        tree_run.slice_rates.push(per_sec(slice_execs, wall));
        obs_lane.end(
            tree_span,
            "oracle",
            "slice.tree",
            vec![
                ("slice", ArgValue::from(slice)),
                ("executions", ArgValue::from(slice_execs)),
            ],
        );
    }
    recorder.count("oracle.vm_executions", vm_run.executions as u64);
    recorder.count("oracle.tree_executions", tree_run.executions as u64);
    drop(obs_lane);

    let verdicts_identical = vm_verdicts == tree_verdicts;
    let steps_identical = vm_run.steps == tree_run.steps;
    // Best slice against best slice: compare the engines at their least
    // host-disturbed, not at their unluckiest.
    let speedup = if tree_run.best_execs_per_sec() > 0.0 {
        vm_run.best_execs_per_sec() / tree_run.best_execs_per_sec()
    } else {
        f64::INFINITY
    };

    // 4. Cross-engine inference identity: a full (small) run under each
    // engine must export byte-identical spec artifacts.
    let inference_identical = {
        let base = AtlasConfig {
            samples_per_cluster: config.identity_samples,
            clusters: lib.clusters.clone(),
            num_threads: 1,
            ..AtlasConfig::default()
        };
        let artifact = |engine: OracleEngine| {
            let cfg = AtlasConfig {
                engine,
                ..base.clone()
            };
            // Each identity leg records on its own 4096-lane stripe.
            let stripe = match engine {
                OracleEngine::Bytecode => 4096,
                OracleEngine::TreeWalk => 8192,
            };
            Engine::new(program, &interface, cfg)
                .with_recorder(recorder.with_lane_base(stripe))
                .run()
                .spec_artifact(program, &interface, SPEC_MAX_LEN, SPEC_LIMIT)
                .encode(program)
                .map(|doc| doc.render())
        };
        match (
            artifact(OracleEngine::Bytecode),
            artifact(OracleEngine::TreeWalk),
        ) {
            (Ok(a), Ok(b)) => a == b,
            _ => false,
        }
    };

    // 5. Assemble the report.
    let json = Json::obj()
        .set("schema", "atlas-oracle/1")
        .set(
            "config",
            Json::obj()
                .set("library", config.library.as_str())
                .set("words", witnesses.len())
                .set("rounds", config.rounds)
                .set("identity_samples", config.identity_samples),
        )
        .set(
            "compile",
            Json::obj()
                .set("methods", compiled.num_methods())
                .set("instructions", compiled.total_instructions())
                .set("compile_ms", compile_time.as_secs_f64() * 1e3),
        )
        .set(
            "engines",
            Json::obj()
                .set("bytecode", vm_run.json())
                .set("tree_walk", tree_run.json()),
        )
        .set("speedup", speedup)
        .set("verdicts_identical", verdicts_identical)
        .set("steps_identical", steps_identical)
        .set("inference_identical", inference_identical)
        .set("metrics", atlas_obs::metrics_snapshot(&recorder));

    let mut summary = String::new();
    let _ = writeln!(
        summary,
        "workload: {} witnesses x {} rounds over {}",
        witnesses.len(),
        config.rounds,
        config.library,
    );
    let _ = writeln!(
        summary,
        "compile: {} methods -> {} instructions in {:.2?}",
        compiled.num_methods(),
        compiled.total_instructions(),
        compile_time,
    );
    let _ = writeln!(
        summary,
        "bytecode: {:.0} execs/sec, tree-walk: {:.0} execs/sec ({speedup:.1}x best-slice)",
        vm_run.best_execs_per_sec(),
        tree_run.best_execs_per_sec(),
    );
    let _ = writeln!(
        summary,
        "equivalence: verdicts identical={verdicts_identical}, steps identical={steps_identical}, \
         inference identical={inference_identical}",
    );
    Ok(OracleBenchReport {
        json,
        summary,
        recorder,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_report_shows_equivalent_engines() {
        let report = run_oracle_bench(&OracleBenchConfig::small()).expect("oracle bench");
        let json = &report.json;
        assert_eq!(json.get("schema"), Some(&Json::str("atlas-oracle/1")));
        assert_eq!(json.get("verdicts_identical"), Some(&Json::Bool(true)));
        assert_eq!(json.get("steps_identical"), Some(&Json::Bool(true)));
        assert_eq!(json.get("inference_identical"), Some(&Json::Bool(true)));
        let config = json.get("config").expect("config");
        let words = config.get("words").and_then(Json::as_int).unwrap();
        assert!(words > 0, "the workload must not be empty");
        let engines = json.get("engines").expect("engines");
        for engine in ["bytecode", "tree_walk"] {
            let run = engines.get(engine).expect(engine);
            let execs = run.get("executions").and_then(Json::as_int).unwrap();
            assert_eq!(execs, words * 3, "{engine} executes every round");
            assert!(run.get("steps").and_then(Json::as_int).unwrap() > 0);
        }
        let compile = json.get("compile").expect("compile");
        assert!(compile.get("instructions").and_then(Json::as_int).unwrap() > 0);
        assert!(report.summary.contains("inference identical=true"));
    }

    #[test]
    fn unknown_library_errors_cleanly() {
        let config = OracleBenchConfig {
            library: "no-such-library".to_string(),
            ..OracleBenchConfig::small()
        };
        assert!(run_oracle_bench(&config).is_err());
    }
}
