//! The source→collection→sink access patterns that benchmark apps are
//! assembled from.

use atlas_ir::builder::MethodBuilder;
use atlas_ir::{BinOp, Type, Var};

/// The collection-access pattern used by one code block of an app.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternKind {
    /// Send the source value directly to the sink (no library involvement).
    Direct,
    /// `ArrayList.add` / `ArrayList.get`.
    ListGet,
    /// `ArrayList.add` / `iterator()` / `next()`.
    ListIterator,
    /// `ArrayList.add` / `subList()` / `get()`.
    ListSubList,
    /// `Stack.push` / `Stack.pop`.
    StackPushPop,
    /// `Vector.addElement` / `Vector.firstElement`.
    VectorElements,
    /// `LinkedList.offer` / `LinkedList.poll`.
    LinkedQueue,
    /// `ArrayDeque.addLast` / `pollFirst`.
    DequeEnds,
    /// `PriorityQueue.offer` / `peek`.
    PriorityPeek,
    /// `HashMap.put` / `HashMap.get`.
    MapGet,
    /// `HashMap.put` / `values()` / `get(0)`.
    MapValues,
    /// `HashMap.put` / `entrySet()` / `get(0)` / `getValue()`.
    MapEntrySet,
    /// `Hashtable.put` / `Hashtable.get`.
    HashtableGet,
    /// `HashSet.add` / `toList()` / `get(0)`.
    SetToList,
    /// `Collections.singletonList` / `get(0)`.
    SingletonList,
    /// `StringBuilder.append` / send the builder itself.
    BuilderAppend,
    /// `Optional.of` / `Optional.get`.
    OptionalGet,
}

/// All patterns, in a fixed order (used for round-robin selection).
pub const ALL_PATTERNS: &[PatternKind] = &[
    PatternKind::Direct,
    PatternKind::ListGet,
    PatternKind::ListIterator,
    PatternKind::ListSubList,
    PatternKind::StackPushPop,
    PatternKind::VectorElements,
    PatternKind::LinkedQueue,
    PatternKind::DequeEnds,
    PatternKind::PriorityPeek,
    PatternKind::MapGet,
    PatternKind::MapValues,
    PatternKind::MapEntrySet,
    PatternKind::HashtableGet,
    PatternKind::SetToList,
    PatternKind::SingletonList,
    PatternKind::BuilderAppend,
    PatternKind::OptionalGet,
];

impl PatternKind {
    /// Whether the handwritten specification corpus covers every library
    /// method this pattern routes sensitive data through (used to predict
    /// which flows the handwritten specifications can find).
    pub fn covered_by_handwritten(self) -> bool {
        matches!(
            self,
            PatternKind::Direct
                | PatternKind::ListGet
                | PatternKind::StackPushPop
                | PatternKind::MapGet
                | PatternKind::BuilderAppend
        )
    }

    /// Emits the code that moves `payload` through the pattern's collection
    /// and returns the variable holding the retrieved value to be sent to
    /// the sink.  `tag` makes the generated local names unique.
    pub fn emit(self, m: &mut MethodBuilder<'_, '_>, payload: Var, tag: usize) -> Var {
        match self {
            PatternKind::Direct => payload,
            PatternKind::ListGet => {
                let list = new_collection(m, "ArrayList", tag);
                let add = m.mref("ArrayList", "add");
                m.call(None, add, Some(list), &[payload]);
                let get = m.mref("ArrayList", "get");
                let zero = m.local(&format!("zero{tag}"), Type::Int);
                m.const_int(zero, 0);
                let out = m.local(&format!("out{tag}"), Type::object());
                m.call(Some(out), get, Some(list), &[zero]);
                out
            }
            PatternKind::ListIterator => {
                let list = new_collection(m, "ArrayList", tag);
                let add = m.mref("ArrayList", "add");
                m.call(None, add, Some(list), &[payload]);
                let iterator = m.mref("ArrayList", "iterator");
                let it = m.local(&format!("it{tag}"), Type::class("ArrayListIterator"));
                m.call(Some(it), iterator, Some(list), &[]);
                let next = m.mref("ArrayListIterator", "next");
                let out = m.local(&format!("out{tag}"), Type::object());
                m.call(Some(out), next, Some(it), &[]);
                out
            }
            PatternKind::ListSubList => {
                let list = new_collection(m, "ArrayList", tag);
                let add = m.mref("ArrayList", "add");
                m.call(None, add, Some(list), &[payload]);
                let sub_list = m.mref("ArrayList", "subList");
                let zero = m.local(&format!("zero{tag}"), Type::Int);
                let one = m.local(&format!("one{tag}"), Type::Int);
                m.const_int(zero, 0);
                m.const_int(one, 1);
                let sub = m.local(&format!("sub{tag}"), Type::class("ArrayList"));
                m.call(Some(sub), sub_list, Some(list), &[zero, one]);
                let get = m.mref("ArrayList", "get");
                let out = m.local(&format!("out{tag}"), Type::object());
                m.call(Some(out), get, Some(sub), &[zero]);
                out
            }
            PatternKind::StackPushPop => {
                let stack = new_collection(m, "Stack", tag);
                let push = m.mref("Stack", "push");
                m.call(None, push, Some(stack), &[payload]);
                let pop = m.mref("Stack", "pop");
                let out = m.local(&format!("out{tag}"), Type::object());
                m.call(Some(out), pop, Some(stack), &[]);
                out
            }
            PatternKind::VectorElements => {
                let vector = new_collection(m, "Vector", tag);
                let add = m.mref("Vector", "addElement");
                m.call(None, add, Some(vector), &[payload]);
                let first = m.mref("Vector", "firstElement");
                let out = m.local(&format!("out{tag}"), Type::object());
                m.call(Some(out), first, Some(vector), &[]);
                out
            }
            PatternKind::LinkedQueue => {
                let list = new_collection(m, "LinkedList", tag);
                let offer = m.mref("LinkedList", "offer");
                m.call(None, offer, Some(list), &[payload]);
                let poll = m.mref("LinkedList", "poll");
                let out = m.local(&format!("out{tag}"), Type::object());
                m.call(Some(out), poll, Some(list), &[]);
                out
            }
            PatternKind::DequeEnds => {
                let deque = new_collection(m, "ArrayDeque", tag);
                let add_last = m.mref("ArrayDeque", "addLast");
                m.call(None, add_last, Some(deque), &[payload]);
                let poll_first = m.mref("ArrayDeque", "pollFirst");
                let out = m.local(&format!("out{tag}"), Type::object());
                m.call(Some(out), poll_first, Some(deque), &[]);
                out
            }
            PatternKind::PriorityPeek => {
                let queue = new_collection(m, "PriorityQueue", tag);
                let offer = m.mref("PriorityQueue", "offer");
                m.call(None, offer, Some(queue), &[payload]);
                let peek = m.mref("PriorityQueue", "peek");
                let out = m.local(&format!("out{tag}"), Type::object());
                m.call(Some(out), peek, Some(queue), &[]);
                out
            }
            PatternKind::MapGet | PatternKind::HashtableGet => {
                let class = if self == PatternKind::MapGet {
                    "HashMap"
                } else {
                    "Hashtable"
                };
                let map = new_collection(m, class, tag);
                let key = fresh_object(m, tag);
                let put = m.mref(class, "put");
                m.call(None, put, Some(map), &[key, payload]);
                let get = m.mref(class, "get");
                let out = m.local(&format!("out{tag}"), Type::object());
                m.call(Some(out), get, Some(map), &[key]);
                out
            }
            PatternKind::MapValues => {
                let map = new_collection(m, "HashMap", tag);
                let key = fresh_object(m, tag);
                let put = m.mref("HashMap", "put");
                m.call(None, put, Some(map), &[key, payload]);
                let values = m.mref("HashMap", "values");
                let vals = m.local(&format!("vals{tag}"), Type::class("ArrayList"));
                m.call(Some(vals), values, Some(map), &[]);
                let get = m.mref("ArrayList", "get");
                let zero = m.local(&format!("zero{tag}"), Type::Int);
                m.const_int(zero, 0);
                let out = m.local(&format!("out{tag}"), Type::object());
                m.call(Some(out), get, Some(vals), &[zero]);
                out
            }
            PatternKind::MapEntrySet => {
                let map = new_collection(m, "HashMap", tag);
                let key = fresh_object(m, tag);
                let put = m.mref("HashMap", "put");
                m.call(None, put, Some(map), &[key, payload]);
                let entry_set = m.mref("HashMap", "entrySet");
                let entries = m.local(&format!("entries{tag}"), Type::class("ArrayList"));
                m.call(Some(entries), entry_set, Some(map), &[]);
                let get = m.mref("ArrayList", "get");
                let zero = m.local(&format!("zero{tag}"), Type::Int);
                m.const_int(zero, 0);
                let entry = m.local(&format!("entry{tag}"), Type::class("Entry"));
                m.call(Some(entry), get, Some(entries), &[zero]);
                let get_value = m.mref("Entry", "getValue");
                let out = m.local(&format!("out{tag}"), Type::object());
                m.call(Some(out), get_value, Some(entry), &[]);
                out
            }
            PatternKind::SetToList => {
                let set = new_collection(m, "HashSet", tag);
                let add = m.mref("HashSet", "add");
                m.call(None, add, Some(set), &[payload]);
                let to_list = m.mref("HashSet", "toList");
                let list = m.local(&format!("keys{tag}"), Type::class("ArrayList"));
                m.call(Some(list), to_list, Some(set), &[]);
                let get = m.mref("ArrayList", "get");
                let zero = m.local(&format!("zero{tag}"), Type::Int);
                m.const_int(zero, 0);
                let out = m.local(&format!("out{tag}"), Type::object());
                m.call(Some(out), get, Some(list), &[zero]);
                out
            }
            PatternKind::SingletonList => {
                let singleton = m.mref("Collections", "singletonList");
                let list = m.local(&format!("list{tag}"), Type::class("ArrayList"));
                m.call(Some(list), singleton, None, &[payload]);
                let get = m.mref("ArrayList", "get");
                let zero = m.local(&format!("zero{tag}"), Type::Int);
                m.const_int(zero, 0);
                let out = m.local(&format!("out{tag}"), Type::object());
                m.call(Some(out), get, Some(list), &[zero]);
                out
            }
            PatternKind::BuilderAppend => {
                let sb = new_collection(m, "StringBuilder", tag);
                let append = m.mref("StringBuilder", "append");
                let chained = m.local(&format!("chained{tag}"), Type::class("StringBuilder"));
                m.call(Some(chained), append, Some(sb), &[payload]);
                chained
            }
            PatternKind::OptionalGet => {
                let of = m.mref("Optional", "of");
                let opt = m.local(&format!("opt{tag}"), Type::class("Optional"));
                m.call(Some(opt), of, None, &[payload]);
                let get = m.mref("Optional", "get");
                let out = m.local(&format!("out{tag}"), Type::object());
                m.call(Some(out), get, Some(opt), &[]);
                out
            }
        }
    }
}

/// Allocates and constructs a library collection object.
fn new_collection(m: &mut MethodBuilder<'_, '_>, class: &str, tag: usize) -> Var {
    let v = m.local(
        &format!("{}{tag}", class.to_lowercase()),
        Type::class(class),
    );
    let class_id = m.cref(class);
    m.new_object(v, class_id);
    let ctor = m.mref(class, "<init>");
    m.call(None, ctor, Some(v), &[]);
    v
}

/// Allocates a plain `Object` (used as map keys and benign payloads).
fn fresh_object(m: &mut MethodBuilder<'_, '_>, tag: usize) -> Var {
    let v = m.local(&format!("obj{tag}"), Type::object());
    let class_id = m.cref("Object");
    m.new_object(v, class_id);
    let ctor = m.mref("Object", "<init>");
    m.call(None, ctor, Some(v), &[]);
    v
}

/// Emits a block of benign "filler" code: integer arithmetic in a loop and a
/// collection churned with non-sensitive objects.  Returns the number of
/// statements emitted (roughly).
pub fn emit_filler(m: &mut MethodBuilder<'_, '_>, tag: usize, rounds: i64) -> usize {
    let i = m.local(&format!("fi{tag}"), Type::Int);
    let n = m.local(&format!("fn{tag}"), Type::Int);
    let one = m.local(&format!("fone{tag}"), Type::Int);
    let acc = m.local(&format!("facc{tag}"), Type::Int);
    let cond = m.local(&format!("fcond{tag}"), Type::Bool);
    m.const_int(i, 0);
    m.const_int(n, rounds);
    m.const_int(one, 1);
    m.const_int(acc, 0);
    let list = new_collection(m, "ArrayList", 10_000 + tag);
    let add = m.mref("ArrayList", "add");
    let filler_obj = fresh_object(m, 10_000 + tag);
    m.while_stmt(
        |m| {
            m.bin(cond, BinOp::Lt, i, n);
            cond
        },
        |m| {
            m.bin(acc, BinOp::Add, acc, i);
            m.bin(acc, BinOp::Mul, acc, one);
            m.call(None, add, Some(list), &[filler_obj]);
            m.bin(i, BinOp::Add, i, one);
        },
    );
    12
}
