//! Deterministic generation of the synthetic benchmark suite.

use crate::patterns::{emit_filler, PatternKind, ALL_PATTERNS};
use atlas_ir::builder::{MethodBuilder, ProgramBuilder};
use atlas_ir::{pretty, MethodId, Program, Type, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Configuration of the generated suite.
///
/// The diversity knobs (`min_patterns`/`max_patterns`, `leak_rate`,
/// `benign_sink_rate`, `size_factor`) shape the scenario mix: how many
/// access patterns each app exercises, how many of them actually leak, how
/// many route benign payloads into sinks (false-positive bait), and how far
/// app sizes spread.  The defaults reproduce the historical suite exactly,
/// draw for draw.
#[derive(Debug, Clone)]
pub struct AppConfig {
    /// Number of apps to generate (the paper uses 46).
    pub count: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Minimum number of access patterns per app.
    pub min_patterns: usize,
    /// Maximum number of access patterns per app (inclusive); values below
    /// `min_patterns` are treated as `min_patterns`.
    pub max_patterns: usize,
    /// Probability that a pattern is a leak (source → pattern → sink).
    pub leak_rate: f64,
    /// Probability that a pattern routes a *benign* payload into a sink —
    /// these must never be reported, so they exercise precision.
    pub benign_sink_rate: f64,
    /// Multiplier on the filler-code blocks that spread app sizes; `1` is
    /// the historical spread (about an order of magnitude of client LoC).
    pub size_factor: usize,
}

impl Default for AppConfig {
    fn default() -> Self {
        AppConfig {
            count: 46,
            seed: 0xA71A5,
            min_patterns: 3,
            max_patterns: 12,
            leak_rate: 0.6,
            benign_sink_rate: 0.2,
            size_factor: 1,
        }
    }
}

/// One generated benchmark app.
#[derive(Debug, Clone)]
pub struct GeneratedApp {
    /// App name (`app00`, `app01`, …).
    pub name: String,
    /// The complete program: modeled library plus the app's client class.
    pub program: Program,
    /// The app's entry point.
    pub entry: MethodId,
    /// The access patterns used, with a flag telling whether the pattern
    /// carries sensitive data to a sink.
    pub patterns: Vec<(PatternKind, bool)>,
    /// The ground-truth set of leaking `(source, sink)` qualified-name pairs.
    pub leaky_pairs: BTreeSet<(String, String)>,
    /// The subset of `leaky_pairs` whose every library step is covered by
    /// the handwritten specification corpus.
    pub leaky_pairs_handwritten: BTreeSet<(String, String)>,
    /// Client-side Jimple lines of code (the Figure 8 size metric).
    pub client_loc: usize,
}

impl GeneratedApp {
    /// The subset of ground-truth leaks whose every library step is covered
    /// by the handwritten specification corpus.
    pub fn handwritten_detectable_pairs(&self) -> BTreeSet<(String, String)> {
        self.leaky_pairs_handwritten.clone()
    }
}

/// The sources available to generated apps: (receiver class, method name).
const SOURCES: &[(&str, &str)] = &[
    ("TelephonyManager", "getDeviceId"),
    ("TelephonyManager", "getSubscriberId"),
    ("LocationManager", "getLastKnownLocation"),
    ("ContactsProvider", "getContacts"),
    ("SmsInbox", "getMessages"),
];

/// The sinks available to generated apps: (receiver class, method name).
const SINKS: &[(&str, &str)] = &[
    ("SmsManager", "sendTextMessage"),
    ("HttpClient", "post"),
    ("Logger", "leak"),
];

/// Generates the full benchmark suite.
pub fn generate_suite(config: &AppConfig) -> Vec<GeneratedApp> {
    (0..config.count)
        .map(|i| generate_app_with(config, i))
        .collect()
}

/// Generates a single app with the default diversity knobs (historical
/// suite shape).
pub fn generate_app(index: usize, seed: u64) -> GeneratedApp {
    generate_app_with(
        &AppConfig {
            seed,
            ..AppConfig::default()
        },
        index,
    )
}

/// Generates a single app under the given configuration.
pub fn generate_app_with(config: &AppConfig, index: usize) -> GeneratedApp {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(index as u64));
    let mut pb = ProgramBuilder::new();
    atlas_javalib::install_library(&mut pb);

    let name = format!("app{index:02}");
    let class_name = format!("App{index:02}");
    let mut app_class = pb.class(&class_name);
    let mut run = app_class.static_method("run");

    // A max below min is a configuration error; treat it as "exactly min"
    // rather than panicking deep inside suite generation.
    let max_patterns = config.max_patterns.max(config.min_patterns);
    let spread = max_patterns - config.min_patterns + 1;
    let num_patterns = config.min_patterns + rng.gen_range(0..spread);
    let mut patterns = Vec::new();
    let mut leaky_pairs = BTreeSet::new();
    let mut leaky_pairs_handwritten = BTreeSet::new();
    for t in 0..num_patterns {
        let kind = ALL_PATTERNS[rng.gen_range(0..ALL_PATTERNS.len())];
        let roll: f64 = rng.gen();
        if roll < config.leak_rate {
            // Leaky: source → pattern → sink.
            let source = SOURCES[rng.gen_range(0..SOURCES.len())];
            let sink = SINKS[rng.gen_range(0..SINKS.len())];
            let payload = emit_source(&mut run, source, t);
            let retrieved = kind.emit(&mut run, payload, t);
            emit_sink(&mut run, sink, retrieved, t);
            let pair = (
                format!("{}.{}", source.0, source.1),
                format!("{}.{}", sink.0, sink.1),
            );
            if kind.covered_by_handwritten() {
                leaky_pairs_handwritten.insert(pair.clone());
            }
            leaky_pairs.insert(pair);
            patterns.push((kind, true));
        } else if roll < config.leak_rate + config.benign_sink_rate {
            // Benign payload reaches a sink: must NOT be reported.
            let sink = SINKS[rng.gen_range(0..SINKS.len())];
            let payload = emit_benign_payload(&mut run, t);
            let retrieved = kind.emit(&mut run, payload, t);
            emit_sink(&mut run, sink, retrieved, t);
            patterns.push((kind, false));
        } else {
            // Sensitive data retrieved but never sent anywhere.
            let source = SOURCES[rng.gen_range(0..SOURCES.len())];
            let payload = emit_source(&mut run, source, t);
            let _ = kind.emit(&mut run, payload, t);
            patterns.push((kind, false));
        }
    }
    // Filler code to spread app sizes over an order of magnitude.
    let filler_blocks = (1 + (index % 8) * (1 + index / 12)) * config.size_factor.max(1);
    for b in 0..filler_blocks {
        emit_filler(&mut run, 100 + b, 16);
    }
    run.ret(None);
    let entry = run.finish();
    app_class.build();
    pb.add_entry_point(entry);
    let program = pb.build();
    let client_loc = pretty::jimple_loc_client(&program);

    GeneratedApp {
        name,
        program,
        entry,
        patterns,
        leaky_pairs,
        leaky_pairs_handwritten,
        client_loc,
    }
}

/// Emits a call to a source method and returns the variable holding the
/// sensitive value.
fn emit_source(m: &mut MethodBuilder<'_, '_>, source: (&str, &str), tag: usize) -> Var {
    let (class, method) = source;
    let recv = m.local(&format!("src_recv{tag}"), Type::class(class));
    let class_id = m.cref(class);
    m.new_object(recv, class_id);
    let ctor = m.mref(class, "<init>");
    m.call(None, ctor, Some(recv), &[]);
    let target = m.mref(class, method);
    let out = m.local(&format!("secret{tag}"), Type::object());
    if method == "getLastKnownLocation" {
        let provider = m.local(&format!("provider{tag}"), Type::class("String"));
        m.const_null(provider);
        m.call(Some(out), target, Some(recv), &[provider]);
    } else {
        m.call(Some(out), target, Some(recv), &[]);
    }
    out
}

/// Emits a call to a sink method with the given payload.
fn emit_sink(m: &mut MethodBuilder<'_, '_>, sink: (&str, &str), payload: Var, tag: usize) {
    let (class, method) = sink;
    let recv = m.local(&format!("sink_recv{tag}"), Type::class(class));
    let class_id = m.cref(class);
    m.new_object(recv, class_id);
    let ctor = m.mref(class, "<init>");
    m.call(None, ctor, Some(recv), &[]);
    let target = m.mref(class, method);
    if method == "sendTextMessage" {
        let dest = m.local(&format!("dest{tag}"), Type::class("String"));
        m.const_null(dest);
        m.call(None, target, Some(recv), &[payload, dest]);
    } else {
        m.call(None, target, Some(recv), &[payload]);
    }
}

/// Emits a benign (non-sensitive) payload object.
fn emit_benign_payload(m: &mut MethodBuilder<'_, '_>, tag: usize) -> Var {
    let v = m.local(&format!("benign{tag}"), Type::object());
    let class_id = m.cref("Object");
    m.new_object(v, class_id);
    let ctor = m.mref("Object", "<init>");
    m.call(None, ctor, Some(v), &[]);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_varied() {
        let a = generate_app(3, 99);
        let b = generate_app(3, 99);
        assert_eq!(a.patterns, b.patterns);
        assert_eq!(a.leaky_pairs, b.leaky_pairs);
        assert_eq!(a.client_loc, b.client_loc);
        assert_eq!(a.name, "app03");
        assert!(a.program.method_qualified("App03.run").is_some());
        assert!(a.client_loc > 20);
        // Handwritten-detectable leaks are a subset of all leaks.
        for pair in a.handwritten_detectable_pairs() {
            assert!(a.leaky_pairs.contains(&pair));
        }
    }

    #[test]
    fn diversity_knobs_shape_the_suite() {
        // Defaults reproduce the historical generator draw for draw.
        let historical = generate_app(5, 42);
        let explicit = generate_app_with(
            &AppConfig {
                seed: 42,
                ..AppConfig::default()
            },
            5,
        );
        assert_eq!(historical.patterns, explicit.patterns);
        assert_eq!(historical.client_loc, explicit.client_loc);

        // More patterns, all leaky: every app gets exactly the configured
        // pattern count and at least one leak.
        let leaky = AppConfig {
            count: 6,
            seed: 9,
            min_patterns: 14,
            max_patterns: 14,
            leak_rate: 1.0,
            benign_sink_rate: 0.0,
            ..AppConfig::default()
        };
        for app in generate_suite(&leaky) {
            assert_eq!(app.patterns.len(), 14);
            assert!(app.patterns.iter().all(|(_, leaks)| *leaks));
            assert!(!app.leaky_pairs.is_empty());
        }

        // leak_rate 0 with benign sinks only: no leaks anywhere.
        let benign = AppConfig {
            count: 6,
            seed: 9,
            leak_rate: 0.0,
            benign_sink_rate: 1.0,
            ..AppConfig::default()
        };
        for app in generate_suite(&benign) {
            assert!(app.leaky_pairs.is_empty());
            assert!(app.patterns.iter().all(|(_, leaks)| !leaks));
        }

        // size_factor scales the filler code.
        let small = generate_app_with(
            &AppConfig {
                seed: 7,
                ..AppConfig::default()
            },
            3,
        );
        let big = generate_app_with(
            &AppConfig {
                seed: 7,
                size_factor: 4,
                ..AppConfig::default()
            },
            3,
        );
        assert!(big.client_loc > small.client_loc);
        assert_eq!(small.patterns, big.patterns, "knob only affects filler");
    }

    #[test]
    fn suite_has_varied_sizes_and_some_leaks() {
        let config = AppConfig {
            count: 12,
            seed: 7,
            ..AppConfig::default()
        };
        let suite = generate_suite(&config);
        assert_eq!(suite.len(), 12);
        let min = suite.iter().map(|a| a.client_loc).min().unwrap();
        let max = suite.iter().map(|a| a.client_loc).max().unwrap();
        assert!(max > min * 2, "sizes should vary: min={min} max={max}");
        assert!(suite.iter().any(|a| !a.leaky_pairs.is_empty()));
        // Entry points registered.
        for app in &suite {
            assert_eq!(app.program.entry_points(), &[app.entry]);
        }
    }
}
