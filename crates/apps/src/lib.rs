//! # atlas-apps
//!
//! A deterministic generator of synthetic "Android app" benchmark programs.
//!
//! The paper evaluates on 46 closed-source Android apps (utility apps and
//! games, a subset of which leak sensitive user data).  Those apps are not
//! available, so this crate generates a suite of synthetic clients with the
//! same *shape*: each app obtains sensitive values from the modeled Android
//! sources (device id, location, contacts, SMS inbox), moves them through
//! the modeled collection classes using a randomly chosen mix of access
//! patterns, and sends some of them to sinks (SMS, HTTP, log).  App sizes
//! vary over more than an order of magnitude, leaks are known by
//! construction, and generation is fully deterministic given the seed.

#![warn(missing_docs)]

pub mod generator;
pub mod mutate;
pub mod patterns;
pub mod registry;
pub mod synthlib;

pub use generator::{generate_app, generate_app_with, generate_suite, AppConfig, GeneratedApp};
pub use mutate::{mutate_library, MutatedLibrary, MutationConfig, MutationError};
pub use patterns::PatternKind;
pub use registry::{build_library, registry_names, RegistryError, RegistryLibrary};
pub use synthlib::{
    generate_library, AliasingMix, AliasingPattern, SynthLibConfig, SyntheticLibrary,
};
