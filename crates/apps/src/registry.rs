//! The library registry: every library the tooling can build by name.
//!
//! The registry unifies the two library sources —
//!
//! * the handwritten `atlas-javalib` variants (module subsets with their
//!   own clusters and ground-truth corpora), and
//! * the deterministic synthetic libraries from [`crate::synthlib`],
//!   parameterized by a seed so a population can be re-drawn without
//!   touching code —
//!
//! behind one [`build_library`] call.  The fleet pipeline, the
//! incremental bench leg, and the resident service (`atlas-serve`) all
//! resolve their library configuration through this module, so a registry
//! name means the same program content everywhere.

use crate::synthlib::{generate_library, AliasingMix, SynthLibConfig};
use atlas_ir::{ClassId, MethodId, Program, Stmt};
use atlas_javalib::{variant_named, VARIANTS};
use std::collections::BTreeMap;
use std::fmt;

/// One registered library, built and ready for inference.
#[derive(Debug)]
pub struct RegistryLibrary {
    /// Registry name.
    pub name: String,
    /// The library program.
    pub program: Program,
    /// Resolved inference clusters.
    pub clusters: Vec<Vec<ClassId>>,
    /// Reference corpus for precision/recall scoring.
    pub ground_truth: BTreeMap<MethodId, Vec<Stmt>>,
}

/// An error raised when a registry name resolves to nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The requested name is not in the registry.
    UnknownLibrary(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownLibrary(name) => write!(
                f,
                "unknown library '{name}' (registered: {})",
                registry_names().join(", ")
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The synthetic members of the registry, parameterized by the fleet seed
/// so a fleet can be re-drawn without touching code.
fn synth_config(name: &str, seed: u64) -> Option<SynthLibConfig> {
    let base = SynthLibConfig {
        name: name.to_string(),
        seed,
        ..SynthLibConfig::default()
    };
    match name {
        "synth-small" => Some(SynthLibConfig {
            classes: 3,
            min_fields: 1,
            max_fields: 1,
            ..base
        }),
        "synth-aliasing" => Some(SynthLibConfig {
            classes: 4,
            min_fields: 1,
            max_fields: 2,
            mix: AliasingMix {
                direct: 2,
                chained: 3,
                transfer: 3,
                passthrough: 1,
            },
            seed: seed.wrapping_add(1),
            ..base
        }),
        "synth-wide" => Some(SynthLibConfig {
            classes: 6,
            min_fields: 1,
            max_fields: 3,
            body_spread: 3,
            seed: seed.wrapping_add(2),
            ..base
        }),
        _ => None,
    }
}

/// Names of the synthetic registry members.
const SYNTH_NAMES: &[&str] = &["synth-small", "synth-aliasing", "synth-wide"];

/// Every library name the registry knows: the `atlas-javalib` variants
/// followed by the synthetic libraries.
pub fn registry_names() -> Vec<&'static str> {
    VARIANTS
        .iter()
        .map(|v| v.name)
        .chain(SYNTH_NAMES.iter().copied())
        .collect()
}

/// Builds one registered library by name.
///
/// # Errors
/// Returns [`RegistryError::UnknownLibrary`] for a name outside the
/// registry.
pub fn build_library(name: &str, synth_seed: u64) -> Result<RegistryLibrary, RegistryError> {
    if let Some(variant) = variant_named(name) {
        let program = variant.build_program();
        let clusters = variant.cluster_ids(&program);
        let ground_truth = variant.ground_truth(&program);
        return Ok(RegistryLibrary {
            name: name.to_string(),
            program,
            clusters,
            ground_truth,
        });
    }
    if let Some(synth) = synth_config(name, synth_seed) {
        let lib = generate_library(&synth);
        return Ok(RegistryLibrary {
            name: lib.name,
            program: lib.program,
            clusters: lib.clusters,
            ground_truth: lib.ground_truth,
        });
    }
    Err(RegistryError::UnknownLibrary(name.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_name_builds_with_clusters_and_ground_truth() {
        let names = registry_names();
        assert!(names.len() >= 7, "{names:?}");
        for name in &names {
            let lib = build_library(name, 7).expect(name);
            assert_eq!(&lib.name, name);
            assert!(!lib.clusters.is_empty(), "{name} has no clusters");
            assert!(!lib.ground_truth.is_empty(), "{name} has no ground truth");
        }
    }

    #[test]
    fn unknown_names_error_with_the_full_roster() {
        let err = build_library("no-such-library", 7).unwrap_err();
        assert!(matches!(err, RegistryError::UnknownLibrary(_)));
        let message = err.to_string();
        assert!(message.contains("synth-small"), "{message}");
        assert!(message.contains("javalib"), "{message}");
    }
}
