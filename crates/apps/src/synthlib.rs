//! Deterministic generation of *synthetic libraries*: container-style
//! classes with known points-to effects, used by the fleet pipeline to
//! scale the library population beyond the handwritten `atlas-javalib`.
//!
//! The generator mirrors the diversity knobs of the app generator
//! ([`crate::AppConfig`]): class/method counts, an aliasing-pattern mix,
//! and a body-size spread.  Every generated method is executable by
//! `atlas-interp` (the blackbox access inference needs) *and* comes with a
//! canonical ground-truth fragment body, so a fleet run can score the
//! inferred specifications with precision/recall per library — without any
//! handwritten corpus.
//!
//! Generation is a pure function of the configuration: same config, same
//! library, same fingerprint — which is what lets fleet shards warm-start
//! across processes.

use atlas_ir::builder::{MethodBuilder, ProgramBuilder};
use atlas_ir::{BinOp, ClassId, MethodId, Program, Stmt, Type};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// The aliasing patterns a generated field accessor pair can follow.  The
/// observable points-to effect is identical within each pair — the pattern
/// changes *how* the implementation realizes it, which is exactly the
/// variation a blackbox inference must be insensitive to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AliasingPattern {
    /// `set(v) { this.f = v }` / `get() { return this.f }`.
    Direct,
    /// The same effect routed through extra locals.
    Chained,
    /// A cross-object move: `absorb(o) { this.f = o.f }` on top of the
    /// direct accessors.
    Transfer,
    /// A stateless pass-through: `echo(v) { return v }`.
    Passthrough,
}

/// Relative weights of the aliasing patterns in a generated library.
#[derive(Debug, Clone, Copy)]
pub struct AliasingMix {
    /// Weight of [`AliasingPattern::Direct`].
    pub direct: u32,
    /// Weight of [`AliasingPattern::Chained`].
    pub chained: u32,
    /// Weight of [`AliasingPattern::Transfer`].
    pub transfer: u32,
    /// Weight of [`AliasingPattern::Passthrough`].
    pub passthrough: u32,
}

impl Default for AliasingMix {
    fn default() -> Self {
        AliasingMix {
            direct: 4,
            chained: 2,
            transfer: 1,
            passthrough: 1,
        }
    }
}

impl AliasingMix {
    fn draw(&self, rng: &mut StdRng) -> AliasingPattern {
        let total = self.direct + self.chained + self.transfer + self.passthrough;
        let mut roll = rng.gen_range(0..total.max(1));
        for (weight, pattern) in [
            (self.direct, AliasingPattern::Direct),
            (self.chained, AliasingPattern::Chained),
            (self.transfer, AliasingPattern::Transfer),
            (self.passthrough, AliasingPattern::Passthrough),
        ] {
            if roll < weight {
                return pattern;
            }
            roll -= weight;
        }
        AliasingPattern::Direct
    }
}

/// Configuration of one synthetic library.
#[derive(Debug, Clone)]
pub struct SynthLibConfig {
    /// Library name; also the source of the generated class-name prefix, so
    /// differently named libraries have different content fingerprints.
    pub name: String,
    /// Base RNG seed.
    pub seed: u64,
    /// Number of generated classes (each forms its own inference cluster).
    pub classes: usize,
    /// Minimum fields per class.
    pub min_fields: usize,
    /// Maximum fields per class (inclusive; values below `min_fields` are
    /// treated as `min_fields`).
    pub max_fields: usize,
    /// Relative weights of the aliasing patterns.
    pub mix: AliasingMix,
    /// Multiplier on the side-effect-free filler statements that spread
    /// method body sizes (and unit-test execution cost).
    pub body_spread: usize,
}

impl Default for SynthLibConfig {
    fn default() -> Self {
        SynthLibConfig {
            name: "synth".to_string(),
            seed: 0x5EED,
            classes: 3,
            min_fields: 1,
            max_fields: 2,
            mix: AliasingMix::default(),
            body_spread: 1,
        }
    }
}

/// A generated synthetic library, ready for the inference engine.
#[derive(Debug, Clone)]
pub struct SyntheticLibrary {
    /// The configured library name.
    pub name: String,
    /// The library program (only library classes, no clients).
    pub program: Program,
    /// One cluster per generated class.
    pub clusters: Vec<Vec<ClassId>>,
    /// Canonical ground-truth fragment bodies for every method with a
    /// points-to effect, in the same shape as
    /// `atlas_javalib::ground_truth_specs` — feed to
    /// `atlas_core::compare_fragments`.
    pub ground_truth: BTreeMap<MethodId, Vec<Stmt>>,
    /// How many accessor groups of each pattern were generated.
    pub pattern_counts: BTreeMap<&'static str, usize>,
}

/// Turns a library name into a class-name prefix (`synth-small` →
/// `SynthSmall`), so distinct libraries never collide on class names.
fn class_prefix(name: &str) -> String {
    let mut out = String::new();
    let mut upper = true;
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(if upper { c.to_ascii_uppercase() } else { c });
            upper = false;
        } else {
            upper = true;
        }
    }
    if out.is_empty() {
        out.push_str("Synth");
    }
    out
}

/// Emits side-effect-free filler (integer locals and arithmetic) to spread
/// body sizes without touching the heap — invisible to the points-to
/// analysis and to the ground truth.
fn emit_filler(m: &mut MethodBuilder<'_, '_>, blocks: usize, tag: usize) {
    if blocks == 0 {
        return;
    }
    let a = m.local(&format!("fa{tag}"), Type::Int);
    let b = m.local(&format!("fb{tag}"), Type::Int);
    m.const_int(a, tag as i64);
    m.const_int(b, 3);
    for _ in 0..blocks {
        m.bin(a, BinOp::Add, a, b);
        m.bin(b, BinOp::Mul, a, b);
    }
}

/// Generates one synthetic library.  Pure in the configuration.
pub fn generate_library(config: &SynthLibConfig) -> SyntheticLibrary {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut pb = ProgramBuilder::new();
    let prefix = class_prefix(&config.name);
    let max_fields = config.max_fields.max(config.min_fields);

    // Plan first (RNG draws), build second: the builder borrows `pb`
    // per class, and ground-truth statements need the final Var indices.
    struct FieldPlan {
        pattern: AliasingPattern,
        filler: usize,
    }
    let mut plans: Vec<Vec<FieldPlan>> = Vec::new();
    for c in 0..config.classes {
        let spread = max_fields - config.min_fields + 1;
        let num_fields = config.min_fields + rng.gen_range(0..spread);
        let mut fields = Vec::new();
        for f in 0..num_fields.max(1) {
            fields.push(FieldPlan {
                pattern: config.mix.draw(&mut rng),
                filler: (1 + (c + f) % 4) * config.body_spread,
            });
        }
        plans.push(fields);
    }

    let mut ground_truth: BTreeMap<MethodId, Vec<Stmt>> = BTreeMap::new();
    let mut pattern_counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut class_ids = Vec::new();
    for (c, fields) in plans.iter().enumerate() {
        let class_name = format!("{prefix}{c}");
        let mut cb = pb.class(&class_name);
        cb.library(true);
        let field_ids: Vec<_> = (0..fields.len())
            .map(|f| cb.field(&format!("f{f}"), Type::object()))
            .collect();
        let mut init = cb.constructor();
        init.this();
        init.finish();

        for (f, plan) in fields.iter().enumerate() {
            let field = field_ids[f];
            let label = match plan.pattern {
                AliasingPattern::Direct => "direct",
                AliasingPattern::Chained => "chained",
                AliasingPattern::Transfer => "transfer",
                AliasingPattern::Passthrough => "passthrough",
            };
            *pattern_counts.entry(label).or_insert(0) += 1;

            if plan.pattern == AliasingPattern::Passthrough {
                // echo_f(v) { return v } — no state at all.
                let mut echo = cb.method(&format!("echo{f}"));
                echo.returns(Type::object());
                echo.this();
                let v = echo.param("v", Type::object());
                emit_filler(&mut echo, plan.filler, f);
                echo.ret(Some(v));
                let id = echo.finish();
                ground_truth.insert(id, vec![Stmt::Return { var: Some(v) }]);
                continue;
            }

            // Setter.
            let mut set = cb.method(&format!("set{f}"));
            let this = set.this();
            let v = set.param("v", Type::object());
            emit_filler(&mut set, plan.filler, f);
            match plan.pattern {
                AliasingPattern::Chained => {
                    let t = set.local(&format!("t{f}"), Type::object());
                    set.assign(t, v);
                    set.store_field(this, field, t);
                }
                _ => set.store_field(this, field, v),
            }
            let set_id = set.finish();
            // The canonical effect, independent of the implementation
            // flavor — what a correct inference reproduces.
            ground_truth.insert(
                set_id,
                vec![Stmt::Store {
                    obj: this,
                    field,
                    src: v,
                }],
            );

            // Getter.
            let mut get = cb.method(&format!("get{f}"));
            get.returns(Type::object());
            let this = get.this();
            let out = get.local("out", Type::object());
            emit_filler(&mut get, plan.filler, f);
            get.load_field(out, this, field);
            let ret_var = if plan.pattern == AliasingPattern::Chained {
                let u = get.local("u", Type::object());
                get.assign(u, out);
                u
            } else {
                out
            };
            get.ret(Some(ret_var));
            let get_id = get.finish();
            ground_truth.insert(
                get_id,
                vec![
                    Stmt::Load {
                        dst: out,
                        obj: this,
                        field,
                    },
                    Stmt::Return { var: Some(out) },
                ],
            );

            if plan.pattern == AliasingPattern::Transfer {
                // absorb_f(o) { this.f = o.f } — a cross-object move.
                let mut absorb = cb.method(&format!("absorb{f}"));
                let this = absorb.this();
                let other = absorb.param("o", Type::class(&class_name));
                let t = absorb.local("t", Type::object());
                emit_filler(&mut absorb, plan.filler, f);
                absorb.load_field(t, other, field);
                absorb.store_field(this, field, t);
                let id = absorb.finish();
                ground_truth.insert(
                    id,
                    vec![
                        Stmt::Load {
                            dst: t,
                            obj: other,
                            field,
                        },
                        Stmt::Store {
                            obj: this,
                            field,
                            src: t,
                        },
                    ],
                );
            }
        }
        class_ids.push(cb.build());
    }

    let program = pb.build();
    let clusters = class_ids.into_iter().map(|id| vec![id]).collect();
    SyntheticLibrary {
        name: config.name.clone(),
        program,
        clusters,
        ground_truth,
        pattern_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_ir::hash::library_fingerprint;
    use atlas_ir::LibraryInterface;

    #[test]
    fn generation_is_deterministic() {
        let config = SynthLibConfig::default();
        let a = generate_library(&config);
        let b = generate_library(&config);
        let ia = LibraryInterface::from_program(&a.program);
        let ib = LibraryInterface::from_program(&b.program);
        assert_eq!(
            library_fingerprint(&a.program, &ia),
            library_fingerprint(&b.program, &ib)
        );
        assert_eq!(a.ground_truth, b.ground_truth);
        assert_eq!(a.pattern_counts, b.pattern_counts);
        assert_eq!(a.clusters.len(), config.classes);
    }

    #[test]
    fn knobs_shape_the_library() {
        let small = generate_library(&SynthLibConfig::default());
        let wide = generate_library(&SynthLibConfig {
            classes: 6,
            max_fields: 3,
            ..SynthLibConfig::default()
        });
        assert!(wide.program.num_methods() > small.program.num_methods());
        assert_eq!(wide.clusters.len(), 6);

        // Name changes change content (class prefixes differ).
        let renamed = generate_library(&SynthLibConfig {
            name: "synth-other".to_string(),
            ..SynthLibConfig::default()
        });
        let a = LibraryInterface::from_program(&small.program);
        let b = LibraryInterface::from_program(&renamed.program);
        assert_ne!(
            library_fingerprint(&small.program, &a),
            library_fingerprint(&renamed.program, &b)
        );
        assert_eq!(class_prefix("synth-other"), "SynthOther");
        assert_eq!(class_prefix(""), "Synth");

        // A pure mix generates only that pattern.
        let direct_only = generate_library(&SynthLibConfig {
            mix: AliasingMix {
                direct: 1,
                chained: 0,
                transfer: 0,
                passthrough: 0,
            },
            ..SynthLibConfig::default()
        });
        assert_eq!(direct_only.pattern_counts.keys().count(), 1);
        assert!(direct_only.pattern_counts.contains_key("direct"));

        // body_spread grows bodies without changing the ground truth.
        let spread = generate_library(&SynthLibConfig {
            body_spread: 5,
            ..SynthLibConfig::default()
        });
        assert_eq!(spread.ground_truth, small.ground_truth);
        let body_len = |lib: &SyntheticLibrary| -> usize {
            lib.program.methods().map(|m| m.body().len()).sum()
        };
        assert!(body_len(&spread) > body_len(&small));
    }

    #[test]
    fn generated_libraries_are_inferable() {
        // End-to-end: the engine learns the direct accessors of a tiny
        // synthetic library and the learned fragments match the ground
        // truth with positive precision/recall.
        let lib = generate_library(&SynthLibConfig {
            name: "synth-proof".to_string(),
            classes: 1,
            min_fields: 1,
            max_fields: 1,
            mix: AliasingMix {
                direct: 1,
                chained: 0,
                transfer: 0,
                passthrough: 0,
            },
            body_spread: 1,
            ..SynthLibConfig::default()
        });
        let interface = LibraryInterface::from_program(&lib.program);
        let config = atlas_core::AtlasConfig {
            samples_per_cluster: 400,
            clusters: lib.clusters.clone(),
            num_threads: 1,
            ..atlas_core::AtlasConfig::default()
        };
        let outcome = atlas_core::Engine::new(&lib.program, &interface, config).run();
        assert!(outcome.total_positive_examples() >= 1);
        let comparison = atlas_core::compare_fragments(
            &lib.program,
            &outcome.fragments(&lib.program),
            &lib.ground_truth,
        );
        assert!(comparison.recall() > 0.5, "recall {}", comparison.recall());
        // The learner generalizes beyond the minimal ground-truth bodies
        // (longer aliasing chains through the same accessors), so precision
        // sits below 1.0 by construction; it just must not collapse.
        assert!(
            comparison.precision() > 0.2,
            "precision {}",
            comparison.precision()
        );
    }
}
