//! The deterministic **library mutation generator**: picks an eligible
//! edit target in a built library and applies one of the `atlas_ir::mutate`
//! primitives to a clone of the program.
//!
//! This is how the incremental-inference pipeline (and its tests) model "a
//! developer edited the library": the generator owns the *policy* —
//! eligibility rules, deterministic target selection, reproducible seeds —
//! while the mechanical edits live in `atlas_ir::mutate`.
//!
//! Eligibility is what keeps mutations well-formed:
//!
//! * `rename-local` needs a method with at least one declared local;
//! * `body-edit` works on any non-native method;
//! * `add-method` targets a library class (the probe name must be fresh);
//! * `signature-change` is restricted to non-constructor methods **without
//!   intra-program callers** (call sites are not patched — the unit-test
//!   synthesizer re-reads signatures, library-internal callers would not).
//!
//! Selection is deterministic: candidates are sorted by qualified name and
//! the seed indexes into them, so the same `(library, knobs)` pair always
//! produces the same mutation — a requirement for reproducible incremental
//! benchmarks and CI gates.

use atlas_ir::mutate::{add_method, change_signature, edit_body, rename_local};
use atlas_ir::{DepGraph, MethodId, MutationKind, MutationOutcome, Program};

/// Knobs of one generated mutation.
#[derive(Debug, Clone)]
pub struct MutationConfig {
    /// Which edit primitive to apply.
    pub kind: MutationKind,
    /// Seed: selects among the eligible targets and tags the generated
    /// names/constants, so distinct seeds give distinct edits.
    pub seed: u64,
    /// Optional explicit target: a qualified `Class.method` name (or a
    /// bare class name for [`MutationKind::AddMethod`]).  `None` picks
    /// deterministically from the eligible candidates.
    pub target: Option<String>,
}

impl MutationConfig {
    /// A mutation of the given kind with the given seed, deterministic
    /// target selection.
    pub fn new(kind: MutationKind, seed: u64) -> MutationConfig {
        MutationConfig {
            kind,
            seed,
            target: None,
        }
    }
}

/// A mutated library: the edited clone plus what was edited.
#[derive(Debug, Clone)]
pub struct MutatedLibrary {
    /// The edited program (the original is untouched).
    pub program: Program,
    /// What the edit was, including a human-readable description.
    pub outcome: MutationOutcome,
}

/// Why no mutation could be generated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationError {
    /// The explicit target does not exist in the program.
    UnknownTarget(String),
    /// No method/class in the program satisfies the kind's eligibility
    /// rule (or the explicit target does not).
    NoEligibleTarget(MutationKind),
}

impl std::fmt::Display for MutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutationError::UnknownTarget(name) => {
                write!(f, "mutation target '{name}' does not exist")
            }
            MutationError::NoEligibleTarget(kind) => {
                write!(f, "no eligible target for a {kind} mutation")
            }
        }
    }
}

impl std::error::Error for MutationError {}

/// Library methods eligible for the given mutation kind, sorted by
/// qualified name (the deterministic selection order).
fn eligible_methods(program: &Program, kind: MutationKind) -> Vec<MethodId> {
    // Signature changes need "has any caller?" per method: one reverse
    // sweep over the call edges, not one callers_of scan per candidate.
    let called = match kind {
        MutationKind::SignatureChange => DepGraph::build(program).called_methods(),
        _ => Default::default(),
    };
    let mut candidates: Vec<(String, MethodId)> = program
        .methods()
        .filter(|m| program.class(m.class()).is_library() && !m.is_native())
        .filter(|m| match kind {
            MutationKind::RenameLocal => m.num_vars() > m.num_params() + usize::from(m.has_this()),
            MutationKind::BodyEdit => true,
            MutationKind::AddMethod => false, // class-targeted, not method-targeted
            MutationKind::SignatureChange => !m.is_constructor() && !called.contains(&m.id()),
        })
        .map(|m| (program.qualified_name(m.id()), m.id()))
        .collect();
    candidates.sort();
    candidates.into_iter().map(|(_, id)| id).collect()
}

/// Applies one deterministic mutation to a clone of `base`.
///
/// # Errors
/// Returns [`MutationError`] when the explicit target does not resolve or
/// nothing in the program is eligible for the requested kind.
pub fn mutate_library(
    base: &Program,
    config: &MutationConfig,
) -> Result<MutatedLibrary, MutationError> {
    let mut program = base.clone();
    let outcome = match config.kind {
        MutationKind::AddMethod => {
            // `ir::mutate::add_method` panics on a name collision; keep
            // the Result contract by rejecting it as ineligible here
            // (e.g. a previously mutated program fed back in).
            let probe_exists = |class| program.method_of(class, &format!("probe{}", config.seed));
            let class = match &config.target {
                Some(name) => base
                    .class_named(name)
                    .ok_or_else(|| MutationError::UnknownTarget(name.clone()))?,
                None => {
                    let mut classes: Vec<(String, _)> = base
                        .library_classes()
                        .map(|c| (c.name().to_string(), c.id()))
                        .collect();
                    if classes.is_empty() {
                        return Err(MutationError::NoEligibleTarget(config.kind));
                    }
                    classes.sort();
                    classes[config.seed as usize % classes.len()].1
                }
            };
            if probe_exists(class).is_some() {
                return Err(MutationError::NoEligibleTarget(config.kind));
            }
            add_method(&mut program, class, config.seed)
        }
        kind => {
            let method = match &config.target {
                Some(name) => {
                    let id = base
                        .method_qualified(name)
                        .ok_or_else(|| MutationError::UnknownTarget(name.clone()))?;
                    if !eligible_methods(base, kind).contains(&id) {
                        return Err(MutationError::NoEligibleTarget(kind));
                    }
                    id
                }
                None => {
                    let eligible = eligible_methods(base, kind);
                    if eligible.is_empty() {
                        return Err(MutationError::NoEligibleTarget(kind));
                    }
                    eligible[config.seed as usize % eligible.len()]
                }
            };
            match kind {
                MutationKind::RenameLocal => rename_local(&mut program, method, config.seed)
                    .ok_or(MutationError::NoEligibleTarget(kind))?,
                MutationKind::BodyEdit => edit_body(&mut program, method, config.seed),
                MutationKind::SignatureChange => {
                    change_signature(&mut program, method, config.seed)
                }
                MutationKind::AddMethod => unreachable!("handled above"),
            }
        }
    };
    Ok(MutatedLibrary { program, outcome })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_ir::depgraph::deep_method_hash;
    use atlas_ir::LibraryInterface;

    fn javalib() -> Program {
        atlas_javalib::library_program()
    }

    #[test]
    fn every_kind_produces_a_deterministic_wellformed_mutation() {
        let base = javalib();
        for kind in [
            MutationKind::RenameLocal,
            MutationKind::BodyEdit,
            MutationKind::AddMethod,
            MutationKind::SignatureChange,
        ] {
            let a = mutate_library(&base, &MutationConfig::new(kind, 11)).expect("mutate");
            let b = mutate_library(&base, &MutationConfig::new(kind, 11)).expect("mutate again");
            assert_eq!(
                a.outcome.description, b.outcome.description,
                "same seed, same target"
            );
            assert_ne!(
                deep_method_hash(&a.program, a.outcome.method),
                if kind == MutationKind::AddMethod {
                    0 // the method is new; any hash differs from "absent"
                } else {
                    deep_method_hash(&base, a.outcome.method)
                },
                "{kind}: content must change"
            );
            // The mutated program still yields a well-formed interface.
            let interface = LibraryInterface::from_program(&a.program);
            assert!(interface.num_methods() >= 1);
            // The original is untouched.
            assert_eq!(base.num_methods(), javalib().num_methods());
        }
    }

    #[test]
    fn seeds_select_different_targets_and_explicit_targets_resolve() {
        let base = javalib();
        let a = mutate_library(&base, &MutationConfig::new(MutationKind::BodyEdit, 0)).unwrap();
        let b = mutate_library(&base, &MutationConfig::new(MutationKind::BodyEdit, 1)).unwrap();
        assert_ne!(a.outcome.method, b.outcome.method, "seed moves the target");

        let explicit = mutate_library(
            &base,
            &MutationConfig {
                kind: MutationKind::BodyEdit,
                seed: 0,
                target: Some("ArrayList.add".to_string()),
            },
        )
        .expect("explicit target");
        assert_eq!(
            explicit.outcome.description, "body-edit ArrayList.add",
            "{}",
            explicit.outcome.description
        );
        assert!(matches!(
            mutate_library(
                &base,
                &MutationConfig {
                    kind: MutationKind::BodyEdit,
                    seed: 0,
                    target: Some("No.such".to_string()),
                },
            ),
            Err(MutationError::UnknownTarget(_))
        ));
    }

    #[test]
    fn repeated_add_method_is_an_error_not_a_panic() {
        let base = javalib();
        let once = mutate_library(&base, &MutationConfig::new(MutationKind::AddMethod, 3))
            .expect("first add");
        // Feeding the mutated program back with the same seed targets the
        // same class and probe name: ineligible, reported as an error.
        assert_eq!(
            mutate_library(
                &once.program,
                &MutationConfig::new(MutationKind::AddMethod, 3)
            )
            .unwrap_err(),
            MutationError::NoEligibleTarget(MutationKind::AddMethod)
        );
    }

    #[test]
    fn signature_changes_only_touch_uncalled_methods() {
        let base = javalib();
        let dep_graph = DepGraph::build(&base);
        for seed in 0..8 {
            let m = mutate_library(
                &base,
                &MutationConfig::new(MutationKind::SignatureChange, seed),
            )
            .expect("eligible method exists");
            assert!(
                dep_graph.callers_of(m.outcome.method).is_empty(),
                "{} has callers",
                m.outcome.description
            );
        }
    }
}
