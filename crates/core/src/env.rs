//! Shared parsing of `ATLAS_*` environment knobs.
//!
//! Every crate in the workspace that reads configuration from the
//! environment — the bench harness (`atlas_bench::config`), the resident
//! service (`atlas_serve::config`) — goes through these helpers, so a
//! knob means the same thing and fails the same way everywhere.  The one
//! error style: a malformed or empty value falls back to the caller's
//! default instead of aborting, because a CI matrix that exports an empty
//! string must not change behavior.

use std::path::PathBuf;

/// Parses an environment variable, falling back to `None` when unset,
/// empty, or unparsable.
pub fn env_parse<T: std::str::FromStr>(var: &str) -> Option<T> {
    std::env::var(var).ok().and_then(|s| s.parse().ok())
}

/// A non-empty environment variable, verbatim.
pub fn env_string(var: &str) -> Option<String> {
    std::env::var(var).ok().filter(|s| !s.is_empty())
}

/// A non-empty environment variable as a path.
pub fn env_path(var: &str) -> Option<PathBuf> {
    env_string(var).map(PathBuf::from)
}

/// A boolean knob: `1`, `true`, `yes`, `on` (case-insensitive, trimmed)
/// enable it; everything else — including unset — disables it.
pub fn env_flag(var: &str) -> bool {
    std::env::var(var)
        .map(|s| {
            matches!(
                s.trim().to_ascii_lowercase().as_str(),
                "1" | "true" | "yes" | "on"
            )
        })
        .unwrap_or(false)
}

/// Parses a decimal or `0x`-prefixed hex u64 — the seed spelling used by
/// `ATLAS_FLEET_SEED` and the fingerprints in reports.
pub fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_variables_fall_back() {
        assert_eq!(env_parse::<usize>("ATLAS_NO_SUCH_KNOB"), None);
        assert_eq!(env_string("ATLAS_NO_SUCH_KNOB"), None);
        assert!(env_path("ATLAS_NO_SUCH_KNOB").is_none());
        assert!(!env_flag("ATLAS_NO_SUCH_KNOB"));
    }

    #[test]
    fn seeds_parse_in_both_spellings() {
        assert_eq!(parse_u64("24301"), Some(24301));
        assert_eq!(parse_u64("0x5EED"), Some(0x5EED));
        assert_eq!(parse_u64(" 0X5eed "), Some(0x5EED));
        assert_eq!(parse_u64("nope"), None);
        assert_eq!(parse_u64("0xzz"), None);
    }
}
